"""Per-stage rollup of a trace: the ``repro trace-summary`` backend.

Takes a flat event list (in-memory buffer or a JSONL file) and aggregates
span events by name: count, total/mean/p95 milliseconds, and percentage of
the parent stage's total — the table the paper's host-timing sections
(Tables I/II) report per pipeline stage, generalized to the whole campaign
tree.  Metric events (counters/gauges/histograms) are rendered in a second
section, which is where ``cache.hit`` / ``cache.corrupt`` and the executor
utilization histograms surface.
"""

from __future__ import annotations

import math
import os
from collections import Counter
from dataclasses import dataclass, field


@dataclass
class StageStats:
    """Aggregated statistics of one span name.

    Attributes:
        name: Span name.
        count: Completed spans.
        total_ms: Summed duration.
        durations: Individual samples (for percentiles).
        parent: Dominant parent span name (``""`` for roots).
        pct_of_parent: ``total_ms`` as a percentage of the dominant
            parent's total (100 for roots).
        errors: Spans that exited via an exception.
    """

    name: str
    count: int = 0
    total_ms: float = 0.0
    durations: list[float] = field(default_factory=list)
    parent: str = ""
    pct_of_parent: float = 100.0
    errors: int = 0

    @property
    def mean_ms(self) -> float:
        """Mean span duration, ms."""
        return self.total_ms / self.count if self.count else 0.0

    @property
    def p95_ms(self) -> float:
        """95th-percentile span duration, ms (nearest-rank)."""
        if not self.durations:
            return 0.0
        ordered = sorted(self.durations)
        rank = max(0, math.ceil(0.95 * len(ordered)) - 1)
        return ordered[min(rank, len(ordered) - 1)]


def summarize(events: list[dict]) -> list[StageStats]:
    """Aggregate span events into per-name statistics.

    Args:
        events: Mixed event dicts; non-span events are ignored.

    Returns:
        Stats sorted by total duration, descending.  ``pct_of_parent`` is
        computed against each name's *dominant* parent (the parent name
        under which most of its spans ran).
    """
    spans = [ev for ev in events if ev.get("type") == "span"]
    id_to_name = {ev["span_id"]: ev["name"] for ev in spans}
    stats: dict[str, StageStats] = {}
    parent_votes: dict[str, Counter] = {}
    for ev in spans:
        st = stats.setdefault(ev["name"], StageStats(name=ev["name"]))
        st.count += 1
        st.total_ms += ev["dur_ms"]
        st.durations.append(ev["dur_ms"])
        if ev.get("status") == "error":
            st.errors += 1
        parent_name = id_to_name.get(ev.get("parent_id"), "")
        parent_votes.setdefault(ev["name"], Counter())[parent_name] += 1
    for name, st in stats.items():
        parent = parent_votes[name].most_common(1)[0][0]
        st.parent = parent
        parent_total = stats[parent].total_ms if parent in stats else 0.0
        if parent and parent_total > 0:
            st.pct_of_parent = 100.0 * st.total_ms / parent_total
        else:
            st.pct_of_parent = 100.0
    return sorted(stats.values(), key=lambda s: -s.total_ms)


def coverage(events: list[dict]) -> float:
    """Fraction of root wall-clock accounted for by child spans.

    For each root span (no parent in the event set), sums the durations of
    its direct children; returns child-time / root-time over all roots.
    An instrumentation-health number: low coverage means untraced gaps.
    """
    spans = [ev for ev in events if ev.get("type") == "span"]
    ids = {ev["span_id"] for ev in spans}
    roots = [ev for ev in spans if ev.get("parent_id") not in ids]
    root_ids = {ev["span_id"] for ev in roots}
    root_total = sum(ev["dur_ms"] for ev in roots)
    if root_total <= 0:
        return 0.0
    child_total = sum(
        ev["dur_ms"] for ev in spans if ev.get("parent_id") in root_ids
    )
    return min(1.0, child_total / root_total)


def render_table(events: list[dict]) -> str:
    """Render the per-stage table plus a metrics section as text."""
    rows = summarize(events)
    lines = [
        f"{'stage':40s} {'count':>7s} {'total ms':>12s} "
        f"{'mean ms':>10s} {'p95 ms':>10s} {'% parent':>9s}  parent"
    ]
    for st in rows:
        lines.append(
            f"{st.name:40s} {st.count:7d} {st.total_ms:12.1f} "
            f"{st.mean_ms:10.2f} {st.p95_ms:10.2f} {st.pct_of_parent:8.1f}%  "
            f"{st.parent or '-'}"
            + (f"  [{st.errors} errors]" if st.errors else "")
        )
    counters = [ev for ev in events if ev.get("type") == "counter"]
    gauges = [ev for ev in events if ev.get("type") == "gauge"]
    hists = [ev for ev in events if ev.get("type") == "histogram"]
    if counters or gauges or hists:
        lines.append("")
        lines.append("metrics:")
        for ev in counters:
            lines.append(f"  {ev['name']:42s} {ev['value']:>12d}  (counter)")
        for ev in gauges:
            lines.append(f"  {ev['name']:42s} {ev['value']:>12.4g}  (gauge)")
        for ev in hists:
            mean = ev["total"] / ev["count"] if ev["count"] else 0.0
            lines.append(
                f"  {ev['name']:42s} {ev['count']:>12d}  "
                f"(histogram, mean {mean:.2f})"
            )
    cov = coverage(events)
    if cov > 0:
        lines.append("")
        lines.append(f"coverage: {100.0 * cov:.1f}% of root wall-clock in "
                     f"direct child spans")
    return "\n".join(lines)


def summary_dict(events: list[dict]) -> dict:
    """JSON-safe form of the per-stage summary (for bench reports and
    ``repro trace-summary --json``): stages, coverage, and every metric
    family the trace carries.  The layout is a documented contract
    (docs/observability.md); ``schema_version`` bumps only on breaking
    changes, additive keys keep it."""
    return {
        "schema_version": 1,
        "stages": {
            st.name: {
                "count": st.count,
                "total_ms": round(st.total_ms, 3),
                "mean_ms": round(st.mean_ms, 4),
                "p95_ms": round(st.p95_ms, 4),
                "pct_of_parent": round(st.pct_of_parent, 2),
                "parent": st.parent,
                "errors": st.errors,
            }
            for st in summarize(events)
        },
        "coverage": round(coverage(events), 4),
        "counters": {
            ev["name"]: ev["value"]
            for ev in events if ev.get("type") == "counter"
        },
        "gauges": {
            ev["name"]: ev["value"]
            for ev in events if ev.get("type") == "gauge"
        },
        "histograms": {
            ev["name"]: {
                "count": ev["count"],
                "total": round(ev["total"], 3),
                "buckets": ev["buckets"],
                "counts": ev["counts"],
            }
            for ev in events if ev.get("type") == "histogram"
        },
    }


def render_file(path: str | os.PathLike) -> str:
    """Load a JSONL trace and render its summary table."""
    from repro.obs.trace import load_jsonl

    return render_table(load_jsonl(path))
