"""Streaming metric exporters: Prometheus text exposition + JSONL stream.

Post-hoc traces explain a run after it ends; a *service* (the planned
``repro.serve`` front-end, or any long campaign someone is watching)
needs to be observable while it runs.  Two exporters, both reading the
live :data:`repro.obs.metrics.REGISTRY` without disturbing it:

* :func:`render_prometheus` — the registry rendered in the Prometheus
  text exposition format (``# TYPE`` headers, cumulative ``_bucket``
  series with ``le`` labels, ``_sum``/``_count``).  A scrape endpoint
  can serve this string verbatim; metric names are sanitized
  (``cache.hit`` → ``cache_hit``).
* :class:`MetricsStream` — a background thread appending one JSON object
  per interval to a file (the CLI's ``--metrics-out PATH
  --metrics-interval S``).  Each line is a *cumulative* snapshot
  (counters/gauges/histograms as of that instant) stamped with wall and
  monotonic time, so ``tail -f`` shows a run in flight and the deltas
  between lines give rates.

Both exporters are read-only over the registry: exporting never resets
counters and never perturbs the traced run (snapshots use the same lock
as recording, held briefly).
"""

from __future__ import annotations

import json
import os
import re
import threading
import time

from repro.obs.metrics import REGISTRY

#: Default seconds between JSONL stream flushes.
DEFAULT_STREAM_INTERVAL_S = 1.0

_NAME_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """A registry name rendered as a legal Prometheus metric name.

    Sanitization is lossy (``cache.hit`` and ``cache/hit`` both map to
    ``cache_hit``), so :func:`render_prometheus` deduplicates the final
    names via :func:`unique_metric_names` — use that when rendering more
    than one name.
    """
    sanitized = _NAME_SANITIZE_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def unique_metric_names(keys: list[tuple[str, str]]) -> dict[tuple[str, str], str]:
    """Collision-free sanitized names for ``(section, name)`` keys.

    Distinct registry names can sanitize to the same Prometheus name
    (``cache.hit`` vs ``cache/hit`` -> ``cache_hit``), which would emit
    duplicate ``# TYPE`` headers and duplicate series.  Keys are
    processed in the given order; the first taker keeps the base name
    and later colliders get a deterministic ``_2``, ``_3``, ... suffix
    (re-suffixed until unique), so renders are stable across runs.
    """
    taken: set[str] = set()
    out: dict[tuple[str, str], str] = {}
    for key in keys:
        metric = sanitize_metric_name(key[1])
        if metric in taken:
            serial = 2
            while f"{metric}_{serial}" in taken:
                serial += 1
            metric = f"{metric}_{serial}"
        taken.add(metric)
        out[key] = metric
    return out


def render_prometheus(snapshot: dict | None = None) -> str:
    """Render a registry snapshot in Prometheus text-exposition format.

    Args:
        snapshot: A :meth:`MetricsRegistry.dump` dict; the live registry
            is dumped when None.

    Returns:
        The exposition text, terminated by a newline (empty registry
        renders to an empty string).
    """
    snap = REGISTRY.dump() if snapshot is None else snapshot
    keys = [
        (section, name)
        for section in ("counters", "gauges", "histograms")
        for name in sorted(snap.get(section, ()))
    ]
    names = unique_metric_names(keys)
    lines: list[str] = []
    for name in sorted(snap.get("counters", ())):
        metric = names[("counters", name)]
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snap['counters'][name]}")
    for name in sorted(snap.get("gauges", ())):
        metric = names[("gauges", name)]
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(snap['gauges'][name])}")
    for name in sorted(snap.get("histograms", ())):
        hist = snap["histograms"][name]
        metric = names[("histograms", name)]
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(hist["buckets"], hist["counts"]):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{metric}_sum {_format_value(hist['total'])}")
        lines.append(f"{metric}_count {hist['count']}")
    return "\n".join(lines) + "\n" if lines else ""


def _format_value(value: float) -> str:
    """Float rendered without a trailing ``.0`` for integral values."""
    f = float(value)
    return str(int(f)) if f.is_integer() else repr(f)


class MetricsStream:
    """Periodic-flush JSONL metrics stream (``--metrics-out``).

    Appends one JSON line per interval to ``path``; each line is a
    cumulative registry snapshot::

        {"t_wall": 1722.1, "t_mono_s": 3.0, "seq": 3,
         "counters": {...}, "gauges": {...}, "histograms": {...}}

    :meth:`stop` writes one final line so the file always ends with the
    run's closing state, then closes the file.  The writer is a daemon
    thread; a crashed run leaves a valid (line-truncated at worst) file.
    """

    def __init__(self, path: str | os.PathLike,
                 interval_s: float = DEFAULT_STREAM_INTERVAL_S):
        self.path = os.fspath(path)
        self.interval_s = max(0.01, float(interval_s))
        self.lines_written = 0
        self._file = None
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._lock = threading.Lock()
        self._t0 = 0.0

    @property
    def running(self) -> bool:
        """True while the flush thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Open the output file and start periodic flushing.

        Starting truncates the file and resets the line sequence, so a
        reused stream object begins a fresh ``seq: 0, 1, ...`` run
        instead of continuing the previous run's stale sequence.
        """
        if self.running:
            return
        # A previous flush thread that outlived stop()'s bounded join
        # may still be inside flush_once; swap the file and reset the
        # sequence under the same lock it writes with, so the restart
        # can never interleave with a straggler's write.
        with self._lock:
            self._file = open(self.path, "w")
            self.lines_written = 0
            self._t0 = time.monotonic()
        self._stop_event = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-metrics-stream", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop flushing, write one final snapshot line, close the file."""
        thread = self._thread
        if thread is not None:
            self._stop_event.set()
            thread.join(timeout=2.0)
            self._thread = None
        if self._file is not None:
            self.flush_once()
            with self._lock:
                self._file.close()
                self._file = None

    def flush_once(self) -> None:
        """Write one snapshot line now (no-op when not started)."""
        with self._lock:
            if self._file is None:
                return
            snap = REGISTRY.dump()
            line = {
                "t_wall": time.time(),
                "t_mono_s": round(time.monotonic() - self._t0, 6),
                "seq": self.lines_written,
                "counters": snap["counters"],
                "gauges": snap["gauges"],
                "histograms": snap["histograms"],
            }
            self._file.write(json.dumps(line) + "\n")
            self._file.flush()
            self.lines_written += 1

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval_s):
            self.flush_once()


def load_stream(path: str | os.PathLike) -> list[dict]:
    """Read a metrics-stream JSONL file back into a list of snapshots.

    A crashed writer can leave a partially written *final* line (the
    class docstring's "line-truncated at worst" case); that trailing
    fragment is skipped.  A malformed line anywhere else is still an
    error — interior corruption is not a crash artifact.
    """
    out: list[dict] = []
    with open(path) as f:
        lines = f.readlines()
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            out.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # truncated trailing line from an interrupted writer
            raise
    return out
