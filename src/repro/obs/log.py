"""Structured CLI logging: status to stderr, results to stdout.

The CLI used bare ``print`` for everything, which tangles human-facing
progress chatter with machine-readable output (figure rows, containment
numbers) on one stream.  This module splits them:

* :func:`status` — progress/diagnostic lines, written to **stderr**,
  suppressed by ``--quiet``.
* :func:`result` — the command's actual output, written to **stdout**,
  never suppressed (piping ``repro figure ... > out.txt`` stays clean).

``status`` lines carry a ``[repro]`` prefix so they are visually and
grep-ably distinct from library warnings on the same stream.
"""

from __future__ import annotations

import sys


class LogState:
    """Module-level switches for the CLI logger.

    Attributes:
        quiet: When True, :func:`status` writes nothing.
    """

    def __init__(self) -> None:
        self.quiet = False


STATE = LogState()


def set_quiet(quiet: bool) -> None:
    """Enable/disable suppression of status output."""
    STATE.quiet = bool(quiet)


def status(message: str) -> None:
    """Write one status line to stderr (unless ``--quiet``)."""
    if STATE.quiet:
        return
    print(f"[repro] {message}", file=sys.stderr)


def result(message: str) -> None:
    """Write one machine-readable output line to stdout."""
    print(message, file=sys.stdout)
