"""Periodic per-process resource sampler: RSS, CPU, GC, shm segments.

Campaign workers are long-lived spawned processes; a leak (heap growth,
unreclaimed shared-memory segments, GC churn) shows up as resource drift
long before it kills a run.  :class:`ResourceMonitor` samples this
process at a fixed interval and records the readings as gauges in the
:mod:`repro.obs.metrics` registry:

* ``res.rss_mb`` — current resident set size, MB (``/proc/self/status``
  ``VmRSS``; 0 where procfs is unavailable).
* ``res.rss_peak_mb`` — peak RSS, MB (``VmHWM``, falling back to
  ``resource.getrusage``).  The name's ``peak`` segment makes
  :meth:`repro.obs.metrics.MetricsRegistry.merge` fold it with **max**
  across processes, so the merged campaign trace reports the worst
  worker, not the last one to report.
* ``res.cpu_s`` — user+system CPU seconds consumed so far.
* ``res.gc_collections`` — cumulative GC collections over all
  generations.
* ``res.shm_segments`` — live ``repro-shm`` segments owned by this pid
  (the executor transport's leak signal).

Like the tracer, sampling only records while telemetry is enabled; with
telemetry off ``set_gauge`` is a no-op and the monitor thread is never
started by the CLI.  Worker processes run their own monitor (see
:func:`repro.obs.aggregate.worker_flags`); their gauges ride the chunk
snapshot and merge parent-side.
"""

from __future__ import annotations

import gc
import os
import threading

from repro.obs import metrics as _metrics

#: Default sampling interval, seconds.  Resource drift is slow; 4 Hz
#: resolves it at negligible cost.
DEFAULT_INTERVAL_S = 0.25

#: Path of the Linux per-process status file (VmRSS / VmHWM, in kB).
_PROC_STATUS = "/proc/self/status"


def read_rss_mb() -> tuple[float, float]:
    """Current and peak RSS in MB (``0.0`` where unavailable).

    Reads ``/proc/self/status`` (Linux); falls back to
    ``resource.getrusage`` for the peak (current RSS then reports 0).
    """
    rss_kb = peak_kb = 0.0
    try:
        with open(_PROC_STATUS) as f:
            for line in f:
                if line.startswith("VmRSS:"):
                    rss_kb = float(line.split()[1])
                elif line.startswith("VmHWM:"):
                    peak_kb = float(line.split()[1])
    except OSError:
        try:
            import resource

            peak_kb = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        except (ImportError, ValueError):
            peak_kb = 0.0
    return rss_kb / 1024.0, peak_kb / 1024.0


def cpu_seconds() -> float:
    """User + system CPU seconds consumed by this process."""
    times = os.times()
    return times.user + times.system


def gc_collections() -> int:
    """Cumulative garbage collections across all generations."""
    return sum(int(stat.get("collections", 0)) for stat in gc.get_stats())


def shm_segment_count() -> int:
    """Live ``repro-shm`` segments owned by this process."""
    # Imported lazily: repro.parallel imports repro.obs at module scope,
    # so a top-level import here would be circular.
    from repro.parallel import shm as shm_transport

    return len(shm_transport.list_segments(pids={os.getpid()}))


class ResourceMonitor:
    """Background thread recording resource gauges at a fixed interval.

    One instance per process (:data:`MONITOR`); :func:`start` /
    :func:`stop` manage it.  :meth:`sample_now` records one sample
    synchronously — the aggregation layer calls it before draining a
    worker snapshot so every shipped snapshot carries fresh readings.
    """

    def __init__(self) -> None:
        self.interval_s = DEFAULT_INTERVAL_S
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()

    @property
    def running(self) -> bool:
        """True while the sampling thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def sample_now(self) -> dict[str, float]:
        """Record one sample into the metrics registry; return the readings."""
        rss_mb, peak_mb = read_rss_mb()
        readings = {
            "res.rss_mb": rss_mb,
            "res.rss_peak_mb": peak_mb,
            "res.cpu_s": cpu_seconds(),
            "res.gc_collections": float(gc_collections()),
            "res.shm_segments": float(shm_segment_count()),
        }
        for name, value in readings.items():
            _metrics.set_gauge(name, value)
        return readings

    def start(self, interval_s: float = DEFAULT_INTERVAL_S) -> None:
        """Start periodic sampling; no-op if already running."""
        if self.running:
            return
        self.interval_s = max(0.01, float(interval_s))
        self._stop_event = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-resources", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling, recording one final sample first."""
        thread = self._thread
        if thread is None:
            return
        self._stop_event.set()
        thread.join(timeout=2.0)
        self._thread = None
        self.sample_now()

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval_s):
            self.sample_now()


#: The process-wide monitor (workers get their own copy post-spawn).
MONITOR = ResourceMonitor()


def start(interval_s: float = DEFAULT_INTERVAL_S) -> None:
    """Start the process-wide resource monitor (no-op when running)."""
    MONITOR.start(interval_s=interval_s)


def stop() -> None:
    """Stop the process-wide monitor (records one final sample)."""
    MONITOR.stop()


def is_running() -> bool:
    """Whether the process-wide monitor is sampling right now."""
    return MONITOR.running
