"""Hierarchical span tracer with a disabled-by-default fast path.

A *span* is one named wall-clock interval (``trace.span("localize.refine")``
as a context manager or decorator).  Spans nest: each thread keeps a stack
of open spans, and a finished span records its parent's id, so the event
stream reconstructs the call tree.  Durations come from
``time.perf_counter`` (monotonic); absolute origins are per-process and
never compared across processes — only durations and parent links are.

Telemetry is off by default and must cost nearly nothing when off: the
module-level :func:`span` performs a single attribute check and returns a
shared no-op context manager, so instrumented hot paths (``measure_position``,
ring building, per-chunk executor work) pay one branch per call.  When
enabled, finished spans append one event dict to an in-memory buffer that
:func:`repro.obs.aggregate.snapshot_and_reset` serializes for worker →
parent shipping and :func:`flush_jsonl` writes as JSON Lines.

The event schema (one JSON object per line) is shared by every process::

    {"type": "span", "name": str, "span_id": "pid-n", "parent_id": str|null,
     "dur_ms": float, "pid": int, "tid": int, "status": "ok"|"error"}

``span_id`` embeds the producing pid, so merging worker buffers into the
parent (:mod:`repro.obs.aggregate`) never collides ids.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from collections.abc import Callable, Iterator


class TraceState:
    """Process-local tracer state: the enable flag, buffer, and span stack.

    Attributes:
        enabled: Master switch; every recording call checks it first.
        events: Completed-span (and metric) event dicts, in finish order.
        stacks: Thread ident -> that thread's live span stack (entries are
            ``(span_id, name)`` tuples).  The sampling profiler
            (:mod:`repro.obs.profile`) reads these from its own thread to
            attribute stack samples to open spans; under the GIL a
            ``tuple(stack)`` snapshot is safe against concurrent
            append/del from the owning thread.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.events: list[dict] = []
        self.stacks: dict[int, list] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        self._counter = 0

    # -- span bookkeeping ---------------------------------------------------

    def _stack(self) -> list[tuple[str, str]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        # Re-register every call: cheap (one dict store), and self-healing
        # after reset() or a profiler attaching mid-run.
        self.stacks[threading.get_ident()] = stack
        return stack

    def next_span_id(self) -> str:
        """Allocate a process-unique span id (``pid-counter``)."""
        with self._lock:
            self._counter += 1
            return f"{os.getpid()}-{self._counter}"

    def record(self, event: dict) -> None:
        """Append one event to the buffer (thread-safe)."""
        with self._lock:
            self.events.append(event)

    def drain(self) -> list[dict]:
        """Return and clear the buffered events."""
        with self._lock:
            out = self.events
            self.events = []
            return out

    def reset(self) -> None:
        """Drop all buffered events and restart span-id allocation."""
        with self._lock:
            self.events = []
            self._counter = 0


#: The process-wide tracer state (workers get their own copy post-spawn).
STATE = TraceState()


class Span:
    """One open span; context manager that records itself on exit.

    Attributes:
        name: Span name (dotted stage path, e.g. ``"localize.refine"``).
        duration_ms: Wall-clock milliseconds, set when the span closes.
    """

    __slots__ = ("name", "span_id", "parent_id", "duration_ms", "_t0")

    def __init__(self, name: str):
        self.name = name
        self.span_id: str | None = None
        self.parent_id: str | None = None
        self.duration_ms: float = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        if STATE.enabled:
            stack = STATE._stack()
            self.parent_id = stack[-1][0] if stack else None
            self.span_id = STATE.next_span_id()
            stack.append((self.span_id, self.name))
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_ms = (time.perf_counter() - self._t0) * 1e3
        if self.span_id is not None:
            stack = STATE._stack()
            # Exception safety: pop back to (and including) our own frame
            # even if an inner span leaked without closing.
            for i, (span_id, _name) in enumerate(stack):
                if span_id == self.span_id:
                    del stack[i:]
                    break
            STATE.record({
                "type": "span",
                "name": self.name,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "dur_ms": self.duration_ms,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "status": "error" if exc_type is not None else "ok",
            })


class _NullSpan:
    """Shared no-op span returned while tracing is disabled."""

    __slots__ = ()
    duration_ms = 0.0
    span_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def __call__(self, fn: Callable) -> Callable:
        return fn


_NULL_SPAN = _NullSpan()


def span(name: str) -> "Span | _NullSpan":
    """Open a named span (context manager); no-op while tracing is off.

    Args:
        name: Dotted stage name (``"physics.transport"``).

    Returns:
        A :class:`Span` when tracing is enabled, otherwise a shared no-op
        object — the disabled cost is this one attribute check.
    """
    if not STATE.enabled:
        return _NULL_SPAN
    return Span(name)


def timed_span(name: str) -> Span:
    """A span that *always* measures its duration.

    Unlike :func:`span`, the returned object times the interval even while
    tracing is disabled (``duration_ms`` is valid either way); an event is
    recorded only when tracing is on.  :class:`repro.platforms.timing
    .StageTimer` delegates here so platform timings and campaign traces
    share one clock and event schema.
    """
    return Span(name)


def traced(name: str) -> Callable:
    """Decorator form of :func:`span`.

    Example::

        @traced("nn.fit")
        def fit(...): ...
    """
    def wrap(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def inner(*args, **kwargs):
            if not STATE.enabled:
                return fn(*args, **kwargs)
            with Span(name):
                return fn(*args, **kwargs)
        return inner
    return wrap


def enable() -> None:
    """Turn tracing on for this process (buffer starts empty)."""
    STATE.reset()
    STATE.enabled = True


def disable() -> None:
    """Turn tracing off and drop any buffered events."""
    STATE.enabled = False
    STATE.reset()


def is_enabled() -> bool:
    """Whether tracing is currently on in this process."""
    return STATE.enabled


def events() -> list[dict]:
    """Snapshot (copy) of the buffered events, oldest first."""
    with STATE._lock:
        return list(STATE.events)


def flush_jsonl(path: str | os.PathLike, extra_events: Iterator[dict] | None = None) -> int:
    """Write all buffered events (plus ``extra_events``) as JSON Lines.

    Args:
        path: Output file (overwritten).
        extra_events: Additional event dicts appended after the span
            events — :mod:`repro.obs.metrics` contributes its dump here.

    Returns:
        Number of lines written.
    """
    all_events = events()
    if extra_events is not None:
        all_events = all_events + list(extra_events)
    with open(path, "w") as f:
        for ev in all_events:
            f.write(json.dumps(ev) + "\n")
    return len(all_events)


def load_jsonl(path: str | os.PathLike) -> list[dict]:
    """Read a JSONL trace file back into a list of event dicts."""
    out: list[dict] = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
