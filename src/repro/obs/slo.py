"""Declarative SLOs evaluated from traces, histograms, and perf results.

An SLO spec is a plain dict (JSON-loadable, see :func:`load_spec`) with
three optional rule families::

    {"stages":     {"executor.chunk": {"p95_ms": 500.0, "p99_ms": 900.0}},
     "histograms": {"executor.worker_busy_ms": {"p95_ms": 800.0}},
     "ops":        {"int8_linear_block597": {"min_rows_per_s": 2.0e6}},
     "serve":      {"load": {"p99_ms": 2000.0, "min_req_per_s": 10.0}}}

* ``stages`` — per-span-name latency ceilings, checked against the exact
  per-span ``dur_ms`` values in a trace event stream (nearest-rank
  percentile over the raw durations; no bucketing error).
* ``histograms`` — latency ceilings checked against a metrics-registry
  histogram via :meth:`repro.obs.metrics.Histogram.percentile` (an
  upper-bound estimate, so a pass here is conservative).
* ``ops`` — throughput floors checked against a ``name -> rows/s`` dict
  from :func:`repro.perf.registry.run_all`.
* ``serve`` — per-load-run latency ceilings (``pNN_ms``) and sustained
  request-rate floors (``min_req_per_s``) checked against named
  :class:`repro.serve.load.LoadReport` dicts (``p50_ms``/``p95_ms``/
  ``p99_ms``/``req_per_s`` keys).

:func:`evaluate` returns a report dict with one entry per check
(``value``, ``limit``, ``margin``, ``passed``) plus an overall verdict;
``scripts/bench_report.py`` embeds the report in ``BENCH_*.json`` and
``scripts/ci_checks.py`` fails the build on breaches.  A rule naming a
stage/histogram/op absent from the inputs fails with ``value: None`` —
a vanished metric is a telemetry regression, not a pass.
"""

from __future__ import annotations

import json
import math
import os

from repro.obs.metrics import Histogram


def default_spec() -> dict:
    """The repo's checked-in SLO floor for the e2e campaign benchmark.

    Limits sit ~4x off the values measured on the reference container
    (see ``BENCH_pr7.json``) so routine machine noise never trips them,
    while a genuine order-of-magnitude regression does.  A function
    rather than a module constant so callers can mutate their copy
    freely.
    """
    return {
        "stages": {
            "executor.chunk": {"p95_ms": 2000.0},
            "executor.map": {"p99_ms": 20000.0},
        },
        "histograms": {
            "executor.worker_busy_ms": {"p95_ms": 5000.0},
        },
        "ops": {
            "int8_linear_block597": {"min_rows_per_s": 1.0e5},
            "linear_f32_block597": {"min_rows_per_s": 1.0e5},
        },
        "serve": {
            "load": {
                "p50_ms": 500.0,
                "p95_ms": 750.0,
                "p99_ms": 1000.0,
                "min_req_per_s": 15.0,
            },
        },
    }


def load_spec(path: str | os.PathLike) -> dict:
    """Read an SLO spec from a JSON file (shape as in the module doc)."""
    with open(path) as f:
        spec = json.load(f)
    for key in spec:
        if key not in ("stages", "histograms", "ops", "serve"):
            raise ValueError(f"unknown SLO spec section {key!r}")
    return spec


def exact_percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of raw samples (0.0 for an empty list)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered), max(1, math.ceil(q * len(ordered))))
    return ordered[rank - 1]


def stage_durations(events: list[dict]) -> dict[str, list[float]]:
    """Per-span-name lists of ``dur_ms`` from a trace event stream."""
    out: dict[str, list[float]] = {}
    for ev in events:
        if ev.get("type") == "span":
            out.setdefault(ev["name"], []).append(float(ev["dur_ms"]))
    return out


def _percentile_rules(rules: dict) -> list[tuple[str, float, float]]:
    """``p95_ms``-style keys parsed to ``(metric, quantile, limit)``."""
    parsed = []
    for key, limit in rules.items():
        if not (key.startswith("p") and key.endswith("_ms")):
            raise ValueError(f"unknown latency rule {key!r}")
        parsed.append((key, float(key[1:-3]) / 100.0, float(limit)))
    return parsed


def evaluate(spec: dict,
             events: list[dict] | None = None,
             metrics: dict | None = None,
             perf: dict[str, float] | None = None,
             serve: dict[str, dict] | None = None) -> dict:
    """Check every rule in ``spec`` against the supplied measurements.

    Args:
        spec: SLO spec dict (see module doc / :func:`default_spec`).
        events: Trace event stream for ``stages`` rules.
        metrics: :meth:`MetricsRegistry.dump` snapshot for ``histograms``
            rules.
        perf: ``name -> rows/s`` for ``ops`` rules.
        serve: ``name -> load-report dict`` for ``serve`` rules (the
            :meth:`repro.serve.load.LoadReport.to_dict` shape).

    Returns:
        ``{"passed": bool, "checks": [...], "n_failed": int}`` where each
        check records ``kind``, ``name``, ``metric``, ``limit``,
        ``value`` (None when the input lacks the name), ``margin``
        (positive = headroom, as a fraction of the limit), ``passed``.
    """
    checks: list[dict] = []
    durations = stage_durations(events or [])
    for name, rules in spec.get("stages", {}).items():
        samples = durations.get(name)
        for metric, q, limit in _percentile_rules(rules):
            value = exact_percentile(samples, q) if samples else None
            checks.append(_latency_check("stage", name, metric, limit, value))
    hists = (metrics or {}).get("histograms", {})
    for name, rules in spec.get("histograms", {}).items():
        hist_dict = hists.get(name)
        hist = Histogram.from_dict(hist_dict) if hist_dict else None
        for metric, q, limit in _percentile_rules(rules):
            value = hist.percentile(q) if hist and hist.count else None
            checks.append(_latency_check("histogram", name, metric, limit, value))
    for name, rules in spec.get("ops", {}).items():
        value = (perf or {}).get(name)
        for metric, limit in rules.items():
            if metric != "min_rows_per_s":
                raise ValueError(f"unknown ops rule {metric!r}")
            limit = float(limit)
            ok = value is not None and value >= limit
            margin = (value / limit - 1.0) if value is not None else None
            checks.append({"kind": "op", "name": name, "metric": metric,
                           "limit": limit, "value": value,
                           "margin": _round(margin), "passed": ok})
    for name, rules in spec.get("serve", {}).items():
        report = (serve or {}).get(name)
        for metric, limit in rules.items():
            limit = float(limit)
            if metric == "min_req_per_s":
                value = None if report is None else report.get("req_per_s")
                ok = value is not None and value >= limit
                margin = (value / limit - 1.0) if value is not None else None
                checks.append({"kind": "serve", "name": name,
                               "metric": metric, "limit": limit,
                               "value": _round(value),
                               "margin": _round(margin), "passed": ok})
            elif metric.startswith("p") and metric.endswith("_ms"):
                value = None if report is None else report.get(metric)
                checks.append(
                    _latency_check("serve", name, metric, limit, value)
                )
            else:
                raise ValueError(f"unknown serve rule {metric!r}")
    n_failed = sum(1 for c in checks if not c["passed"])
    return {"passed": n_failed == 0, "n_failed": n_failed, "checks": checks}


def _latency_check(kind: str, name: str, metric: str,
                   limit: float, value: float | None) -> dict:
    """One latency-ceiling check record (missing/inf values fail)."""
    ok = value is not None and math.isfinite(value) and value <= limit
    margin = (1.0 - value / limit) if ok or (
        value is not None and math.isfinite(value)) else None
    return {"kind": kind, "name": name, "metric": metric, "limit": limit,
            "value": _round(value), "margin": _round(margin), "passed": ok}


def _round(value: float | None) -> float | None:
    """Round to 4 decimals, passing None/inf through unchanged."""
    if value is None or not math.isfinite(value):
        return value
    return round(value, 4)


def render_report(report: dict) -> str:
    """Human-readable table of an :func:`evaluate` report."""
    lines = ["SLO report: " + ("PASS" if report["passed"] else
                               f"FAIL ({report['n_failed']} breached)")]
    lines.append(f"{'kind':<10} {'name':<34} {'metric':<16} "
                 f"{'value':>12} {'limit':>12}  status")
    for c in report["checks"]:
        value = "missing" if c["value"] is None else f"{c['value']:.6g}"
        status = "ok" if c["passed"] else "BREACH"
        lines.append(f"{c['kind']:<10} {c['name']:<34} {c['metric']:<16} "
                     f"{value:>12} {c['limit']:>12.6g}  {status}")
    return "\n".join(lines)
