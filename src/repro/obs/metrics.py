"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

Counters count occurrences (``cache.hit``, ``rings.rejected``, and the
executor's crash-recovery trio ``executor.worker_restarts`` /
``executor.chunk_retries`` / ``executor.timeouts``), gauges hold
a last-written value (``nn.epoch_loss``), and histograms accumulate samples
into fixed buckets (``executor.worker_busy_ms``).  Like the span tracer,
recording is a no-op while telemetry is disabled — each helper performs one
attribute check and returns — so instrumented hot paths stay free when
nobody is looking.

The registry serializes to plain dicts (:func:`dump`) that ride the same
JSONL sink as span events and merge across processes
(:func:`repro.obs.aggregate.merge_snapshot`): counters add, histograms add
bucket-wise (buckets are fixed so merging is exact), gauges keep the last
writer's value — except *peak-style* gauges (final name segment contains
``peak``, e.g. ``res.rss_peak_mb``), which merge with **max** so a
multi-worker merge reports the campaign-wide peak instead of whichever
worker reported last.
"""

from __future__ import annotations

import math
import threading

from repro.obs.trace import STATE

#: Default histogram bucket upper bounds (milliseconds); the last bucket is
#: unbounded.  Chosen to straddle the paper's stage-timing range (sub-ms
#: NN inference up to multi-second campaign stages).
DEFAULT_BUCKETS_MS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
                      200.0, 500.0, 1000.0, 2000.0, 5000.0)


def is_peak_gauge(name: str) -> bool:
    """Whether a gauge merges with max across processes.

    Peak-style gauges carry ``peak`` in their final dotted segment
    (``res.rss_peak_mb``): they record a per-process high-water mark, so
    the only lossless cross-process combination is the maximum.
    """
    return "peak" in name.rsplit(".", 1)[-1]


class Histogram:
    """Fixed-bucket histogram of float samples.

    Attributes:
        buckets: Ascending upper bounds; samples above the last bound land
            in an implicit overflow bucket.
        counts: Per-bucket sample counts (``len(buckets) + 1`` entries).
        total: Sum of all observed samples.
        count: Number of observed samples.
    """

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS_MS):
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one sample.  A sample exactly on a bound joins that
        bucket (bounds are inclusive upper edges)."""
        i = 0
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                break
        else:
            i = len(self.buckets)
        self.counts[i] += 1
        self.total += value
        self.count += 1

    def percentile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile from bucket counts.

        Returns the inclusive upper edge of the bucket containing the
        nearest-rank sample — the standard conservative estimate for
        fixed-bucket histograms (Prometheus-style, without
        interpolation).  An empty histogram returns 0.0; a quantile that
        lands in the overflow bucket returns ``inf`` (the histogram
        cannot bound it, which an SLO check should treat as a breach).

        Args:
            q: Quantile in [0, 1], e.g. ``0.95``.
        """
        if self.count == 0:
            return 0.0
        rank = min(self.count, max(1, math.ceil(q * self.count)))
        cumulative = 0
        for i, c in enumerate(self.counts):
            cumulative += c
            if cumulative >= rank:
                return self.buckets[i] if i < len(self.buckets) else math.inf
        return math.inf

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram with identical buckets into this one."""
        if other.buckets != self.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.count += other.count

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe)."""
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
        }

    @staticmethod
    def from_dict(d: dict) -> "Histogram":
        """Rebuild a histogram from :meth:`to_dict` output."""
        h = Histogram(tuple(d["buckets"]))
        h.counts = list(d["counts"])
        h.total = float(d["total"])
        h.count = int(d["count"])
        return h


class MetricsRegistry:
    """Thread-safe name-keyed store of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self.gauges[name] = float(value)

    def observe(self, name: str, value: float,
                buckets: tuple[float, ...] = DEFAULT_BUCKETS_MS) -> None:
        """Record ``value`` into histogram ``name`` (created on first use)."""
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = Histogram(buckets)
                self.histograms[name] = hist
            hist.observe(value)

    def dump(self) -> dict:
        """Serializable snapshot: counters, gauges, histogram dicts."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {k: h.to_dict() for k, h in self.histograms.items()},
            }

    def merge(self, snap: dict) -> None:
        """Fold a :meth:`dump` snapshot (possibly from another process) in."""
        with self._lock:
            for name, v in snap.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + v
            for name, v in snap.get("gauges", {}).items():
                if is_peak_gauge(name) and name in self.gauges:
                    self.gauges[name] = max(self.gauges[name], v)
                else:
                    self.gauges[name] = v
            for name, d in snap.get("histograms", {}).items():
                incoming = Histogram.from_dict(d)
                mine = self.histograms.get(name)
                if mine is None:
                    self.histograms[name] = incoming
                else:
                    mine.merge(incoming)

    def reset(self) -> None:
        """Drop every metric."""
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()


#: The process-wide registry, guarded by the same enable flag as the tracer.
REGISTRY = MetricsRegistry()


def inc(name: str, n: int = 1) -> None:
    """Increment a counter; no-op while telemetry is disabled."""
    if not STATE.enabled:
        return
    REGISTRY.inc(name, n)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge; no-op while telemetry is disabled."""
    if not STATE.enabled:
        return
    REGISTRY.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Histogram-observe a value; no-op while telemetry is disabled."""
    if not STATE.enabled:
        return
    REGISTRY.observe(name, value)


def metric_events() -> list[dict]:
    """The registry rendered as JSONL-ready event dicts.

    One ``{"type": "counter"|"gauge"|"histogram", ...}`` dict per metric,
    appended after span events by the CLI's trace sink.
    """
    snap = REGISTRY.dump()
    out: list[dict] = []
    for name in sorted(snap["counters"]):
        out.append({"type": "counter", "name": name,
                    "value": snap["counters"][name]})
    for name in sorted(snap["gauges"]):
        out.append({"type": "gauge", "name": name,
                    "value": snap["gauges"][name]})
    for name in sorted(snap["histograms"]):
        out.append({"type": "histogram", "name": name,
                    **snap["histograms"][name]})
    return out
