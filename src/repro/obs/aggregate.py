"""Cross-process telemetry aggregation for the campaign executor.

Workers record spans and metrics into their own process-local buffers;
shipping them live would serialize the hot path, so instead each worker
snapshots its buffer once per completed chunk and piggy-backs the snapshot
on the chunk's result message (:mod:`repro.parallel.executor`).  The parent
merges snapshots as results arrive, producing one coherent trace for the
whole campaign regardless of ``--workers``.

Merging rules:

* **Spans** — worker span ids already embed the producing pid, so they
  never collide with parent ids.  Worker *root* spans (``parent_id is
  None`` in the worker) are re-parented under the parent-side span that
  was open when the chunk was dispatched (normally ``executor.map``), so
  the merged tree stays rooted in the parent's call stack.
* **Counters / histograms** — added; buckets are fixed so histogram
  addition is exact.
* **Gauges** — last writer wins (arrival order), except peak-style
  gauges (``res.rss_peak_mb``), which merge with max — see
  :func:`repro.obs.metrics.is_peak_gauge`.
* **Profiles** — folded-stack sample counts and span self/total times
  add (:meth:`repro.obs.profile.ProfileBuffer.merge`), so the merged
  profile covers every process's samples.

Workers also need to know *which* telemetry subsystems to run: the
parent describes its own live configuration with :func:`worker_flags`
(``None`` while telemetry is off, so disabled runs ship one extra
``None`` per chunk message and nothing else), the executor piggy-backs
that dict on each chunk message, and the worker applies it with
:func:`apply_worker_flags` — mirroring the parent's tracer, sampling
profiler, and resource monitor state before running the chunk.
"""

from __future__ import annotations

from repro.obs import metrics as _metrics
from repro.obs import profile as _profile
from repro.obs import resources as _resources
from repro.obs import trace as _trace
from repro.obs.trace import STATE


def worker_flags() -> dict | None:
    """This process's telemetry configuration, for shipping to workers.

    Returns ``None`` while telemetry is disabled (the executor then
    sends workers a plain "off" signal at zero marginal cost).  When
    enabled, the dict mirrors the parent's live subsystems::

        {"trace": True, "profile_hz": 100.0 | None,
         "resources_s": 0.25 | None}
    """
    if not STATE.enabled:
        return None
    return {
        "trace": True,
        "profile_hz": (_profile.PROFILER.hz
                       if _profile.PROFILER.running else None),
        "resources_s": (_resources.MONITOR.interval_s
                        if _resources.MONITOR.running else None),
    }


def apply_worker_flags(flags: dict | None) -> None:
    """Mirror a parent's :func:`worker_flags` dict in this process.

    Idempotent: called once per chunk message, it only starts/stops
    subsystems on state *changes*, so steady-state chunks pay a few
    attribute checks.  ``None`` (telemetry off) stops everything.
    """
    if flags is None:
        if STATE.enabled:
            _profile.PROFILER.stop()
            _resources.MONITOR.stop()
            _trace.disable()
            _metrics.REGISTRY.reset()
            _profile.PROFILER.buffer.reset()
        return
    if not STATE.enabled:
        _trace.enable()
    profile_hz = flags.get("profile_hz")
    if profile_hz and not _profile.PROFILER.running:
        _profile.PROFILER.start(hz=profile_hz)
    elif not profile_hz and _profile.PROFILER.running:
        _profile.PROFILER.stop()
    resources_s = flags.get("resources_s")
    if resources_s and not _resources.MONITOR.running:
        _resources.MONITOR.start(interval_s=resources_s)
    elif not resources_s and _resources.MONITOR.running:
        _resources.MONITOR.stop()


def snapshot_and_reset() -> dict | None:
    """Drain this process's telemetry into a serializable snapshot.

    Returns ``None`` when telemetry is disabled (so the executor ships no
    extra bytes on the result queue in the common case).  When the
    resource monitor is running, one fresh sample is recorded first so
    every shipped snapshot carries current gauges (a chunk can finish
    between monitor ticks).
    """
    if not STATE.enabled:
        return None
    if _resources.MONITOR.running:
        _resources.MONITOR.sample_now()
    events = STATE.drain()
    metric_snap = _metrics.REGISTRY.dump()
    _metrics.REGISTRY.reset()
    profile_snap = _profile.snapshot_and_reset()
    if not events and profile_snap is None and not metric_snap["counters"] \
            and not metric_snap["histograms"] and not metric_snap["gauges"]:
        return None
    snap = {"events": events, "metrics": metric_snap}
    if profile_snap is not None:
        snap["profile"] = profile_snap
    return snap


def merge_snapshot(snap: dict | None, parent_span_id: str | None = None) -> None:
    """Fold a worker snapshot into this process's buffers.

    Args:
        snap: A :func:`snapshot_and_reset` payload (``None`` is a no-op).
        parent_span_id: Span id to graft worker root spans onto (the
            parent-side span active around the executor map call).
    """
    if snap is None or not STATE.enabled:
        return
    for ev in snap.get("events", ()):
        if ev.get("type") == "span" and ev.get("parent_id") is None:
            ev = dict(ev)
            ev["parent_id"] = parent_span_id
        STATE.record(ev)
    _metrics.REGISTRY.merge(snap.get("metrics", {}))
    _profile.merge_profile(snap.get("profile"))
