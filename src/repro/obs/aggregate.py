"""Cross-process telemetry aggregation for the campaign executor.

Workers record spans and metrics into their own process-local buffers;
shipping them live would serialize the hot path, so instead each worker
snapshots its buffer once per completed chunk and piggy-backs the snapshot
on the chunk's result message (:mod:`repro.parallel.executor`).  The parent
merges snapshots as results arrive, producing one coherent trace for the
whole campaign regardless of ``--workers``.

Merging rules:

* **Spans** — worker span ids already embed the producing pid, so they
  never collide with parent ids.  Worker *root* spans (``parent_id is
  None`` in the worker) are re-parented under the parent-side span that
  was open when the chunk was dispatched (normally ``executor.map``), so
  the merged tree stays rooted in the parent's call stack.
* **Counters / histograms** — added; buckets are fixed so histogram
  addition is exact.
* **Gauges** — last writer wins (arrival order).
"""

from __future__ import annotations

from repro.obs import metrics as _metrics
from repro.obs.trace import STATE


def snapshot_and_reset() -> dict | None:
    """Drain this process's telemetry into a serializable snapshot.

    Returns ``None`` when telemetry is disabled (so the executor ships no
    extra bytes on the result queue in the common case).
    """
    if not STATE.enabled:
        return None
    events = STATE.drain()
    metric_snap = _metrics.REGISTRY.dump()
    _metrics.REGISTRY.reset()
    if not events and not metric_snap["counters"] and not metric_snap["histograms"] \
            and not metric_snap["gauges"]:
        return None
    return {"events": events, "metrics": metric_snap}


def merge_snapshot(snap: dict | None, parent_span_id: str | None = None) -> None:
    """Fold a worker snapshot into this process's buffers.

    Args:
        snap: A :func:`snapshot_and_reset` payload (``None`` is a no-op).
        parent_span_id: Span id to graft worker root spans onto (the
            parent-side span active around the executor map call).
    """
    if snap is None or not STATE.enabled:
        return
    for ev in snap.get("events", ()):
        if ev.get("type") == "span" and ev.get("parent_id") is None:
            ev = dict(ev)
            ev["parent_id"] = parent_span_id
        STATE.record(ev)
    _metrics.REGISTRY.merge(snap.get("metrics", {}))
