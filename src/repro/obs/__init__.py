"""Telemetry substrate: spans, metrics, cross-process aggregation, logging.

The paper's whole argument is a latency/accuracy budget — stage timings
decide whether the networks fit the real-time localization loop — so the
reproduction needs end-to-end visibility: which stage costs what, how busy
executor workers are, whether the stage cache actually hits.  ``repro.obs``
is that substrate:

* :mod:`repro.obs.trace` — hierarchical span tracer with a JSONL sink.
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms.
* :mod:`repro.obs.profile` — span-aware sampling profiler (folded
  stacks + per-stage self/total time; ``repro profile-summary``).
* :mod:`repro.obs.resources` — periodic RSS / CPU / GC / shm gauges.
* :mod:`repro.obs.export` — Prometheus text exposition + the
  ``--metrics-out`` JSONL metrics stream.
* :mod:`repro.obs.slo` — declarative latency/throughput SLOs evaluated
  from traces, histograms, and ``repro.perf`` results.
* :mod:`repro.obs.aggregate` — worker snapshots piggy-backed on executor
  results and merged parent-side into one coherent campaign trace.
* :mod:`repro.obs.summary` — the ``repro trace-summary`` per-stage rollup.
* :mod:`repro.obs.log` — stderr status / stdout results CLI logging.

Everything is **off by default** and costs one attribute check per
instrumentation point when off; telemetry never influences RNG streams,
stage-cache keys, or cached payloads, so traced and untraced runs are
bit-identical.  Enable with :func:`enable` (the CLI's ``--trace`` flag).
"""

from repro.obs import export, log, profile, resources, slo
from repro.obs.aggregate import (
    apply_worker_flags,
    merge_snapshot,
    snapshot_and_reset,
    worker_flags,
)
from repro.obs.metrics import (
    REGISTRY,
    Histogram,
    MetricsRegistry,
    inc,
    metric_events,
    observe,
    set_gauge,
)
from repro.obs.summary import render_table, summarize, summary_dict
from repro.obs.trace import (
    Span,
    events,
    flush_jsonl,
    is_enabled,
    load_jsonl,
    span,
    timed_span,
    traced,
)
from repro.obs.trace import disable as _trace_disable
from repro.obs.trace import enable as _trace_enable


def enable() -> None:
    """Turn telemetry on process-wide (tracer + metrics, fresh buffers).

    The profiler and resource monitor are *not* started here — they are
    opt-in via :func:`profile.start` / :func:`resources.start` (the
    CLI's ``--profile`` / ``--resources`` flags) — but their buffers are
    cleared so a new enabled session starts from zero.
    """
    REGISTRY.reset()
    profile.PROFILER.buffer.reset()
    _trace_enable()


def disable() -> None:
    """Turn telemetry off: stop samplers, drop all buffers and metrics."""
    profile.PROFILER.stop()
    resources.MONITOR.stop()
    _trace_disable()
    REGISTRY.reset()
    profile.PROFILER.buffer.reset()


__all__ = [
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "apply_worker_flags",
    "disable",
    "enable",
    "events",
    "export",
    "flush_jsonl",
    "inc",
    "is_enabled",
    "load_jsonl",
    "log",
    "merge_snapshot",
    "metric_events",
    "observe",
    "profile",
    "render_table",
    "resources",
    "set_gauge",
    "slo",
    "snapshot_and_reset",
    "span",
    "summarize",
    "summary_dict",
    "timed_span",
    "traced",
    "worker_flags",
]
