"""Span-aware sampling profiler: where the time goes *inside* a stage.

The span tracer (:mod:`repro.obs.trace`) answers "which stage was slow";
this module answers "where inside it".  A background thread walks every
thread's Python stack (``sys._current_frames()``) at a configurable rate
and accumulates two views per sample:

* **Folded stacks** — the frame chain root→leaf joined with ``;``
  (``repro.physics.transport:transport;numpy:dot``), counted per distinct
  stack.  ``repro profile-summary --folded out.txt`` writes the standard
  flamegraph/speedscope input format (``stack count`` lines).
* **Span attribution** — each sample is charged to the sampled thread's
  *open span stack*: the innermost span accrues *self* time, every
  enclosing span accrues *total* time (dt-weighted milliseconds).  This
  is the per-stage self/total table the paper's latency budget needs.

Sampling is **span-gated by default** (``require_span=True``): threads
with no open span are skipped, so idle executor workers waiting on their
inbox and interpreter-internal threads never pollute the profile.  The
profiler thread excludes itself and costs one stack walk per live traced
thread per tick — at the default 100 Hz that is well under the 5%
overhead budget pinned by ``BENCH_pr7.json``.

Worker processes run their own profiler (mirroring the parent's, see
:func:`repro.obs.aggregate.worker_flags`); their buffers are drained into
the chunk-result snapshot and merged parent-side by
:func:`merge_profile`, so a 4-worker campaign yields one merged profile
spanning every pid.
"""

from __future__ import annotations

import os
import sys
import threading
import time

from repro.obs.trace import STATE

#: Default sampling rate, Hz.  100 Hz resolves millisecond-scale stages
#: while keeping the walk cost well inside the <5% overhead budget.
DEFAULT_HZ = 100.0

#: Frames kept per sampled stack; deeper chains are truncated at the root.
MAX_STACK_DEPTH = 64

#: Span-attribution key for samples taken outside any open span (only
#: recorded when ``require_span=False``).
NO_SPAN = "(no span)"


class ProfileBuffer:
    """Thread-safe accumulator of profile samples.

    Attributes:
        folded: Folded python stack (``a;b;c``) -> sample count.
        span_self_ms: Span name -> milliseconds sampled with that span
            innermost.
        span_total_ms: Span name -> milliseconds sampled with that span
            anywhere on the open-span stack.
        samples: Total thread-samples recorded.
        duration_s: Profiled wall-clock this buffer covers (summed across
            processes after merging).
        pids: Process ids that contributed samples.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.folded: dict[str, int] = {}
        self.span_self_ms: dict[str, float] = {}
        self.span_total_ms: dict[str, float] = {}
        self.samples = 0
        self.duration_s = 0.0
        self.pids: set[int] = set()

    def add(self, folded_key: str, span_names: tuple[str, ...], dt_ms: float) -> None:
        """Record one thread-sample (called from the profiler thread)."""
        with self._lock:
            self.folded[folded_key] = self.folded.get(folded_key, 0) + 1
            self.samples += 1
            self.pids.add(os.getpid())
            leaf = span_names[-1] if span_names else NO_SPAN
            self.span_self_ms[leaf] = self.span_self_ms.get(leaf, 0.0) + dt_ms
            for name in set(span_names) or {NO_SPAN}:
                self.span_total_ms[name] = (
                    self.span_total_ms.get(name, 0.0) + dt_ms
                )

    def add_duration(self, dt_s: float) -> None:
        """Account profiled wall-clock (one tick's dt)."""
        with self._lock:
            self.duration_s += dt_s

    def merge(self, snap: dict) -> None:
        """Fold a :meth:`to_dict` snapshot (possibly another process's) in."""
        with self._lock:
            for key, n in snap.get("folded", {}).items():
                self.folded[key] = self.folded.get(key, 0) + n
            for key, ms in snap.get("span_self_ms", {}).items():
                self.span_self_ms[key] = self.span_self_ms.get(key, 0.0) + ms
            for key, ms in snap.get("span_total_ms", {}).items():
                self.span_total_ms[key] = self.span_total_ms.get(key, 0.0) + ms
            self.samples += snap.get("samples", 0)
            self.duration_s += snap.get("duration_s", 0.0)
            self.pids.update(snap.get("pids", ()))

    def to_dict(self) -> dict:
        """JSON-safe snapshot of the buffer."""
        with self._lock:
            return {
                "samples": self.samples,
                "duration_s": self.duration_s,
                "pids": sorted(self.pids),
                "folded": dict(self.folded),
                "span_self_ms": dict(self.span_self_ms),
                "span_total_ms": dict(self.span_total_ms),
            }

    def drain(self) -> dict | None:
        """Snapshot and clear; None when no samples were recorded."""
        with self._lock:
            if not self.samples:
                return None
            snap = {
                "samples": self.samples,
                "duration_s": self.duration_s,
                "pids": sorted(self.pids),
                "folded": self.folded,
                "span_self_ms": self.span_self_ms,
                "span_total_ms": self.span_total_ms,
            }
            self.folded = {}
            self.span_self_ms = {}
            self.span_total_ms = {}
            self.samples = 0
            self.duration_s = 0.0
            self.pids = set()
            return snap

    def reset(self) -> None:
        """Drop everything."""
        self.drain()


class SamplingProfiler:
    """Background-thread stack sampler with span attribution.

    One instance per process (:data:`PROFILER`); :func:`start` /
    :func:`stop` manage it.  Starting an already-running profiler is a
    no-op (the first configuration wins until :func:`stop`).

    Attributes:
        buffer: The accumulating :class:`ProfileBuffer` (merged worker
            snapshots also land here, parent-side).
        hz: Sampling rate of the running (or last) session.
        require_span: Skip threads with no open span (default True).
    """

    def __init__(self) -> None:
        self.buffer = ProfileBuffer()
        self.hz = DEFAULT_HZ
        self.require_span = True
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()

    @property
    def running(self) -> bool:
        """True while the sampling thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self, hz: float = DEFAULT_HZ, require_span: bool = True) -> None:
        """Start sampling at ``hz``; no-op if already running."""
        if self.running:
            return
        self.hz = max(1.0, float(hz))
        self.require_span = bool(require_span)
        self._stop_event = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the sampling thread (buffer contents are kept)."""
        thread = self._thread
        if thread is None:
            return
        self._stop_event.set()
        thread.join(timeout=2.0)
        self._thread = None

    def _run(self) -> None:
        interval = 1.0 / self.hz
        own = threading.get_ident()
        last = time.perf_counter()
        while not self._stop_event.wait(interval):
            now = time.perf_counter()
            dt_s = now - last
            last = now
            self._sample_once(own, dt_s * 1e3)
            self.buffer.add_duration(dt_s)

    def _sample_once(self, own_ident: int, dt_ms: float) -> None:
        """Walk every thread's stack once and record the samples."""
        frames = sys._current_frames()
        try:
            for tid, frame in frames.items():
                if tid == own_ident:
                    continue
                stack = STATE.stacks.get(tid)
                spans = tuple(stack) if stack else ()
                if not spans and self.require_span:
                    continue
                names = tuple(name for _sid, name in spans)
                self.buffer.add(_fold(frame), names, dt_ms)
        finally:
            del frames


def _fold(frame) -> str:
    """Folded ``module:function`` chain for a frame, root first."""
    parts: list[str] = []
    depth = 0
    while frame is not None and depth < MAX_STACK_DEPTH:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        parts.append(f"{module}:{code.co_name}")
        frame = frame.f_back
        depth += 1
    parts.reverse()
    return ";".join(parts)


#: The process-wide profiler (workers get their own copy post-spawn).
PROFILER = SamplingProfiler()


def start(hz: float = DEFAULT_HZ, require_span: bool = True) -> None:
    """Start the process-wide profiler (no-op when already running)."""
    PROFILER.start(hz=hz, require_span=require_span)


def stop() -> None:
    """Stop the process-wide profiler; accumulated samples are kept."""
    PROFILER.stop()


def is_running() -> bool:
    """Whether the process-wide profiler is sampling right now."""
    return PROFILER.running


def reset() -> None:
    """Drop every accumulated sample (the profiler keeps running)."""
    PROFILER.buffer.reset()


def snapshot_and_reset() -> dict | None:
    """Drain this process's profile for the worker snapshot protocol."""
    return PROFILER.buffer.drain()


def merge_profile(snap: dict | None) -> None:
    """Fold a worker's profile snapshot into this process's buffer."""
    if snap:
        PROFILER.buffer.merge(snap)


def profile_events() -> list[dict]:
    """The profile rendered as JSONL-ready event dicts (empty if none).

    One ``{"type": "profile", ...}`` dict carrying the whole buffer,
    appended after metric events by the CLI's trace sink.
    """
    snap = PROFILER.buffer.to_dict()
    if not snap["samples"]:
        return []
    return [{"type": "profile", **snap}]


def function_stats(folded: dict[str, int]) -> list[tuple[str, int, int]]:
    """Per-function ``(name, self_samples, total_samples)`` from folded stacks.

    *Self* counts stacks where the function is the leaf; *total* counts
    stacks where it appears at all (once per stack, recursion collapsed).
    Sorted by self samples, descending.
    """
    self_counts: dict[str, int] = {}
    total_counts: dict[str, int] = {}
    for key, n in folded.items():
        frames = key.split(";")
        if not frames:
            continue
        leaf = frames[-1]
        self_counts[leaf] = self_counts.get(leaf, 0) + n
        for name in set(frames):
            total_counts[name] = total_counts.get(name, 0) + n
    return sorted(
        (
            (name, self_counts.get(name, 0), total)
            for name, total in total_counts.items()
        ),
        key=lambda row: (-row[1], -row[2], row[0]),
    )


def merged_profile(events: list[dict]) -> dict | None:
    """Merge every ``type: "profile"`` event in a trace into one snapshot."""
    merged = ProfileBuffer()
    seen = False
    for ev in events:
        if ev.get("type") == "profile":
            merged.merge(ev)
            seen = True
    return merged.to_dict() if seen else None


def render_table(events: list[dict], top: int = 15) -> str:
    """Render the ``repro profile-summary`` tables from trace events.

    Two sections: per-span self/total milliseconds (the span-aware view)
    and the top-``top`` functions by self samples (the flat view).
    """
    snap = merged_profile(events)
    if snap is None:
        return "no profile events in trace (run with --profile)"
    lines = [
        f"profile: {snap['samples']} samples over "
        f"{snap['duration_s']:.2f}s profiled wall-clock, "
        f"pids {', '.join(str(p) for p in snap['pids'])}",
        "",
        f"{'span':40s} {'self ms':>12s} {'total ms':>12s} {'self %':>8s}",
    ]
    total_ms = sum(snap["span_self_ms"].values()) or 1.0
    by_self = sorted(snap["span_self_ms"].items(), key=lambda kv: -kv[1])
    for name, self_ms in by_self:
        lines.append(
            f"{name:40s} {self_ms:12.1f} "
            f"{snap['span_total_ms'].get(name, self_ms):12.1f} "
            f"{100.0 * self_ms / total_ms:7.1f}%"
        )
    lines.append("")
    lines.append(
        f"{'function (top ' + str(top) + ' by self)':60s} "
        f"{'self':>8s} {'total':>8s}"
    )
    for name, self_n, total_n in function_stats(snap["folded"])[:top]:
        lines.append(f"{name:60s} {self_n:8d} {total_n:8d}")
    return "\n".join(lines)


def write_folded(events: list[dict], path: str | os.PathLike) -> int:
    """Write merged folded stacks as ``stack count`` lines (flamegraph).

    Returns:
        Number of distinct stacks written.
    """
    snap = merged_profile(events)
    folded = snap["folded"] if snap else {}
    with open(path, "w") as f:
        for key in sorted(folded):
            f.write(f"{key} {folded[key]}\n")
    return len(folded)
