"""Parallel execution utilities.

Deterministic seed spawning, a persistent shared-memory campaign executor,
and a deterministic stage cache, per the hpc-parallel guidance: fan out
independent trials/exposures across a long-lived pool while keeping every
stream reproducible from a single master seed, and never recompute a pure
stage whose inputs have not changed.
"""

from repro.parallel.cache import StageCache, config_token, resolve_cache
from repro.parallel.executor import (
    CampaignExecutor,
    CampaignWorkerError,
    auto_chunksize,
    get_executor,
    live_executor,
    shutdown_executors,
)
from repro.parallel.pool import chunk_indices, parallel_map, spawn_rngs

__all__ = [
    "CampaignExecutor",
    "CampaignWorkerError",
    "StageCache",
    "auto_chunksize",
    "chunk_indices",
    "config_token",
    "get_executor",
    "live_executor",
    "parallel_map",
    "resolve_cache",
    "shutdown_executors",
    "spawn_rngs",
]
