"""Parallel execution utilities.

Deterministic seed spawning plus a chunked process-pool map, per the
hpc-parallel guidance: fan out independent trials/exposures across
processes while keeping every stream reproducible from a single master
seed.
"""

from repro.parallel.pool import chunk_indices, parallel_map, spawn_rngs

__all__ = ["parallel_map", "spawn_rngs", "chunk_indices"]
