"""Process-pool helpers with reproducible random streams.

``spawn_rngs`` derives independent, reproducible generators from one
master seed via :class:`numpy.random.SeedSequence` — the canonical pattern
for parallel Monte Carlo.  ``parallel_map`` runs an importable worker over
argument tuples, fanning out over the persistent
:class:`~repro.parallel.executor.CampaignExecutor` pool; it falls back to
serial execution for one worker, or for workloads too small to justify
*starting* a pool — but once a pool is already live, even tiny batches
ride the warm workers.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """``n`` independent generators derived from one master seed."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return [np.random.default_rng(ss) for ss in np.random.SeedSequence(seed).spawn(n)]


def chunk_indices(n_items: int, n_chunks: int) -> list[np.ndarray]:
    """Split ``range(n_items)`` into up to ``n_chunks`` contiguous chunks.

    Chunks are balanced to within one item; empty chunks are omitted.
    """
    if n_items < 0 or n_chunks < 1:
        raise ValueError("n_items must be >= 0 and n_chunks >= 1")
    chunks = np.array_split(np.arange(n_items), min(n_chunks, max(n_items, 1)))
    return [c for c in chunks if c.size > 0]


def parallel_map(
    worker: Callable,
    args: Sequence,
    n_workers: int,
    min_parallel: int = 4,
) -> list:
    """Map ``worker`` over ``args``, optionally across processes.

    Args:
        worker: Importable (module-level) callable taking one argument.
        args: Argument list.
        n_workers: Process count; <=1 runs serially.
        min_parallel: Workloads smaller than this run serially *unless* a
            pool for ``n_workers`` is already live — then the batch is
            routed through the warm workers (starting a pool would
            dominate; reusing one costs nothing).

    Returns:
        Results in input order.

    Raises:
        CampaignWorkerError: A task raised.  Error semantics match the
            executor at every worker count, so callers handle one
            exception type whether the batch ran serially or pooled.
    """
    from repro.parallel.executor import CampaignExecutor, get_executor, live_executor

    if n_workers <= 1:
        return CampaignExecutor(1).map(worker, args)
    executor = live_executor(n_workers)
    if executor is None and len(args) < min_parallel:
        return CampaignExecutor(1).map(worker, args)
    return (executor or get_executor(n_workers)).map(worker, args)
