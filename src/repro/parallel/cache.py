"""Deterministic on-disk cache for expensive pure campaign stages.

Campaign stages (training-data generation, trial sets) are pure functions
of ``(master seed, configuration)`` — the reproducibility contract the
whole stack is built on.  That makes them cacheable: key the result by a
stable hash of every input that changes it, store the result with pickle,
and a re-run of a figure script costs one disk read per stage instead of
minutes of Monte Carlo.  Companion of the ``.model_cache`` model zoo
(which caches *trained models*; this caches *campaign outputs*).

Keys must be identical across processes and interpreter runs, so hashing
walks the object tree explicitly (dataclasses, containers, scalars,
arrays) instead of relying on ``hash()`` (salted) or object identity.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from pathlib import Path

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: Default repo-local cache directory (git-ignored, like ``.model_cache``).
DEFAULT_CACHE_DIR = Path(__file__).resolve().parents[3] / ".campaign_cache"

#: Bump to invalidate every existing entry when stored semantics change.
CACHE_SCHEMA_VERSION = 1


def _feed(h, obj) -> None:
    """Recursively feed a canonical byte form of ``obj`` into hash ``h``."""
    if obj is None or isinstance(obj, (bool, int, float, complex, str, bytes)):
        h.update(f"{type(obj).__name__}:{obj!r};".encode())
    elif isinstance(obj, np.ndarray):
        h.update(f"ndarray:{obj.dtype.str}:{obj.shape};".encode())
        h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, np.generic):
        h.update(f"{type(obj).__name__}:{obj.item()!r};".encode())
    elif isinstance(obj, (list, tuple, set, frozenset)):
        items = sorted(obj, key=repr) if isinstance(obj, (set, frozenset)) else obj
        h.update(f"{type(obj).__name__}[{len(items)}];".encode())
        for item in items:
            _feed(h, item)
    elif isinstance(obj, dict):
        h.update(f"dict[{len(obj)}];".encode())
        for key in sorted(obj, key=repr):
            _feed(h, key)
            _feed(h, obj[key])
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        h.update(f"dc:{type(obj).__module__}.{type(obj).__qualname__};".encode())
        for f in dataclasses.fields(obj):
            h.update(f.name.encode())
            _feed(h, getattr(obj, f.name))
    else:
        # Last resort: pickle bytes.  Deterministic for the model/config
        # objects in this codebase (no memo-address leakage reaches the
        # stream for by-value data).
        h.update(f"pickle:{type(obj).__qualname__};".encode())
        h.update(pickle.dumps(obj, protocol=4))


def config_token(*parts: object) -> str:
    """Stable hex digest of an input-configuration tuple."""
    h = hashlib.sha256()
    _feed(h, CACHE_SCHEMA_VERSION)
    for part in parts:
        _feed(h, part)
    return h.hexdigest()[:32]


class StageCache:
    """Pickle-backed key-value store for pure stage results.

    Args:
        root: Cache directory (``.campaign_cache/`` at the repo root by
            default).  Created lazily on first store.
    """

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = Path(root) if root is not None else DEFAULT_CACHE_DIR

    def path_for(self, stage: str, token: str) -> Path:
        """File backing one ``(stage, token)`` entry."""
        return self.root / f"{stage}_{token}.pkl"

    def load(self, stage: str, token: str) -> object | None:
        """Return the cached result, or None on a miss (or unreadable entry).

        Telemetry (when enabled) distinguishes the outcomes that look
        identical to the caller: ``cache.hit``, ``cache.miss`` (no entry),
        and ``cache.corrupt`` (an entry exists but cannot be unpickled —
        previously a silent degradation to a miss).

        Corruption covers every way an entry written by an older code
        layout can fail to unpickle — truncated file, renamed/deleted
        module or attribute (``ModuleNotFoundError``/``AttributeError``),
        or a reduce payload the current classes reject
        (``IndexError``/``TypeError``/``ValueError``/``KeyError``).  A
        corrupt entry is quarantined (renamed to ``*.pkl.corrupt``) so
        it is recomputed once, not re-parsed and re-failed on every run.
        """
        path = self.path_for(stage, token)
        with obs_trace.span("cache.load"):
            if not path.exists():
                obs_metrics.inc("cache.miss")
                return None
            try:
                with open(path, "rb") as f:
                    result = pickle.load(f)
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError, IndexError, KeyError,
                    TypeError, ValueError):
                obs_metrics.inc("cache.corrupt")
                self._quarantine(path)
                return None
            obs_metrics.inc("cache.hit")
            return result

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a corrupt entry aside (best effort) so ``store`` can
        rewrite the real path and later loads miss cleanly."""
        try:
            path.replace(path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            pass

    def store(self, stage: str, token: str, result: object) -> None:
        """Persist a stage result atomically (rename over partial writes)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(stage, token)
        with obs_trace.span("cache.store"):
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    pickle.dump(result, f, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
                obs_metrics.inc("cache.store")
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise


def resolve_cache(cache: "StageCache | str | os.PathLike | bool | None") -> StageCache | None:
    """Normalize the ``cache`` argument campaign APIs accept.

    ``None``/``False`` disables caching, ``True`` uses the default
    directory, a path makes a cache rooted there, and a
    :class:`StageCache` passes through.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return StageCache()
    if isinstance(cache, StageCache):
        return cache
    return StageCache(cache)
