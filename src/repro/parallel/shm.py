"""Shared-memory transport for NumPy-bearing object trees.

``parallel_map``-style campaigns ship large hit/ring arrays between the
parent and its workers.  Pickling those arrays through a pipe copies every
byte twice (serialize + deserialize) and stalls the queue on large
payloads.  ``pack`` instead extracts every sizeable ``ndarray`` from an
arbitrary picklable object tree into a single
:class:`multiprocessing.shared_memory.SharedMemory` block and pickles only
the remaining skeleton (dataclasses, tuples, scalars, small arrays), so a
``TrainingData`` fragment or an ``EventSet`` crosses the process boundary
with one bulk memcpy per side and a few hundred bytes on the pipe.

Ownership protocol (keeps the ``resource_tracker`` quiet): the *creating*
process is the only one that ever calls ``unlink``.  The consumer attaches
by name, copies the arrays out (``unpack`` always returns fresh writable
arrays), and closes its mapping; the creator unlinks once it knows the
payload was consumed (in the executor: when the consumer's next message
arrives).

Crash accounting: every block is named ``repro-shm-<owner pid>-<seq>`` so
a segment orphaned by a killed process is attributable after the fact.
:func:`sweep_stale` removes segments whose owner is no longer alive — the
executor runs it at startup (janitor for previous crashed runs) and after
reaping a dead worker; ``scripts/check_shm.py`` runs it as a CI gate.
"""

from __future__ import annotations

import io
import itertools
import os
import pickle
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: Arrays at or above this many bytes travel through shared memory;
#: smaller ones ride the pickle skeleton (a pipe round-trip is cheaper
#: than an extra mmap for tiny payloads).
SHM_THRESHOLD_BYTES = 16_384

#: Every block this module creates is named ``<prefix>-<pid>-<seq>``.
SHM_NAME_PREFIX = "repro-shm"

#: Where POSIX shared memory surfaces as files (Linux).  On platforms
#: without it, :func:`list_segments` degrades to an empty listing.
_SHM_DIR = "/dev/shm"

_name_counter = itertools.count()  # reprolint: disable=WRK001 -- per-process counter, pid-fenced via _next_name


def _next_name() -> str:
    """A process-unique segment name encoding the owning pid."""
    return f"{SHM_NAME_PREFIX}-{os.getpid()}-{next(_name_counter)}"


def owner_pid(name: str) -> int | None:
    """The pid encoded in a segment name, or None for foreign names."""
    parts = name.split("-")
    if len(parts) != 4 or "-".join(parts[:2]) != SHM_NAME_PREFIX:
        return None
    try:
        return int(parts[2])
    except ValueError:
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def list_segments(pids: "set[int] | None" = None) -> list[str]:
    """Names of live ``repro-shm`` segments, optionally filtered by owner.

    Args:
        pids: Restrict to segments owned by these pids (None lists all).
    """
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return []
    out = []
    for entry in entries:
        pid = owner_pid(entry)
        if pid is None:
            continue
        if pids is None or pid in pids:
            out.append(entry)
    return sorted(out)


def sweep_stale(extra_pids: "set[int] | None" = None) -> list[str]:
    """Unlink orphaned segments; return the names removed.

    A segment is orphaned when its owning process is dead — a previous
    run that crashed before its ``unlink``, or a worker the executor had
    to kill.  ``extra_pids`` marks owners known-dead by the caller (a
    just-reaped worker) even if the pid has been recycled.
    """
    removed = []
    extra = extra_pids or set()
    for name in list_segments():
        pid = owner_pid(name)
        if pid in extra or not _pid_alive(pid):
            try:
                seg = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue
            seg.close()
            try:
                seg.unlink()
            except FileNotFoundError:
                continue
            removed.append(name)
    if removed:
        obs_metrics.inc("shm.segments_swept", len(removed))
    return removed


@dataclass
class PackedPayload:
    """One packed object tree.

    Attributes:
        skeleton: Pickle of the object tree with large arrays replaced by
            persistent-id placeholders.
        shm_name: Name of the shared-memory block holding the extracted
            arrays, or None when nothing crossed the threshold.
        array_meta: Per-extracted-array ``(dtype_str, shape, offset)``.
    """

    skeleton: bytes
    shm_name: str | None
    array_meta: list[tuple[str, tuple[int, ...], int]]


class _ArrayExtractingPickler(pickle.Pickler):
    """Pickler that siphons large ndarrays off into a side list."""

    def __init__(self, file: io.BytesIO, arrays: list[np.ndarray], threshold: int):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._arrays = arrays
        self._threshold = threshold

    def persistent_id(self, obj):  # noqa: D102 (pickle hook)
        if (
            type(obj) is np.ndarray
            and obj.dtype != object
            and obj.nbytes >= self._threshold
        ):
            self._arrays.append(np.ascontiguousarray(obj))
            return len(self._arrays) - 1
        return None


class _ArrayInsertingUnpickler(pickle.Unpickler):
    """Unpickler resolving persistent ids against reconstructed arrays."""

    def __init__(self, file: io.BytesIO, arrays: list[np.ndarray]):
        super().__init__(file)
        self._arrays = arrays

    def persistent_load(self, pid):  # noqa: D102 (pickle hook)
        return self._arrays[pid]


def pack(obj: object, threshold: int = SHM_THRESHOLD_BYTES) -> PackedPayload:
    """Pack a picklable object tree, large arrays into shared memory.

    Args:
        obj: Any picklable object (nested dataclasses/containers fine).
        threshold: Minimum array size in bytes for shm extraction.

    Returns:
        A :class:`PackedPayload` (safe to pickle through a queue).
    """
    with obs_trace.span("shm.pack"):
        buf = io.BytesIO()
        arrays: list[np.ndarray] = []
        _ArrayExtractingPickler(buf, arrays, threshold).dump(obj)
        if not arrays:
            return PackedPayload(
                skeleton=buf.getvalue(), shm_name=None, array_meta=[]
            )
        total = sum(a.nbytes for a in arrays)
        while True:
            # A recycled pid can collide with a dead run's leftover name;
            # advance the counter past it rather than fail the pack.
            try:
                shm = shared_memory.SharedMemory(
                    name=_next_name(), create=True, size=max(total, 1)
                )
                break
            except FileExistsError:
                continue
        meta: list[tuple[str, tuple[int, ...], int]] = []
        offset = 0
        for a in arrays:
            if a.nbytes:
                view = np.ndarray(
                    a.shape, dtype=a.dtype, buffer=shm.buf, offset=offset
                )
                view[...] = a
            meta.append((a.dtype.str, a.shape, offset))
            offset += a.nbytes
        name = shm.name
        shm.close()  # unmap our view; the segment lives until unlink()
        obs_metrics.inc("shm.blocks_created")
        obs_metrics.inc("shm.bytes_packed", total)
        return PackedPayload(skeleton=buf.getvalue(), shm_name=name, array_meta=meta)


def unpack(payload: PackedPayload) -> object:
    """Reconstruct the object tree from a packed payload.

    Arrays are *copied* out of shared memory, so the result stays valid
    after the block is unlinked and is writable like any fresh array.
    """
    with obs_trace.span("shm.unpack"):
        arrays: list[np.ndarray] = []
        if payload.shm_name is not None:
            shm = shared_memory.SharedMemory(name=payload.shm_name)
            try:
                for dtype_str, shape, offset in payload.array_meta:
                    dt = np.dtype(dtype_str)
                    if int(np.prod(shape)) == 0:
                        arrays.append(np.empty(shape, dtype=dt))
                    else:
                        view = np.ndarray(
                            shape, dtype=dt, buffer=shm.buf, offset=offset
                        )
                        arrays.append(view.copy())
            finally:
                shm.close()
            obs_metrics.inc("shm.blocks_attached")
        return _ArrayInsertingUnpickler(
            io.BytesIO(payload.skeleton), arrays
        ).load()


def unlink(payload: PackedPayload) -> None:
    """Release the payload's shared-memory block (creator side).

    Safe to call on array-free payloads and idempotent against an
    already-released block.
    """
    if payload.shm_name is None:
        return
    try:
        shm = shared_memory.SharedMemory(name=payload.shm_name)
    except FileNotFoundError:
        return
    shm.close()
    shm.unlink()
