"""Shared-memory transport for NumPy-bearing object trees.

``parallel_map``-style campaigns ship large hit/ring arrays between the
parent and its workers.  Pickling those arrays through a pipe copies every
byte twice (serialize + deserialize) and stalls the queue on large
payloads.  ``pack`` instead extracts every sizeable ``ndarray`` from an
arbitrary picklable object tree into a single
:class:`multiprocessing.shared_memory.SharedMemory` block and pickles only
the remaining skeleton (dataclasses, tuples, scalars, small arrays), so a
``TrainingData`` fragment or an ``EventSet`` crosses the process boundary
with one bulk memcpy per side and a few hundred bytes on the pipe.

Ownership protocol (keeps the ``resource_tracker`` quiet): the *creating*
process is the only one that ever calls ``unlink``.  The consumer attaches
by name, copies the arrays out (``unpack`` always returns fresh writable
arrays), and closes its mapping; the creator unlinks once it knows the
payload was consumed (in the executor: when the consumer's next message
arrives).
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: Arrays at or above this many bytes travel through shared memory;
#: smaller ones ride the pickle skeleton (a pipe round-trip is cheaper
#: than an extra mmap for tiny payloads).
SHM_THRESHOLD_BYTES = 16_384


@dataclass
class PackedPayload:
    """One packed object tree.

    Attributes:
        skeleton: Pickle of the object tree with large arrays replaced by
            persistent-id placeholders.
        shm_name: Name of the shared-memory block holding the extracted
            arrays, or None when nothing crossed the threshold.
        array_meta: Per-extracted-array ``(dtype_str, shape, offset)``.
    """

    skeleton: bytes
    shm_name: str | None
    array_meta: list[tuple[str, tuple[int, ...], int]]


class _ArrayExtractingPickler(pickle.Pickler):
    """Pickler that siphons large ndarrays off into a side list."""

    def __init__(self, file: io.BytesIO, arrays: list[np.ndarray], threshold: int):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._arrays = arrays
        self._threshold = threshold

    def persistent_id(self, obj):  # noqa: D102 (pickle hook)
        if (
            type(obj) is np.ndarray
            and obj.dtype != object
            and obj.nbytes >= self._threshold
        ):
            self._arrays.append(np.ascontiguousarray(obj))
            return len(self._arrays) - 1
        return None


class _ArrayInsertingUnpickler(pickle.Unpickler):
    """Unpickler resolving persistent ids against reconstructed arrays."""

    def __init__(self, file: io.BytesIO, arrays: list[np.ndarray]):
        super().__init__(file)
        self._arrays = arrays

    def persistent_load(self, pid):  # noqa: D102 (pickle hook)
        return self._arrays[pid]


def pack(obj: object, threshold: int = SHM_THRESHOLD_BYTES) -> PackedPayload:
    """Pack a picklable object tree, large arrays into shared memory.

    Args:
        obj: Any picklable object (nested dataclasses/containers fine).
        threshold: Minimum array size in bytes for shm extraction.

    Returns:
        A :class:`PackedPayload` (safe to pickle through a queue).
    """
    with obs_trace.span("shm.pack"):
        buf = io.BytesIO()
        arrays: list[np.ndarray] = []
        _ArrayExtractingPickler(buf, arrays, threshold).dump(obj)
        if not arrays:
            return PackedPayload(
                skeleton=buf.getvalue(), shm_name=None, array_meta=[]
            )
        total = sum(a.nbytes for a in arrays)
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        meta: list[tuple[str, tuple[int, ...], int]] = []
        offset = 0
        for a in arrays:
            if a.nbytes:
                view = np.ndarray(
                    a.shape, dtype=a.dtype, buffer=shm.buf, offset=offset
                )
                view[...] = a
            meta.append((a.dtype.str, a.shape, offset))
            offset += a.nbytes
        name = shm.name
        shm.close()  # unmap our view; the segment lives until unlink()
        obs_metrics.inc("shm.blocks_created")
        obs_metrics.inc("shm.bytes_packed", total)
        return PackedPayload(skeleton=buf.getvalue(), shm_name=name, array_meta=meta)


def unpack(payload: PackedPayload) -> object:
    """Reconstruct the object tree from a packed payload.

    Arrays are *copied* out of shared memory, so the result stays valid
    after the block is unlinked and is writable like any fresh array.
    """
    with obs_trace.span("shm.unpack"):
        arrays: list[np.ndarray] = []
        if payload.shm_name is not None:
            shm = shared_memory.SharedMemory(name=payload.shm_name)
            try:
                for dtype_str, shape, offset in payload.array_meta:
                    dt = np.dtype(dtype_str)
                    if int(np.prod(shape)) == 0:
                        arrays.append(np.empty(shape, dtype=dt))
                    else:
                        view = np.ndarray(
                            shape, dtype=dt, buffer=shm.buf, offset=offset
                        )
                        arrays.append(view.copy())
            finally:
                shm.close()
            obs_metrics.inc("shm.blocks_attached")
        return _ArrayInsertingUnpickler(
            io.BytesIO(payload.skeleton), arrays
        ).load()


def unlink(payload: PackedPayload) -> None:
    """Release the payload's shared-memory block (creator side).

    Safe to call on array-free payloads and idempotent against an
    already-released block.
    """
    if payload.shm_name is None:
        return
    try:
        shm = shared_memory.SharedMemory(name=payload.shm_name)
    except FileNotFoundError:
        return
    shm.close()
    shm.unlink()
