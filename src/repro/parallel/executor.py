"""Persistent campaign executor: one pool, many map calls.

The seed ``parallel_map`` built a fresh ``spawn`` pool on *every* call, so
a figure campaign (dozens of sweep points, each mapping trials over a
pool) paid interpreter startup + ``import numpy`` per point and pickled
every argument and result through pipes.  :class:`CampaignExecutor` fixes
both failure modes:

* **Pool lifetime** — workers are spawned once and reused across campaign
  stages and sweep points.  ``get_executor`` keeps one live executor per
  worker count for the whole process (shut down atexit), so independent
  call sites share the same warm pool.
* **Transport** — large NumPy arrays travel via
  ``multiprocessing.shared_memory`` (:mod:`repro.parallel.shm`); only an
  object skeleton crosses the pipe.  Campaign-constant context (geometry,
  response, trained pipeline, config) is broadcast to each worker *once*
  per change instead of per task.
* **Scheduling** — tasks are dispatched in dynamically sized chunks:
  small enough that heterogeneous exposures load-balance across workers,
  large enough that per-chunk overhead stays negligible.  Results are
  reassembled in input order, and per-task seeds are the caller's
  responsibility (``spawn_rngs`` / ``SeedSequence.spawn``), so results
  are bit-identical regardless of worker count or chunking.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import time
import traceback
from collections.abc import Callable, Sequence

from repro.obs import aggregate as obs_aggregate
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.parallel import shm as shm_transport

#: Dispatch roughly this many chunks per worker so a slow exposure on one
#: worker is absorbed by the others picking up the remaining chunks.
CHUNKS_PER_WORKER = 4

#: Never let a chunk grow beyond this many tasks, whatever the workload.
MAX_CHUNK_TASKS = 64


class CampaignWorkerError(RuntimeError):
    """A task raised inside a worker; carries the remote traceback."""


def auto_chunksize(n_tasks: int, n_workers: int) -> int:
    """Chunk size balancing dispatch overhead against load balance."""
    if n_tasks <= 0 or n_workers <= 0:
        return 1
    per_worker = -(-n_tasks // (CHUNKS_PER_WORKER * n_workers))  # ceil div
    return max(1, min(per_worker, MAX_CHUNK_TASKS))


def _worker_main(worker_id: int, inbox, results) -> None:
    """Worker loop: apply chunks, ship results back via shared memory."""
    common = None
    pending_unlink: list[shm_transport.PackedPayload] = []
    while True:
        msg = inbox.get()
        # The parent has necessarily consumed every result we sent before
        # it sent this message, so earlier result blocks can be released.
        for payload in pending_unlink:
            shm_transport.unlink(payload)
        pending_unlink.clear()
        if msg is None:
            return
        kind = msg[0]
        if kind == "common":
            common = pickle.loads(msg[1])
            continue
        _, chunk_id, fn, packed_args, trace_on = msg
        # Telemetry follows the parent's --trace flag per chunk: enable the
        # worker-local buffers on the first traced chunk, drop them if the
        # parent stops tracing.  Spans/metrics recorded while running the
        # chunk are snapshotted and piggy-backed on the result message.
        if trace_on and not obs_trace.STATE.enabled:
            obs_trace.enable()
        elif not trace_on and obs_trace.STATE.enabled:
            obs_trace.disable()
            obs_metrics.REGISTRY.reset()
        try:
            with obs_trace.span("executor.chunk") as chunk_span:
                args = shm_transport.unpack(packed_args)
                if common is None:
                    out = [fn(a) for a in args]
                else:
                    out = [fn(common, a) for a in args]
                packed = shm_transport.pack(out)
            obs_metrics.observe(
                "executor.worker_busy_ms", chunk_span.duration_ms
            )
            pending_unlink.append(packed)
            results.put(
                ("ok", worker_id, chunk_id, packed,
                 obs_aggregate.snapshot_and_reset())
            )
        except BaseException:
            results.put(
                ("err", worker_id, chunk_id, traceback.format_exc(),
                 obs_aggregate.snapshot_and_reset())
            )


class CampaignExecutor:
    """Persistent worker pool for Monte-Carlo campaigns.

    With ``n_workers <= 1`` the executor degrades to an in-process serial
    map (no processes, no shared memory) with the same semantics, so
    callers never branch on worker count.

    Args:
        n_workers: Number of worker processes (<=1 runs serially).
        start_method: Multiprocessing start method (``spawn`` matches the
            seed behavior and works everywhere).
    """

    def __init__(self, n_workers: int, start_method: str = "spawn"):
        self.n_workers = int(n_workers)
        self._common_digest: str | None = None
        self._procs: list = []
        self._inboxes: list = []
        self._results = None
        self._closed = False
        if self.n_workers <= 1:
            return
        ctx = mp.get_context(start_method)
        self._results = ctx.Queue()
        for wid in range(self.n_workers):
            inbox = ctx.SimpleQueue()
            proc = ctx.Process(
                target=_worker_main,
                args=(wid, inbox, self._results),
                daemon=True,
                name=f"campaign-worker-{wid}",
            )
            proc.start()
            self._inboxes.append(inbox)
            self._procs.append(proc)

    # -- lifecycle -----------------------------------------------------------

    @property
    def is_serial(self) -> bool:
        """True when mapping runs in-process (no pool)."""
        return self.n_workers <= 1

    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes (empty when serial)."""
        return [p.pid for p in self._procs]

    def close(self) -> None:
        """Shut the pool down; the executor is unusable afterwards."""
        if self._closed:
            return
        self._closed = True
        for inbox in self._inboxes:
            try:
                inbox.put(None)
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs.clear()
        self._inboxes.clear()

    def __enter__(self) -> "CampaignExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- mapping -------------------------------------------------------------

    def map(
        self,
        fn: Callable,
        args: Sequence,
        common: object | None = None,
        chunksize: int | None = None,
    ) -> list:
        """Map ``fn`` over ``args``, preserving input order.

        Args:
            fn: Importable (module-level) callable.  Called as ``fn(a)``,
                or ``fn(common, a)`` when a common payload is given.
            args: Per-task arguments.
            common: Campaign-constant context shared by every task
                (geometry, response, trained models, ...).  Broadcast to
                each worker once and cached there until it changes, so
                repeated ``map`` calls with the same context pay nothing.
            chunksize: Tasks per dispatch unit (auto-sized when None).

        Returns:
            ``[fn(a) for a in args]`` (respectively with ``common``),
            independent of worker count and chunking.

        Raises:
            CampaignWorkerError: A task raised in a worker (remote
                traceback attached).  The pool survives and stays usable.
            RuntimeError: The executor was closed.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        args = list(args)
        if not args:
            return []
        if self.is_serial:
            if common is None:
                return [fn(a) for a in args]
            return [fn(common, a) for a in args]

        with obs_trace.span("executor.map") as map_span:
            return self._map_parallel(fn, args, common, chunksize, map_span)

    def _map_parallel(
        self,
        fn: Callable,
        args: list,
        common: object | None,
        chunksize: int | None,
        map_span,
    ) -> list:
        """Parallel body of :meth:`map` (telemetry merged under ``map_span``)."""
        trace_on = obs_trace.STATE.enabled
        self._broadcast_common(common)
        size = chunksize or auto_chunksize(len(args), self.n_workers)
        bounds = [(lo, min(lo + size, len(args))) for lo in range(0, len(args), size)]
        chunks: dict[int, shm_transport.PackedPayload] = {}
        dispatch_time: dict[int, float] = {}
        results: list = [None] * len(args)
        n_done = 0
        first_error: str | None = None
        next_chunk = 0

        def dispatch(wid: int) -> None:
            nonlocal next_chunk
            lo, hi = bounds[next_chunk]
            packed = shm_transport.pack(args[lo:hi])
            chunks[next_chunk] = packed
            if trace_on:
                dispatch_time[next_chunk] = time.perf_counter()
            self._inboxes[wid].put(("chunk", next_chunk, fn, packed, trace_on))
            next_chunk += 1

        for wid in range(min(self.n_workers, len(bounds))):
            dispatch(wid)
        while n_done < len(bounds):
            try:
                status, wid, chunk_id, payload, snap = self._results.get(
                    timeout=1.0
                )
            except queue_mod.Empty:
                dead = [p.name for p in self._procs if not p.is_alive()]
                if dead:
                    for packed in chunks.values():
                        shm_transport.unlink(packed)
                    self.close()
                    raise RuntimeError(
                        f"campaign workers died unexpectedly: {dead}"
                    ) from None
                continue
            # The worker has consumed this chunk's input block.
            shm_transport.unlink(chunks.pop(chunk_id))
            n_done += 1
            if trace_on:
                self._record_chunk_telemetry(
                    snap, chunk_id, dispatch_time, map_span
                )
            if status == "ok":
                out = shm_transport.unpack(payload)
                lo, hi = bounds[chunk_id]
                results[lo:hi] = out
            elif first_error is None:
                first_error = payload
            if next_chunk < len(bounds):
                dispatch(wid)
        # Each worker's final result block stays mapped until its next
        # inbox message (next map call or shutdown) — a bounded backlog of
        # one block per worker, traded for an ack-free protocol.
        if first_error is not None:
            raise CampaignWorkerError(
                f"campaign task failed in worker:\n{first_error}"
            )
        return results

    @staticmethod
    def _record_chunk_telemetry(
        snap: dict | None,
        chunk_id: int,
        dispatch_time: dict[int, float],
        map_span,
    ) -> None:
        """Merge a worker chunk snapshot and derive dispatch-side metrics.

        Queue wait is turnaround minus the worker's in-chunk busy time —
        the cost of the chunk sitting in the inbox plus result-queue
        latency plus shm transfer, i.e. everything the executor adds.
        """
        obs_aggregate.merge_snapshot(snap, parent_span_id=map_span.span_id)
        obs_metrics.inc("executor.chunks")
        t0 = dispatch_time.pop(chunk_id, None)
        if t0 is None:
            return
        turnaround_ms = (time.perf_counter() - t0) * 1e3
        obs_metrics.observe("executor.chunk_turnaround_ms", turnaround_ms)
        busy_ms = None
        if snap:
            for ev in reversed(snap.get("events", ())):
                if ev.get("type") == "span" and ev.get("name") == "executor.chunk":
                    busy_ms = ev["dur_ms"]
                    break
        if busy_ms is not None:
            obs_metrics.observe(
                "executor.queue_wait_ms", max(0.0, turnaround_ms - busy_ms)
            )

    def _broadcast_common(self, common: object | None) -> None:
        """Ship the campaign context to every worker if it changed.

        ``common=None`` clears any previously broadcast context so a later
        common-free ``map`` goes back to calling ``fn(a)``.
        """
        if common is None:
            if self._common_digest is None:
                return
            payload = pickle.dumps(None, protocol=pickle.HIGHEST_PROTOCOL)
            digest = None
        else:
            payload = pickle.dumps(common, protocol=pickle.HIGHEST_PROTOCOL)
            digest = hashlib.sha256(payload).hexdigest()
            if digest == self._common_digest:
                return
        for inbox in self._inboxes:
            inbox.put(("common", payload))
        self._common_digest = digest

# -- process-wide executor registry -----------------------------------------

_EXECUTORS: dict[int, CampaignExecutor] = {}


def get_executor(n_workers: int) -> CampaignExecutor:
    """Return the process-wide executor for ``n_workers``, creating it once.

    The returned executor must *not* be closed by the caller; it is shared
    across call sites and shut down atexit (or via
    :func:`shutdown_executors`).
    """
    n_workers = max(1, int(n_workers))
    ex = _EXECUTORS.get(n_workers)
    if ex is None or ex._closed:
        ex = CampaignExecutor(n_workers)
        _EXECUTORS[n_workers] = ex
    return ex


def live_executor(n_workers: int) -> CampaignExecutor | None:
    """The already-running executor for ``n_workers``, or None.

    Lets ``parallel_map`` route small batches through a pool the caller
    already paid for, without ever *starting* a pool for them.
    """
    ex = _EXECUTORS.get(max(1, int(n_workers)))
    if ex is not None and not ex._closed:
        return ex
    return None


def shutdown_executors() -> None:
    """Close every registry executor (idempotent)."""
    for ex in list(_EXECUTORS.values()):
        ex.close()
    _EXECUTORS.clear()


def _atexit_shutdown() -> None:
    # Only the parent process should tear the registry down; a spawned
    # worker importing this module must not touch it.
    if os.getpid() == _REGISTRY_PID:
        shutdown_executors()


_REGISTRY_PID = os.getpid()
atexit.register(_atexit_shutdown)
