"""Persistent campaign executor: one pool, many map calls.

The seed ``parallel_map`` built a fresh ``spawn`` pool on *every* call, so
a figure campaign (dozens of sweep points, each mapping trials over a
pool) paid interpreter startup + ``import numpy`` per point and pickled
every argument and result through pipes.  :class:`CampaignExecutor` fixes
both failure modes:

* **Pool lifetime** — workers are spawned once and reused across campaign
  stages and sweep points.  ``get_executor`` keeps one live executor per
  worker count for the whole process (shut down atexit), so independent
  call sites share the same warm pool.
* **Transport** — large NumPy arrays travel via
  ``multiprocessing.shared_memory`` (:mod:`repro.parallel.shm`); only an
  object skeleton crosses the pipe.  Campaign-constant context (geometry,
  response, trained pipeline, config) is broadcast to each worker *once*
  per change instead of per task.
* **Scheduling** — tasks are dispatched in dynamically sized chunks:
  small enough that heterogeneous exposures load-balance across workers,
  large enough that per-chunk overhead stays negligible.  Results are
  reassembled in input order, and per-task seeds are the caller's
  responsibility (``spawn_rngs`` / ``SeedSequence.spawn``), so results
  are bit-identical regardless of worker count or chunking.

Fault tolerance
---------------

Flight-software campaigns must survive a worker OOM-kill or segfault
without losing the whole run.  The executor therefore treats worker death
as a recoverable event:

* A dead worker is detected from the dispatch loop, **respawned** in
  place (same worker id, fresh process), the cached ``common`` payload is
  re-broadcast to it, and the chunk it was running is **redispatched**.
* Each chunk carries a bounded retry budget (``max_retries``): a chunk
  that kills ``max_retries + 1`` consecutive workers is declared
  poisonous and raises :class:`CampaignWorkerError` carrying the full
  failure history.  The pool itself stays healthy and usable.
* ``task_timeout`` arms a **soft per-chunk timeout** of
  ``task_timeout * tasks_in_chunk`` seconds; a hung worker is killed and
  handled exactly like a crashed one.
* Every message is tagged with a **map epoch** so results from a chunk
  that was redispatched (or from a map interrupted by
  ``KeyboardInterrupt``) are recognized and discarded instead of
  corrupting a later call.
* Shared-memory hygiene: ``map`` unlinks every in-flight input block on
  *any* exit path, segments owned by reaped workers are swept after the
  map (and on ``close``), and pool startup runs a janitor that removes
  segments orphaned by previously crashed runs
  (:func:`repro.parallel.shm.sweep_stale`).

Recovery never changes results: chunk payloads are immutable and per-task
seeds are caller-supplied, so a redispatched chunk recomputes bit-identical
values.  Counters ``executor.worker_restarts`` / ``executor.chunk_retries``
/ ``executor.timeouts`` surface recovery activity in traces, and the same
numbers are always available (traced or not) in
:attr:`CampaignExecutor.stats`.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import time
import traceback
from collections.abc import Callable, Sequence

from repro.obs import aggregate as obs_aggregate
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.parallel import shm as shm_transport

#: Dispatch roughly this many chunks per worker so a slow exposure on one
#: worker is absorbed by the others picking up the remaining chunks.
CHUNKS_PER_WORKER = 4

#: Never let a chunk grow beyond this many tasks, whatever the workload.
MAX_CHUNK_TASKS = 64

#: Base respawn backoff; attempt ``k`` for a chunk waits ``k`` times this.
RESTART_BACKOFF_S = 0.05

#: Process-wide fault-tolerance defaults, adjustable via :func:`configure`
#: (the CLI's ``--max-retries`` / ``--task-timeout`` land here).
DEFAULTS = {"max_retries": 2, "task_timeout": None}  # reprolint: disable=WRK001 -- parent-side knobs read at executor construction; workers never touch it

_UNSET = object()


class CampaignWorkerError(RuntimeError):
    """A task failed in a worker: raised an exception, or killed
    ``max_retries + 1`` workers in a row.  Carries the remote traceback
    or the per-attempt failure history."""


def auto_chunksize(n_tasks: int, n_workers: int) -> int:
    """Chunk size balancing dispatch overhead against load balance."""
    if n_tasks <= 0 or n_workers <= 0:
        return 1
    per_worker = -(-n_tasks // (CHUNKS_PER_WORKER * n_workers))  # ceil div
    return max(1, min(per_worker, MAX_CHUNK_TASKS))


def configure(max_retries: int | None = None,
              task_timeout: float | None = _UNSET) -> None:
    """Set process-wide fault-tolerance defaults and update live pools.

    Args:
        max_retries: Redispatches allowed per chunk (None keeps current).
        task_timeout: Soft per-task timeout in seconds; ``None`` disables
            timeouts (omit the argument to keep the current value).
    """
    if max_retries is not None:
        DEFAULTS["max_retries"] = max(0, int(max_retries))
    if task_timeout is not _UNSET:
        DEFAULTS["task_timeout"] = (
            None if task_timeout is None else float(task_timeout)
        )
    for ex in _EXECUTORS.values():
        if max_retries is not None:
            ex.max_retries = DEFAULTS["max_retries"]
        if task_timeout is not _UNSET:
            ex.task_timeout = DEFAULTS["task_timeout"]


def _worker_main(worker_id: int, inbox, results) -> None:
    """Worker loop: apply chunks, ship results back via shared memory."""
    common = None
    pending_unlink: list[shm_transport.PackedPayload] = []
    while True:
        msg = inbox.get()
        # The parent has necessarily consumed every result we sent before
        # it sent this message, so earlier result blocks can be released.
        for payload in pending_unlink:
            shm_transport.unlink(payload)
        pending_unlink.clear()
        if msg is None:
            return
        kind = msg[0]
        if kind == "common":
            common = pickle.loads(msg[1])
            continue
        _, epoch, chunk_id, fn, packed_args, obs_flags = msg
        # Telemetry mirrors the parent's live configuration per chunk
        # (tracer + optional profiler / resource monitor, see
        # repro.obs.aggregate.worker_flags).  Spans, metrics, and profile
        # samples recorded while running the chunk are snapshotted and
        # piggy-backed on the result message.
        obs_aggregate.apply_worker_flags(obs_flags)
        try:
            with obs_trace.span("executor.chunk") as chunk_span:
                args = shm_transport.unpack(packed_args)
                if common is None:
                    out = [fn(a) for a in args]
                else:
                    out = [fn(common, a) for a in args]
                packed = shm_transport.pack(out)
            obs_metrics.observe(
                "executor.worker_busy_ms", chunk_span.duration_ms
            )
            pending_unlink.append(packed)
            results.put(
                ("ok", epoch, worker_id, chunk_id, packed,
                 obs_aggregate.snapshot_and_reset())
            )
        except BaseException:
            results.put(
                ("err", epoch, worker_id, chunk_id, traceback.format_exc(),
                 obs_aggregate.snapshot_and_reset())
            )


class CampaignExecutor:
    """Persistent, crash-recovering worker pool for Monte-Carlo campaigns.

    With ``n_workers <= 1`` the executor degrades to an in-process serial
    map (no processes, no shared memory) with the same semantics —
    including error semantics: a raising task surfaces as
    :class:`CampaignWorkerError` at every worker count — so callers never
    branch on worker count.

    Args:
        n_workers: Number of worker processes (<=1 runs serially).
        start_method: Multiprocessing start method (``spawn`` matches the
            seed behavior and works everywhere).
        max_retries: Redispatches allowed per chunk before it is declared
            poisonous (default from :data:`DEFAULTS`).
        task_timeout: Soft per-task timeout in seconds; a chunk of ``k``
            tasks may run ``k * task_timeout`` seconds before its worker
            is killed and the chunk retried.  ``None`` disables timeouts
            (omit the argument to take the :data:`DEFAULTS` value).

    Attributes:
        stats: Always-on recovery counters (``worker_restarts``,
            ``chunk_retries``, ``timeouts``) — the untraced mirror of the
            ``executor.*`` obs counters.
    """

    def __init__(self, n_workers: int, start_method: str = "spawn",
                 max_retries: int | None = None,
                 task_timeout: float | None = _UNSET):
        self.n_workers = int(n_workers)
        self.max_retries = (DEFAULTS["max_retries"] if max_retries is None
                            else max(0, int(max_retries)))
        self.task_timeout = (DEFAULTS["task_timeout"]
                             if task_timeout is _UNSET else task_timeout)
        self.stats = {"worker_restarts": 0, "chunk_retries": 0, "timeouts": 0}
        self._common_digest: str | None = None
        self._common_payload: bytes | None = None
        self._procs: list = []
        self._inboxes: list = []
        self._results = None
        self._closed = False
        self._epoch = 0
        self._dead_pids: set[int] = set()
        if self.n_workers <= 1:
            return
        # Janitor: a previous run that crashed (or was SIGKILLed) may have
        # left segments behind; reclaim them before creating new ones.
        shm_transport.sweep_stale()
        self._ctx = mp.get_context(start_method)
        self._results = self._ctx.Queue()
        self._inboxes = [None] * self.n_workers
        self._procs = [None] * self.n_workers
        for wid in range(self.n_workers):
            self._spawn_worker(wid)

    def _spawn_worker(self, wid: int) -> None:
        """(Re)create worker ``wid`` with a fresh inbox and process."""
        inbox = self._ctx.SimpleQueue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(wid, inbox, self._results),
            daemon=True,
            name=f"campaign-worker-{wid}",
        )
        proc.start()
        self._inboxes[wid] = inbox
        self._procs[wid] = proc

    # -- lifecycle -----------------------------------------------------------

    @property
    def is_serial(self) -> bool:
        """True when mapping runs in-process (no pool)."""
        return self.n_workers <= 1

    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes (empty when serial)."""
        return [p.pid for p in self._procs]

    def close(self) -> None:
        """Shut the pool down; the executor is unusable afterwards."""
        if self._closed:
            return
        self._closed = True
        for inbox in self._inboxes:
            try:
                inbox.put(None)
            except (OSError, ValueError):
                pass
        closed_pids = set(self._dead_pids)
        for proc in self._procs:
            closed_pids.add(proc.pid)
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs.clear()
        self._inboxes.clear()
        self._dead_pids.clear()
        if closed_pids:
            # A worker terminated between pack and unlink leaves a block
            # behind; everything it owned is reclaimable now.
            shm_transport.sweep_stale(extra_pids=closed_pids)

    def __enter__(self) -> "CampaignExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- mapping -------------------------------------------------------------

    def map(
        self,
        fn: Callable,
        args: Sequence,
        common: object | None = None,
        chunksize: int | None = None,
    ) -> list:
        """Map ``fn`` over ``args``, preserving input order.

        Args:
            fn: Importable (module-level) callable.  Called as ``fn(a)``,
                or ``fn(common, a)`` when a common payload is given.
            args: Per-task arguments.
            common: Campaign-constant context shared by every task
                (geometry, response, trained models, ...).  Broadcast to
                each worker once and cached there until it changes, so
                repeated ``map`` calls with the same context pay nothing.
            chunksize: Tasks per dispatch unit (auto-sized when None).

        Returns:
            ``[fn(a) for a in args]`` (respectively with ``common``),
            independent of worker count and chunking.

        Raises:
            CampaignWorkerError: A task raised (remote traceback attached;
                identical semantics at every worker count), or a chunk
                exhausted its retry budget killing workers.  The pool
                survives and stays usable either way.
            RuntimeError: The executor was closed.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        args = list(args)
        if not args:
            return []
        if self.is_serial:
            try:
                if common is None:
                    return [fn(a) for a in args]
                return [fn(common, a) for a in args]
            except Exception as exc:
                raise CampaignWorkerError(
                    f"campaign task failed in worker:\n{traceback.format_exc()}"
                ) from exc

        with obs_trace.span("executor.map") as map_span:
            return self._map_parallel(fn, args, common, chunksize, map_span)

    def _map_parallel(
        self,
        fn: Callable,
        args: list,
        common: object | None,
        chunksize: int | None,
        map_span,
    ) -> list:
        """Parallel body of :meth:`map` (telemetry merged under ``map_span``)."""
        obs_flags = obs_aggregate.worker_flags()
        trace_on = obs_flags is not None
        self._epoch += 1
        epoch = self._epoch
        self._broadcast_common(common)
        size = chunksize or auto_chunksize(len(args), self.n_workers)
        bounds = [(lo, min(lo + size, len(args))) for lo in range(0, len(args), size)]
        chunks: dict[int, shm_transport.PackedPayload] = {}
        dispatch_time: dict[int, float] = {}
        results: list = [None] * len(args)
        done_chunks: set[int] = set()
        in_flight: dict[int, int] = {}      # wid -> chunk_id
        started: dict[int, float] = {}      # wid -> dispatch monotonic time
        attempts: dict[int, list[str]] = {}  # chunk_id -> failure history
        first_error: str | None = None
        next_chunk = 0
        poll_s = 1.0
        if self.task_timeout is not None:
            poll_s = min(1.0, max(0.05, self.task_timeout / 2.0))

        def send_chunk(wid: int, cid: int) -> None:
            packed = chunks.get(cid)
            if packed is None:
                lo, hi = bounds[cid]
                packed = shm_transport.pack(args[lo:hi])
                chunks[cid] = packed
            if trace_on:
                dispatch_time[cid] = time.perf_counter()
            in_flight[wid] = cid
            started[wid] = time.monotonic()
            self._inboxes[wid].put(("chunk", epoch, cid, fn, packed, obs_flags))

        def dispatch_next(wid: int) -> None:
            nonlocal next_chunk
            send_chunk(wid, next_chunk)
            next_chunk += 1

        def reap_and_respawn(wid: int, reason: str) -> None:
            """Replace a dead/hung worker; retry or condemn its chunk."""
            proc = self._procs[wid]
            proc.join(timeout=5.0)
            self._dead_pids.add(proc.pid)
            self.stats["worker_restarts"] += 1
            obs_metrics.inc("executor.worker_restarts")
            cid = in_flight.pop(wid, None)
            started.pop(wid, None)
            history = None
            if cid is not None and cid not in done_chunks:
                history = attempts.setdefault(cid, [])
                history.append(reason)
                # Backoff grows with consecutive failures of this chunk,
                # giving a transiently starved machine room to recover.
                time.sleep(RESTART_BACKOFF_S * len(history))
            self._spawn_worker(wid)
            if self._common_payload is not None:
                self._inboxes[wid].put(("common", self._common_payload))
            if history is None:
                return
            if len(history) > self.max_retries:
                detail = "\n".join(
                    f"  attempt {i + 1}: {r}" for i, r in enumerate(history)
                )
                raise CampaignWorkerError(
                    f"chunk {cid} (tasks {bounds[cid][0]}..{bounds[cid][1]}) "
                    f"killed {len(history)} consecutive workers; giving up "
                    f"after {self.max_retries} retries:\n{detail}"
                )
            self.stats["chunk_retries"] += 1
            obs_metrics.inc("executor.chunk_retries")
            send_chunk(wid, cid)

        def check_workers() -> None:
            """Kill hung workers, then respawn every dead one."""
            if self.task_timeout is not None:
                now = time.monotonic()
                for wid, cid in list(in_flight.items()):
                    proc = self._procs[wid]
                    if not proc.is_alive():
                        continue  # handled by the death scan below
                    lo, hi = bounds[cid]
                    budget = self.task_timeout * (hi - lo)
                    if now - started[wid] > budget:
                        self.stats["timeouts"] += 1
                        obs_metrics.inc("executor.timeouts")
                        proc.kill()
                        reap_and_respawn(
                            wid,
                            f"worker {proc.name} (pid {proc.pid}) exceeded "
                            f"the soft chunk timeout ({budget:.1f}s for "
                            f"{hi - lo} tasks) and was killed",
                        )
            for wid, proc in enumerate(self._procs):
                if not proc.is_alive():
                    reap_and_respawn(
                        wid,
                        f"worker {proc.name} (pid {proc.pid}) died with "
                        f"exitcode {proc.exitcode}",
                    )

        try:
            for wid in range(min(self.n_workers, len(bounds))):
                dispatch_next(wid)
            while len(done_chunks) < len(bounds):
                try:
                    status, r_epoch, wid, chunk_id, payload, snap = \
                        self._results.get(timeout=poll_s)
                except queue_mod.Empty:
                    check_workers()
                    continue
                if r_epoch != epoch:
                    # Leftover from an interrupted or poisoned earlier map;
                    # its producer is gone or mid-teardown, so reclaim the
                    # result block here instead of relying on it.
                    if status == "ok":
                        shm_transport.unlink(payload)
                    continue
                if chunk_id in done_chunks:
                    # A worker we condemned (timeout kill racing completion)
                    # still delivered; the redispatch already supplied this
                    # chunk.  Identical bytes either way — drop it.
                    if status == "ok":
                        shm_transport.unlink(payload)
                    continue
                if in_flight.get(wid) == chunk_id:
                    in_flight.pop(wid)
                    started.pop(wid, None)
                done_chunks.add(chunk_id)
                packed_in = chunks.pop(chunk_id, None)
                if packed_in is not None:
                    # The worker has consumed this chunk's input block.
                    shm_transport.unlink(packed_in)
                if trace_on:
                    self._record_chunk_telemetry(
                        snap, chunk_id, dispatch_time, map_span
                    )
                if status == "ok":
                    out = shm_transport.unpack(payload)
                    lo, hi = bounds[chunk_id]
                    results[lo:hi] = out
                elif first_error is None:
                    first_error = payload
                if next_chunk < len(bounds) and self._procs[wid].is_alive():
                    dispatch_next(wid)
            # Each worker's final result block stays mapped until its next
            # inbox message (next map call or shutdown) — a bounded backlog
            # of one block per worker, traded for an ack-free protocol.
            if first_error is not None:
                raise CampaignWorkerError(
                    f"campaign task failed in worker:\n{first_error}"
                )
            return results
        finally:
            # Every exit path — success, poisoned chunk, task error,
            # KeyboardInterrupt — releases the parent-owned input blocks
            # still in flight and reclaims segments orphaned by workers
            # that died while owning one.
            for packed in chunks.values():
                shm_transport.unlink(packed)
            chunks.clear()
            if self._dead_pids:
                shm_transport.sweep_stale(extra_pids=self._dead_pids)
                self._dead_pids.clear()

    @staticmethod
    def _record_chunk_telemetry(
        snap: dict | None,
        chunk_id: int,
        dispatch_time: dict[int, float],
        map_span,
    ) -> None:
        """Merge a worker chunk snapshot and derive dispatch-side metrics.

        Queue wait is turnaround minus the worker's in-chunk busy time —
        the cost of the chunk sitting in the inbox plus result-queue
        latency plus shm transfer, i.e. everything the executor adds.
        """
        obs_aggregate.merge_snapshot(snap, parent_span_id=map_span.span_id)
        obs_metrics.inc("executor.chunks")
        t0 = dispatch_time.pop(chunk_id, None)
        if t0 is None:
            return
        turnaround_ms = (time.perf_counter() - t0) * 1e3
        obs_metrics.observe("executor.chunk_turnaround_ms", turnaround_ms)
        busy_ms = None
        if snap:
            for ev in reversed(snap.get("events", ())):
                if ev.get("type") == "span" and ev.get("name") == "executor.chunk":
                    busy_ms = ev["dur_ms"]
                    break
        if busy_ms is not None:
            obs_metrics.observe(
                "executor.queue_wait_ms", max(0.0, turnaround_ms - busy_ms)
            )

    def _broadcast_common(self, common: object | None) -> None:
        """Ship the campaign context to every worker if it changed.

        ``common=None`` clears any previously broadcast context so a later
        common-free ``map`` goes back to calling ``fn(a)``.  The pickled
        payload is kept so a respawned worker can be re-primed without
        the caller re-passing it.
        """
        if common is None:
            if self._common_digest is None:
                return
            payload = pickle.dumps(None, protocol=pickle.HIGHEST_PROTOCOL)
            digest = None
        else:
            payload = pickle.dumps(common, protocol=pickle.HIGHEST_PROTOCOL)
            digest = hashlib.sha256(payload).hexdigest()
            if digest == self._common_digest:
                return
        for inbox in self._inboxes:
            inbox.put(("common", payload))
        self._common_digest = digest
        self._common_payload = payload if digest is not None else None

# -- process-wide executor registry -----------------------------------------

_EXECUTORS: dict[int, CampaignExecutor] = {}  # reprolint: disable=WRK001 -- parent-side registry; never populated inside workers


def get_executor(n_workers: int) -> CampaignExecutor:
    """Return the process-wide executor for ``n_workers``, creating it once.

    The returned executor must *not* be closed by the caller; it is shared
    across call sites and shut down atexit (or via
    :func:`shutdown_executors`).  New executors take the fault-tolerance
    settings in :data:`DEFAULTS` (see :func:`configure`).
    """
    n_workers = max(1, int(n_workers))
    ex = _EXECUTORS.get(n_workers)
    if ex is None or ex._closed:
        ex = CampaignExecutor(n_workers)
        _EXECUTORS[n_workers] = ex
    return ex


def live_executor(n_workers: int) -> CampaignExecutor | None:
    """The already-running executor for ``n_workers``, or None.

    Lets ``parallel_map`` route small batches through a pool the caller
    already paid for, without ever *starting* a pool for them.
    """
    ex = _EXECUTORS.get(max(1, int(n_workers)))
    if ex is not None and not ex._closed:
        return ex
    return None


def shutdown_executors() -> None:
    """Close every registry executor (idempotent)."""
    for ex in list(_EXECUTORS.values()):
        ex.close()
    _EXECUTORS.clear()


def _atexit_shutdown() -> None:
    # Only the parent process should tear the registry down; a spawned
    # worker importing this module must not touch it.
    if os.getpid() == _REGISTRY_PID:
        shutdown_executors()


_REGISTRY_PID = os.getpid()
atexit.register(_atexit_shutdown)
