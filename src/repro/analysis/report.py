"""Text and JSON reporters for analysis results."""

from __future__ import annotations

import json
from typing import TextIO

from repro.analysis.core import Finding
from repro.analysis.runner import AnalysisResult


def render_text(
    result: AnalysisResult,
    new: list[Finding],
    grandfathered: list[Finding],
    stale: list[str],
    stream: TextIO,
) -> None:
    """Human-readable report: one line per finding plus a summary.

    Args:
        result: The raw analysis result (for counts and parse errors).
        new: Findings not absorbed by the baseline (these fail the gate).
        grandfathered: Findings absorbed by the baseline.
        stale: Baseline fingerprints that matched nothing.
        stream: Output stream.
    """
    for path, message in result.errors:
        print(f"{path}: parse error: {message}", file=stream)
    for f in new:
        print(
            f"{f.path}:{f.line}:{f.col}: {f.rule_id} {f.severity}: "
            f"{f.message} [{f.scope}]",
            file=stream,
        )
    for fp in stale:
        print(f"stale baseline entry (fix the baseline): {fp}", file=stream)
    bits = [
        f"{result.files_scanned} file(s) scanned",
        f"{len(new)} finding(s)",
    ]
    if grandfathered:
        bits.append(f"{len(grandfathered)} baselined")
    if result.suppressed:
        bits.append(f"{len(result.suppressed)} suppressed inline")
    if stale:
        bits.append(f"{len(stale)} stale baseline entr(ies)")
    if result.errors:
        bits.append(f"{len(result.errors)} parse error(s)")
    print("reprolint: " + ", ".join(bits), file=stream)


#: Version of the JSON report layout.  This payload is a documented
#: machine-readable contract (docs/static_analysis.md): bump only on
#: breaking changes (renamed/removed keys or changed value types);
#: purely additive keys keep the version.
SCHEMA_VERSION = 1


def render_json(
    result: AnalysisResult,
    new: list[Finding],
    grandfathered: list[Finding],
    stale: list[str],
    stream: TextIO,
) -> None:
    """Machine-readable report mirroring :func:`render_text`."""
    payload = {
        "schema_version": SCHEMA_VERSION,
        "files_scanned": result.files_scanned,
        "findings": [f.to_dict() for f in new],
        "baselined": [f.to_dict() for f in grandfathered],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "stale_baseline": stale,
        "parse_errors": [
            {"path": path, "message": message} for path, message in result.errors
        ],
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")
