"""Baseline files: grandfather known findings without silencing new ones.

A baseline is a checked-in JSON file mapping finding *fingerprints*
(rule + path + scope + message — deliberately line-independent) to
occurrence counts.  ``apply_baseline`` subtracts baselined occurrences
from a run's findings; anything beyond the recorded count is new and
still fails the gate.  Entries no longer matched by any finding are
reported as *stale* so the baseline shrinks monotonically.

This repository ships an **empty** baseline (``.reprolint-baseline.json``)
— the clean-up sweep fixed or per-line-justified every finding — but the
mechanism exists so future rules can land before their sweep completes.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import Finding

#: Current on-disk schema version.
BASELINE_VERSION = 1


@dataclass
class Baseline:
    """In-memory form of a baseline file.

    Attributes:
        entries: Fingerprint -> grandfathered occurrence count.
    """

    entries: Counter = field(default_factory=Counter)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        """Build a baseline covering exactly ``findings``."""
        return cls(entries=Counter(f.fingerprint() for f in findings))

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file (empty baseline when the file is absent).

        Raises:
            ValueError: On an unrecognized schema version.
        """
        p = Path(path)
        if not p.exists():
            return cls()
        data = json.loads(p.read_text(encoding="utf-8"))
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {p}"
            )
        return cls(entries=Counter(data.get("findings", {})))

    def save(self, path: str | Path) -> None:
        """Write the baseline as stable, diff-friendly JSON."""
        payload = {
            "version": BASELINE_VERSION,
            "findings": dict(sorted(self.entries.items())),
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


def apply_baseline(
    findings: list[Finding], baseline: Baseline
) -> tuple[list[Finding], list[Finding], list[str]]:
    """Split findings into new vs. grandfathered; report stale entries.

    Args:
        findings: Active findings from an analysis run.
        baseline: Grandfathered fingerprints.

    Returns:
        ``(new, grandfathered, stale)``: findings not covered by the
        baseline, findings absorbed by it, and baseline fingerprints
        that matched nothing this run.
    """
    budget = Counter(baseline.entries)
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for f in findings:
        fp = f.fingerprint()
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            grandfathered.append(f)
        else:
            new.append(f)
    stale = sorted(fp for fp, count in budget.items() if count > 0)
    return new, grandfathered, stale
