"""Project-wide call graph: functions, edges, coloring, entry points.

The per-module rules in :mod:`repro.analysis.rules` see one file at a
time; the concurrency rules (``ASY``/``THR``) need to reason about the
*whole program* — "is this blocking call reachable from a coroutine?"
is a property of the call graph, not of any single module.  This module
builds that graph once per analysis run (``CallGraph.build(project)``)
and hangs it off :class:`repro.analysis.runner.Project`.

What the graph knows:

* **Functions** — every ``def``/``async def`` in every analyzed module,
  keyed by dotted qualname (``repro.serve.server.LocalizationServer
  .submit``), with async/sync *coloring* and generator detection
  (calling a generator function does not execute its body, so generator
  callees never propagate blocking behavior).
* **Call edges** — alias- and attribute-aware resolution of each call
  site: imports (``from x import f as g``), module-level functions,
  ``self.method()`` (including methods inherited from project-internal
  bases), ``self.attr.method()`` through instance-attribute types
  inferred from ``self.attr = ClassName(...)`` assignments, local
  variables typed by construction (``s = Scheduler(); s.flush()``), and
  module-level singletons (``PROFILER.buffer.merge(...)``).  Unresolved
  externals keep their dotted name (``time.sleep``) for the blocking
  tables.
* **Entry points** — where concurrency starts: ``threading.Thread(
  target=...)`` construction sites (with ``daemon`` flag and the
  attribute the thread object is bound to), ``asyncio.create_task`` /
  ``ensure_future`` / ``loop.create_task`` spawns whose argument
  resolves to a project coroutine, and the campaign-worker entry
  modules shared with WRK001 (``Project.worker_entries`` — one source
  of truth, so ``--entry-points`` extends both analyses together).
* **Synchronization tables** — instance attributes / module globals
  assigned from ``threading.Lock/RLock/Condition/Semaphore`` (lock
  tokens), ``threading.Event`` (stop-event tokens), which attributes
  are ``.join()``-ed, and the nested ``with``-acquisition edges the
  lock-ordering rule consumes.

Traversal is **bounded** (:data:`DEFAULT_MAX_DEPTH` call hops) so a
pathological or cyclic graph cannot hang the linter; cycles are handled
by the visited set.  ``reachable`` answers forward reachability,
``origins`` answers "which concurrent roots can run this function" by a
reverse walk: every thread entry whose target reaches the function
contributes its own label, and any plain root caller (public API with
no in-repo caller that is not itself a thread/task target) contributes
the single merged ``main`` label.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.analysis.context import ModuleContext, _expr_token

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.analysis.runner import Project

#: Maximum call-graph hops followed by ``reachable``/``origins``; bounds
#: work on adversarial graphs without truncating any realistic chain.
DEFAULT_MAX_DEPTH = 16

#: Constructors whose result is a mutual-exclusion primitive (the lock
#: tokens the THR/ASY rules reason about).  asyncio.Lock is deliberately
#: absent: awaiting under an *asyncio* lock is fine.
LOCK_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    }
)

#: Constructors of stop-signal primitives (THR003's shutdown evidence).
EVENT_FACTORIES = frozenset({"threading.Event"})

#: Thread-spawning constructors; ``target=`` names the entry function.
THREAD_FACTORIES = frozenset({"threading.Thread", "threading.Timer"})

#: Module-level coroutine spawn calls: the first Call argument that
#: resolves to a project ``async def`` becomes a task entry point.
TASK_SPAWN_CALLS = frozenset(
    {
        "asyncio.create_task",
        "asyncio.ensure_future",
        "asyncio.gather",
        "asyncio.run",
        "asyncio.run_coroutine_threadsafe",
        "asyncio.wait_for",
    }
)

#: Method names that spawn coroutines off objects the resolver cannot
#: type (``asyncio.get_running_loop().create_task(...)``).
TASK_SPAWN_ATTRS = frozenset(
    {"create_task", "ensure_future", "run_coroutine_threadsafe"}
)


@dataclass(frozen=True)
class CallSite:
    """One resolved call expression inside a function body.

    Attributes:
        raw: Dotted source text of the callee (``self.scheduler.flush``),
            None when the callee is not a name/attribute chain.
        targets: Project-internal function qualnames this call may reach
            (empty when unresolved or external).
        external: Absolute dotted name of an external callee
            (``time.sleep``), None for project-internal/unresolved.
        lineno: 1-based source line of the call.
        col: 0-based column of the call.
        awaited: True when the call is the direct operand of ``await``.
        node: The underlying ``ast.Call`` (identity only; excluded from
            equality so sites stay value-comparable).
    """

    raw: str | None
    targets: tuple[str, ...]
    external: str | None
    lineno: int
    col: int
    awaited: bool
    node: ast.Call = field(compare=False, repr=False, default=None)


@dataclass
class FunctionInfo:
    """One analyzed function/method and its resolved call sites.

    Attributes:
        qualname: Project-wide dotted name (``mod.Class.method``).
        module: Dotted module name the function is defined in.
        local_name: Dotted path within the module (``Class.method``).
        node: The ``ast.FunctionDef`` / ``ast.AsyncFunctionDef``.
        is_async: ``async def`` coloring.
        is_generator: Body contains ``yield``/``yield from`` (its own
            body, not nested defs) — calling it defers execution.
        class_name: Qualname of the enclosing class, None for plain
            functions.
        calls: Resolved :class:`CallSite` list, source order.
        checks_stop_event: Body waits on / checks a ``threading.Event``
            attribute (a visible shutdown path for THR003).
    """

    qualname: str
    module: str
    local_name: str
    node: ast.AST
    is_async: bool
    is_generator: bool
    class_name: str | None
    calls: list[CallSite] = field(default_factory=list)
    checks_stop_event: bool = False


@dataclass(frozen=True)
class EntryPoint:
    """One place where concurrent execution starts.

    Attributes:
        kind: ``thread`` (``threading.Thread(target=...)``), ``task``
            (asyncio spawn of a project coroutine), ``worker`` (function
            of a campaign-worker entry module, shared with WRK001), or
            ``custom`` (declared via ``--entry-points``).
        target: Qualname of the entry function.
        module: Module containing the spawn site (the entry module
            itself for ``worker``/``custom`` kinds).
        line: Spawn-site line (0 for worker/custom kinds).
        daemon: ``daemon=True`` was passed to the Thread constructor.
        bound_to: Instance attribute the thread object was assigned to
            (``_thread`` for ``self._thread = Thread(...)``), None when
            not bound to an attribute.
        owner: Class qualname enclosing the spawn site (the class whose
            ``joined_attrs`` entry proves a join path), None outside a
            class.
        spawn_scope: Module-local qualname of the spawning function, or
            ``<module>`` for module-level spawns.
    """

    kind: str
    target: str
    module: str
    line: int = 0
    daemon: bool = False
    bound_to: str | None = None
    owner: str | None = None
    spawn_scope: str = "<module>"


class CallGraph:
    """Whole-program call graph over one analysis run's modules.

    Built once by :meth:`build`; rules read it through
    ``ctx.project.callgraph``.  All containers are plain dicts/sets
    keyed by dotted qualnames, so the graph dumps to JSON directly
    (``--callgraph-dump``).
    """

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        #: ``mod.Class`` -> {"methods": {name: qualname}, "bases": [...]}.
        self.classes: dict[str, dict] = {}
        #: ``(mod.Class, attr)`` -> class qualname of the instance held.
        self.attr_types: dict[tuple[str, str], str] = {}
        #: ``mod.NAME`` -> class qualname of a module-level singleton.
        self.global_types: dict[str, str] = {}
        #: ``(owner, name)`` lock tokens; owner is a class qualname or a
        #: module name for module-level locks.
        self.lock_attrs: set[tuple[str, str]] = set()
        #: ``(owner, name)`` threading.Event tokens.
        self.event_attrs: set[tuple[str, str]] = set()
        #: ``(mod.Class, attr)`` thread attributes ``.join()``-ed somewhere.
        self.joined_attrs: set[tuple[str, str]] = set()
        self.entry_points: list[EntryPoint] = []
        #: Nested lock acquisitions: (outer, inner) -> [(module, line,
        #: col, scope)] sites where ``inner`` is taken under ``outer``.
        self.lock_edges: dict[tuple[str, str], list[tuple]] = {}
        self.edges: dict[str, set[str]] = {}
        self.callers: dict[str, set[str]] = {}
        self._reachable_cache: dict[str, frozenset[str]] = {}
        self._origins_cache: dict[str, frozenset[str]] = {}

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls,
        project: "Project",
        extra_entry_points: tuple[str, ...] = (),
    ) -> "CallGraph":
        """Index every module, resolve calls, register entry points.

        Args:
            project: The analysis run's module table; ``worker_entries``
                seeds the worker-kind entry points (the same tuple
                WRK001's import closure is anchored on).
            extra_entry_points: Function qualnames declared as extra
                concurrent roots (CLI ``--entry-points``); unknown names
                are ignored (module names among them are handled by the
                runner, which folds them into ``worker_entries``).
        """
        graph = cls()
        contexts = [project.modules[m] for m in sorted(project.modules)]
        for ctx in contexts:
            graph._index_module(ctx)
        for ctx in contexts:
            graph._resolve_module(ctx)
        for entry_module in project.worker_entries:
            graph._register_worker_module(entry_module)
        for qualname in extra_entry_points:
            if qualname in graph.functions:
                graph._add_entry(
                    EntryPoint(
                        kind="custom",
                        target=qualname,
                        module=graph.functions[qualname].module,
                    )
                )
        graph._finalize()
        return graph

    def _index_module(self, ctx: ModuleContext) -> None:
        """First pass: functions, classes, attribute/global types."""
        module = ctx.module_name
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                qual = f"{module}.{ctx.qualname(node)}"
                methods = {
                    child.name: f"{qual}.{child.name}"
                    for child in node.body
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                }
                bases = []
                for base in node.bases:
                    resolved = ctx.resolve(base)
                    if resolved is None:
                        token = _expr_token(base)
                        if token is not None:
                            resolved = f"{module}.{token}"
                    if resolved is not None:
                        bases.append(resolved)
                self.classes[qual] = {"methods": methods, "bases": bases}
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local = ctx.qualname(node)
                info = FunctionInfo(
                    qualname=f"{module}.{local}",
                    module=module,
                    local_name=local,
                    node=node,
                    is_async=isinstance(node, ast.AsyncFunctionDef),
                    is_generator=_is_generator(node),
                    class_name=self._enclosing_class(ctx, node),
                )
                self.functions[info.qualname] = info
        # Attribute/global types and synchronization tables need the
        # class index, but only within this module, which is complete.
        self._collect_types(ctx)

    def _enclosing_class(self, ctx: ModuleContext, node: ast.AST) -> str | None:
        current = ctx.parent(node)
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return f"{ctx.module_name}.{ctx.qualname(current)}"
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return None  # method of nothing: nested in a function
            current = ctx.parent(current)
        return None

    def _collect_types(self, ctx: ModuleContext) -> None:
        """Instance-attribute and module-global construction types."""
        module = ctx.module_name
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            constructed = self._constructed_type(ctx, value)
            if constructed is None:
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                token = _expr_token(target)
                if token is None:
                    continue
                parts = token.split(".")
                scope = ctx.enclosing_scope(node)
                if parts[0] == "self" and len(parts) == 2:
                    owner = self._enclosing_class(ctx, scope)
                    if owner is None:
                        continue
                    self._record_type(owner, parts[1], constructed)
                elif len(parts) == 1 and scope is ctx.tree:
                    self._record_type(module, parts[0], constructed)
                    if constructed in self.classes or "." in constructed:
                        self.global_types[f"{module}.{parts[0]}"] = constructed

    def _record_type(self, owner: str, name: str, constructed: str) -> None:
        if constructed in LOCK_FACTORIES:
            self.lock_attrs.add((owner, name))
        elif constructed in EVENT_FACTORIES:
            self.event_attrs.add((owner, name))
        else:
            self.attr_types[(owner, name)] = constructed

    def _constructed_type(self, ctx: ModuleContext, call: ast.Call) -> str | None:
        """Dotted type a constructor call produces, if recognizable."""
        resolved = ctx.resolve(call.func)
        if resolved is not None:
            return resolved
        token = _expr_token(call.func)
        if token is None:
            return None
        candidate = f"{ctx.module_name}.{token}"
        if candidate in self.classes:
            return candidate
        return None

    # -- second pass: call resolution ---------------------------------

    def _resolve_module(self, ctx: ModuleContext) -> None:
        for info in self.functions.values():
            if info.module != ctx.module_name:
                continue
            local_types = self._local_var_types(ctx, info)
            for call in self._own_calls(ctx, info.node):
                site = self._resolve_call(ctx, info, call, local_types)
                info.calls.append(site)
                self._scan_special(ctx, info, call, site, local_types)
        # Module-level spawns (`threading.Thread(...)` / `asyncio.run`
        # in an `if __name__` block) are entry points too.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and ctx.enclosing_scope(node) is ctx.tree:
                site = self._resolve_call(ctx, None, node, {})
                self._scan_special(ctx, None, node, site, {})
        for info in self.functions.values():
            if info.module != ctx.module_name:
                continue
            local_types = self._local_var_types(ctx, info)
            self._scan_sync_markers(ctx, info, local_types)
            self._scan_lock_nesting(ctx, info)

    def _own_calls(self, ctx: ModuleContext, fn: ast.AST) -> Iterator[ast.Call]:
        """Call nodes whose nearest enclosing def is ``fn`` itself."""
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and ctx.enclosing_scope(node) is fn:
                yield node

    def _local_var_types(
        self, ctx: ModuleContext, info: FunctionInfo
    ) -> dict[str, str]:
        """``name -> constructed type`` for this function's locals."""
        out: dict[str, str] = {}
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Assign):
                continue
            if ctx.enclosing_scope(node) is not info.node:
                continue
            if not isinstance(node.value, ast.Call):
                continue
            constructed = self._constructed_type(ctx, node.value)
            if constructed is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = constructed
        return out

    def _resolve_call(
        self,
        ctx: ModuleContext,
        info: FunctionInfo | None,
        call: ast.Call,
        local_types: dict[str, str],
    ) -> CallSite:
        token = _expr_token(call.func)
        awaited = isinstance(ctx.parent(call), ast.Await)
        targets: list[str] = []
        external: str | None = None
        if token is not None:
            targets, external = self._resolve_token(
                ctx, info, token, local_types
            )
        return CallSite(
            raw=token,
            targets=tuple(targets),
            external=external,
            lineno=call.lineno,
            col=call.col_offset,
            awaited=awaited,
            node=call,
        )

    def resolve_token(
        self,
        ctx: ModuleContext,
        info: FunctionInfo | None,
        token: str,
        local_types: dict[str, str] | None = None,
    ) -> tuple[list[str], str | None]:
        """Public wrapper: resolve a dotted token as the rules need it.

        Returns:
            ``(project_targets, external_dotted)`` exactly as call
            resolution does; useful for non-call references such as
            ``Thread(target=self._run)``.
        """
        return self._resolve_token(ctx, info, token, local_types or {})

    def _resolve_token(
        self,
        ctx: ModuleContext,
        info: FunctionInfo | None,
        token: str,
        local_types: dict[str, str],
    ) -> tuple[list[str], str | None]:
        module = ctx.module_name
        parts = token.split(".")

        # self.method() / self.attr.method() chains.
        if parts[0] == "self" and info is not None and info.class_name:
            resolved = self._walk_chain(info.class_name, parts[1:])
            return (([resolved], None) if resolved else ([], None))

        # Imports: `from m import f` / `import m` attribute chains.
        dotted = self._dotted_through_aliases(ctx, token)
        if dotted is not None:
            if dotted in self.functions:
                return [dotted], None
            if dotted in self.classes:
                init = self._lookup_method(dotted, "__init__")
                return ([init] if init else []), None
            owner = self.global_types.get(dotted)
            if owner is None and "." in dotted:
                # PROFILER.buffer.merge: peel trailing attrs down to a
                # known module-level singleton, then walk its types.
                head, *rest = self._split_known_global(dotted)
                if head is not None:
                    resolved = self._walk_chain(self.global_types[head], rest)
                    return (([resolved], None) if resolved else ([], None))
            return [], dotted

        # Bare local name: sibling nested def, module function/class.
        if len(parts) == 1:
            name = parts[0]
            if info is not None:
                nested = f"{info.qualname}.{name}"
                if nested in self.functions:
                    return [nested], None
            if info is not None and info.class_name:
                sibling = self._lookup_method(info.class_name, name)
                # Bare-name method calls are not `self.`-qualified in
                # python; do NOT resolve those — fall through.
                del sibling
            module_level = f"{module}.{name}"
            if module_level in self.functions:
                return [module_level], None
            if module_level in self.classes:
                init = self._lookup_method(module_level, "__init__")
                return ([init] if init else []), None
            return [], None

        # Locally constructed instance: `s = Scheduler(); s.flush()`,
        # or a module-level singleton referenced without an import.
        head_type = local_types.get(parts[0]) or self.global_types.get(
            f"{module}.{parts[0]}"
        )
        if head_type is not None:
            if head_type in self.classes:
                resolved = self._walk_chain(head_type, parts[1:])
                return (([resolved], None) if resolved else ([], None))
            # External construction: report `Type.method` as external so
            # blocking tables can match e.g. ThreadPoolExecutor.map.
            return [], f"{head_type}.{'.'.join(parts[1:])}"
        return [], None

    def _dotted_through_aliases(
        self, ctx: ModuleContext, token: str
    ) -> str | None:
        """Absolute dotted name of a token via the module's imports."""
        parts = token.split(".")
        # ctx.resolve works on AST nodes; re-implement on the token so
        # callers holding only a string (thread targets) can resolve.
        aliases = ctx._aliases
        base = aliases.get(parts[0])
        if base is None:
            return None
        return ".".join([base] + parts[1:])

    def _split_known_global(self, dotted: str):
        """Longest known ``global_types`` prefix of a dotted name."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            head = ".".join(parts[:cut])
            if head in self.global_types:
                return [head] + parts[cut:]
        return [None]

    def _walk_chain(self, owner: str, parts: list[str]) -> str | None:
        """Resolve ``attr...attr.method`` against a class qualname."""
        current = owner
        for attr in parts[:-1]:
            nxt = self.attr_types.get((current, attr))
            if nxt is None or nxt not in self.classes:
                return None
            current = nxt
        return self._lookup_method(current, parts[-1]) if parts else None

    def _lookup_method(
        self, class_qual: str, name: str, _seen: frozenset[str] = frozenset()
    ) -> str | None:
        """Method qualname in a class or its project-internal bases."""
        if class_qual in _seen:
            return None
        entry = self.classes.get(class_qual)
        if entry is None:
            return None
        if name in entry["methods"]:
            return entry["methods"][name]
        seen = _seen | {class_qual}
        for base in entry["bases"]:
            found = self._lookup_method(base, name, seen)
            if found is not None:
                return found
        return None

    # -- entry points and synchronization markers ---------------------

    def _scan_special(
        self,
        ctx: ModuleContext,
        info: FunctionInfo | None,
        call: ast.Call,
        site: CallSite,
        local_types: dict[str, str],
    ) -> None:
        """Entry-point spawns hiding inside an ordinary call node."""
        if site.external in THREAD_FACTORIES:
            self._register_thread(ctx, info, call, local_types)
            return
        is_task_spawn = site.external in TASK_SPAWN_CALLS or (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in TASK_SPAWN_ATTRS
        )
        if is_task_spawn:
            for arg in call.args:
                for sub in ast.walk(arg):
                    if not isinstance(sub, ast.Call):
                        continue
                    inner = self._resolve_call(ctx, info, sub, local_types)
                    for target in inner.targets:
                        fn = self.functions.get(target)
                        if fn is not None and fn.is_async:
                            self._add_entry(
                                EntryPoint(
                                    kind="task",
                                    target=target,
                                    module=ctx.module_name,
                                    line=sub.lineno,
                                )
                            )

    def _register_thread(
        self,
        ctx: ModuleContext,
        info: FunctionInfo | None,
        call: ast.Call,
        local_types: dict[str, str],
    ) -> None:
        target_expr = None
        daemon = False
        for kw in call.keywords:
            if kw.arg == "target":
                target_expr = kw.value
            elif kw.arg == "daemon" and isinstance(kw.value, ast.Constant):
                daemon = bool(kw.value.value)
        if target_expr is None and call.args:
            # Thread(group, target) positional form; target is arg 1.
            if len(call.args) >= 2:
                target_expr = call.args[1]
        if target_expr is None:
            return
        token = _expr_token(target_expr)
        if token is None:
            return
        targets, _external = self._resolve_token(ctx, info, token, local_types)
        bound_to = None
        parent = ctx.parent(call)
        if isinstance(parent, ast.Assign):
            for tgt in parent.targets:
                tgt_token = _expr_token(tgt)
                if tgt_token and tgt_token.startswith("self."):
                    bound_to = tgt_token.split(".", 1)[1]
        for target in targets:
            self._add_entry(
                EntryPoint(
                    kind="thread",
                    target=target,
                    module=ctx.module_name,
                    line=call.lineno,
                    daemon=daemon,
                    bound_to=bound_to,
                    owner=info.class_name if info is not None else None,
                    spawn_scope=(
                        info.local_name if info is not None else "<module>"
                    ),
                )
            )

    def _scan_sync_markers(
        self,
        ctx: ModuleContext,
        info: FunctionInfo,
        local_types: dict[str, str],
    ) -> None:
        """Stop-event checks and ``.join()`` calls on thread attributes."""
        alias_of_attr: dict[str, str] = {}
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, (ast.Attribute, ast.Name)
            ):
                value_token = _expr_token(node.value)
                if value_token and value_token.startswith("self."):
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            alias_of_attr[tgt.id] = value_token.split(".", 1)[1]
            if not isinstance(node, ast.Call):
                continue
            token = _expr_token(node.func)
            if token is None:
                continue
            parts = token.split(".")
            owner = info.class_name
            if (
                owner is not None
                and parts[0] == "self"
                and len(parts) == 3
                and parts[2] in ("wait", "is_set")
                and (owner, parts[1]) in self.event_attrs
            ):
                info.checks_stop_event = True
            if parts[-1] == "join" and owner is not None:
                if parts[0] == "self" and len(parts) == 3:
                    self.joined_attrs.add((owner, parts[1]))
                elif len(parts) == 2 and parts[0] in alias_of_attr:
                    self.joined_attrs.add((owner, alias_of_attr[parts[0]]))

    def _scan_lock_nesting(self, ctx: ModuleContext, info: FunctionInfo) -> None:
        """Record inner-lock acquisitions made while an outer is held."""
        def walk(node: ast.AST, held: tuple[str, ...]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(child, (ast.With, ast.AsyncWith)):
                    acquired = [
                        tok
                        for item in child.items
                        if (tok := self.lock_token(ctx, info, item.context_expr))
                    ]
                    for outer in held:
                        for inner in acquired:
                            if inner == outer:
                                continue
                            self.lock_edges.setdefault(
                                (outer, inner), []
                            ).append(
                                (
                                    ctx.module_name,
                                    child.lineno,
                                    child.col_offset,
                                    info.qualname,
                                )
                            )
                    walk(child, held + tuple(acquired))
                else:
                    walk(child, held)

        walk(info.node, ())

    def lock_token(
        self, ctx: ModuleContext, info: FunctionInfo | None, expr: ast.AST
    ) -> str | None:
        """Canonical ``owner.name`` label when ``expr`` is a known lock.

        Handles ``self._lock`` (instance attribute), bare module-level
        lock names, and ``obj._lock`` through typed locals/globals;
        returns None for anything not in the lock table (including
        ``asyncio.Lock``, which is not a *threading* lock).
        """
        token = _expr_token(expr)
        if token is None:
            return None
        parts = token.split(".")
        if parts[0] == "self" and info is not None and info.class_name:
            if len(parts) == 2 and (info.class_name, parts[1]) in self.lock_attrs:
                return f"{info.class_name}.{parts[1]}"
            return None
        if len(parts) == 1:
            if (ctx.module_name, parts[0]) in self.lock_attrs:
                return f"{ctx.module_name}.{parts[0]}"
            return None
        owner = self.global_types.get(f"{ctx.module_name}.{parts[0]}")
        if owner is not None and len(parts) == 2 and (
            owner, parts[1]
        ) in self.lock_attrs:
            return f"{owner}.{parts[1]}"
        return None

    def held_locks(
        self, ctx: ModuleContext, info: FunctionInfo, node: ast.AST
    ) -> frozenset[str]:
        """Lock tokens lexically held at ``node`` within its function."""
        held: set[str] = set()
        current = ctx.parent(node)
        while current is not None and current is not info.node:
            if isinstance(current, (ast.With, ast.AsyncWith)):
                for item in current.items:
                    token = self.lock_token(ctx, info, item.context_expr)
                    if token is not None:
                        held.add(token)
            current = ctx.parent(current)
        return frozenset(held)

    def _register_worker_module(self, entry_module: str) -> None:
        """Module-level functions of a worker entry module are entries."""
        for qualname, info in self.functions.items():
            if info.module != entry_module or info.class_name is not None:
                continue
            if "." in info.local_name:  # nested function, not an entry
                continue
            self._add_entry(
                EntryPoint(kind="worker", target=qualname, module=entry_module)
            )

    def _add_entry(self, entry: EntryPoint) -> None:
        if entry not in self.entry_points:
            self.entry_points.append(entry)

    def _finalize(self) -> None:
        """Freeze adjacency from the resolved call sites."""
        for qualname, info in self.functions.items():
            out = self.edges.setdefault(qualname, set())
            for site in info.calls:
                for target in site.targets:
                    if target in self.functions:
                        out.add(target)
                        self.callers.setdefault(target, set()).add(qualname)

    # -- queries -------------------------------------------------------

    def reachable(
        self, start: str, max_depth: int = DEFAULT_MAX_DEPTH
    ) -> frozenset[str]:
        """Functions reachable from ``start`` within ``max_depth`` hops.

        Includes ``start`` itself; cycles terminate via the visited set
        and the hop bound caps worst-case work.
        """
        if max_depth == DEFAULT_MAX_DEPTH:
            cached = self._reachable_cache.get(start)
            if cached is not None:
                return cached
        seen = {start}
        frontier = {start}
        for _ in range(max_depth):
            nxt: set[str] = set()
            for name in frontier:
                nxt |= self.edges.get(name, set())
            nxt -= seen
            if not nxt:
                break
            seen |= nxt
            frontier = nxt
        result = frozenset(seen)
        if max_depth == DEFAULT_MAX_DEPTH:
            self._reachable_cache[start] = result
        return result

    def origins(self, qualname: str) -> frozenset[str]:
        """Concurrent roots that can execute ``qualname``.

        Labels: ``thread:<entry-target>`` / ``custom:<entry-target>``
        per spawning entry whose target reaches the function, and the
        single merged ``main`` label when any plain root caller (no
        in-repo callers, not itself a thread/task target) reaches it —
        asyncio task origins fold into ``main`` because tasks share the
        loop thread.
        """
        cached = self._origins_cache.get(qualname)
        if cached is not None:
            return cached
        entry_kinds: dict[str, set[str]] = {}
        for entry in self.entry_points:
            entry_kinds.setdefault(entry.target, set()).add(entry.kind)
        labels: set[str] = set()
        seen = {qualname}
        frontier = {qualname}
        for _ in range(DEFAULT_MAX_DEPTH):
            for name in frontier:
                kinds = entry_kinds.get(name, set())
                if "thread" in kinds:
                    labels.add(f"thread:{name}")
                if "custom" in kinds:
                    labels.add(f"custom:{name}")
                if "task" in kinds or "worker" in kinds:
                    labels.add("main")
                if not self.callers.get(name) and not kinds:
                    labels.add("main")
            nxt: set[str] = set()
            for name in frontier:
                nxt |= self.callers.get(name, set())
            nxt -= seen
            if not nxt:
                break
            seen |= nxt
            frontier = nxt
        result = frozenset(labels)
        self._origins_cache[qualname] = result
        return result

    def async_functions(self, module: str) -> list[FunctionInfo]:
        """The ``async def`` functions defined in ``module``, by line."""
        out = [
            info
            for info in self.functions.values()
            if info.module == module and info.is_async
        ]
        return sorted(out, key=lambda info: info.node.lineno)

    def thread_entries(self, module: str | None = None) -> list[EntryPoint]:
        """Thread-kind entry points (optionally only those spawned in
        ``module``), in registration order."""
        return [
            e
            for e in self.entry_points
            if e.kind == "thread" and (module is None or e.module == module)
        ]

    def dump(self) -> dict:
        """JSON-ready snapshot for ``--callgraph-dump``."""
        return {
            "schema_version": 1,
            "functions": {
                qualname: {
                    "module": info.module,
                    "async": info.is_async,
                    "generator": info.is_generator,
                    "class": info.class_name,
                    "calls": sorted(
                        {t for s in info.calls for t in s.targets}
                    ),
                    "externals": sorted(
                        {s.external for s in info.calls if s.external}
                    ),
                }
                for qualname, info in sorted(self.functions.items())
            },
            "entry_points": [
                {
                    "kind": e.kind,
                    "target": e.target,
                    "module": e.module,
                    "line": e.line,
                    "daemon": e.daemon,
                    "bound_to": e.bound_to,
                }
                for e in self.entry_points
            ],
            "locks": sorted(f"{owner}.{name}" for owner, name in self.lock_attrs),
            "lock_edges": sorted(
                f"{outer} -> {inner}" for outer, inner in self.lock_edges
            ),
        }


def _is_generator(fn: ast.AST) -> bool:
    """Whether the function's own body yields (nested defs excluded)."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False
