"""Rule framework: findings, severities, and the rule registry.

A *rule* inspects one :class:`~repro.analysis.context.ModuleContext` at a
time and yields :class:`Finding` objects.  Rules self-register via the
:func:`register` decorator; :func:`all_rules` instantiates the full
catalogue in rule-id order so reports and tests are deterministic.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.analysis.context import ModuleContext


class Severity(enum.Enum):
    """Severity ladder for findings.

    Both levels fail the lint gate; severity is reporting metadata that
    tells a reader whether a finding is a hard invariant violation
    (``ERROR``) or a discipline/hygiene concern (``WARNING``).
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation anchored to a source location.

    Attributes:
        path: Repo-relative (or as-given) path of the offending file.
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        rule_id: Identifier of the rule that fired (e.g. ``NUM002``).
        severity: ``error`` or ``warning`` (string form of
            :class:`Severity`).
        message: Human-readable description of the violation.
        scope: Dotted name of the enclosing function/class, or
            ``<module>`` for module-level findings.
    """

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str
    scope: str = "<module>"

    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching.

        Excludes ``line``/``col`` so unrelated edits that shift code do
        not invalidate a baselined finding.
        """
        return f"{self.rule_id}|{self.path}|{self.scope}|{self.message}"

    @property
    def rule_family(self) -> str:
        """Alphabetic family prefix of the rule id (``THR001`` → ``THR``)."""
        return self.rule_id.rstrip("0123456789")

    def to_dict(self) -> dict:
        """Plain-dict form for the JSON reporter.

        Part of the lint JSON contract (docs/static_analysis.md);
        baseline fingerprints are computed from :meth:`fingerprint`,
        not from this dict, so adding keys here is non-breaking.
        """
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "rule_family": self.rule_family,
            "severity": self.severity,
            "message": self.message,
            "scope": self.scope,
        }


class Rule:
    """Base class for reprolint rules.

    Subclasses set the class attributes and implement :meth:`check`.

    Attributes:
        rule_id: Stable identifier (``<FAMILY><number>``), used in
            reports, ``--select``/``--disable``, suppressions, and
            baselines.
        title: One-line summary for ``--list-rules``.
        severity: Default :class:`Severity` of this rule's findings.
        rationale: Why the invariant matters in this repository.
    """

    rule_id: str = ""
    title: str = ""
    severity: Severity = Severity.ERROR
    rationale: str = ""

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        """Yield findings for one module.

        Args:
            ctx: Parsed module under analysis (AST, aliases, guard sets,
                project-level reachability).
        """
        raise NotImplementedError

    def finding(
        self, ctx: "ModuleContext", node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` for ``node`` with this rule's metadata."""
        return Finding(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            severity=self.severity.value,
            message=message,
            scope=ctx.qualname(node),
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry.

    Raises:
        ValueError: On a duplicate or empty ``rule_id``.
    """
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY and _REGISTRY[cls.rule_id] is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Instantiate every registered rule, sorted by rule id."""
    # Importing the rules package populates the registry on first use.
    import repro.analysis.rules  # noqa: F401

    return [_REGISTRY[rid]() for rid in sorted(_REGISTRY)]


def rule_ids() -> list[str]:
    """All registered rule ids, sorted."""
    import repro.analysis.rules  # noqa: F401

    return sorted(_REGISTRY)
