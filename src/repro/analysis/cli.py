"""Command-line interface: ``python -m repro.analysis`` / ``repro-lint``.

Exit codes: 0 clean, 1 findings (or stale baseline entries / parse
errors), 2 usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.analysis.baseline import Baseline, apply_baseline
from repro.analysis.core import all_rules
from repro.analysis.report import render_json, render_text
from repro.analysis.runner import (
    DEFAULT_SERVICE_ENTRY,
    DEFAULT_WORKER_ENTRY,
    analyze_paths,
)


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "reprolint: AST-based static analysis enforcing this repo's "
            "determinism, numerical-safety, and worker-safety invariants."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint (e.g. src/)"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file of grandfathered findings (JSON)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--disable",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--worker-entry",
        default=DEFAULT_WORKER_ENTRY,
        help=(
            "module anchoring the worker-reachability graph for WRK001 "
            f"(default: {DEFAULT_WORKER_ENTRY})"
        ),
    )
    parser.add_argument(
        "--service-entry",
        default=DEFAULT_SERVICE_ENTRY,
        help=(
            "long-lived service entry whose import closure joins the "
            f"WRK001 graph (default: {DEFAULT_SERVICE_ENTRY}; "
            "pass '' to disable)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _split_ids(raw: str | None) -> list[str] | None:
    if not raw:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; returns the process exit code."""
    try:
        return _run(argv)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _run(argv: Sequence[str] | None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  [{rule.severity.value:7s}] {rule.title}")
            print(f"    {rule.rationale}")
        return 0

    if not args.paths:
        parser.error("no paths given (try: repro-lint src/)")

    if args.write_baseline and not args.baseline:
        parser.error("--write-baseline requires --baseline FILE")

    result = analyze_paths(
        args.paths,
        select=_split_ids(args.select),
        disable=_split_ids(args.disable),
        worker_entry=args.worker_entry,
        service_entry=args.service_entry or None,
    )

    if args.write_baseline:
        Baseline.from_findings(result.findings).save(args.baseline)
        print(
            f"reprolint: wrote {len(result.findings)} finding(s) to "
            f"{args.baseline}"
        )
        return 0

    baseline = Baseline.load(args.baseline) if args.baseline else Baseline()
    new, grandfathered, stale = apply_baseline(result.findings, baseline)

    renderer = render_json if args.format == "json" else render_text
    renderer(result, new, grandfathered, stale, sys.stdout)

    failed = bool(new) or bool(stale) or bool(result.errors)
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - module execution guard
    sys.exit(main())
