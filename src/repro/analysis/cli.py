"""Command-line interface: ``python -m repro.analysis`` / ``repro-lint``.

Exit codes: 0 clean, 1 findings (or stale baseline entries / parse
errors), 2 usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

import json

from repro.analysis.baseline import Baseline, apply_baseline
from repro.analysis.core import all_rules
from repro.analysis.report import render_json, render_text
from repro.analysis.runner import (
    DEFAULT_SERVICE_ENTRY,
    DEFAULT_WORKER_ENTRY,
    analyze_paths,
    changed_py_files,
    filter_to_changed,
)


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "reprolint: AST-based static analysis enforcing this repo's "
            "determinism, numerical-safety, and worker-safety invariants."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint (e.g. src/)"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file of grandfathered findings (JSON)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--disable",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--worker-entry",
        default=DEFAULT_WORKER_ENTRY,
        help=(
            "module anchoring the worker-reachability graph for WRK001 "
            f"(default: {DEFAULT_WORKER_ENTRY})"
        ),
    )
    parser.add_argument(
        "--service-entry",
        default=DEFAULT_SERVICE_ENTRY,
        help=(
            "long-lived service entry whose import closure joins the "
            f"WRK001 graph (default: {DEFAULT_SERVICE_ENTRY}; "
            "pass '' to disable)"
        ),
    )
    parser.add_argument(
        "--entry-points",
        metavar="NAMES",
        help=(
            "comma-separated extra concurrent roots for the call "
            "graph: module names join the worker-entry registry "
            "(WRK001 closure + worker entry points together); function "
            "qualnames become custom entries for the THR origins "
            "analysis"
        ),
    )
    parser.add_argument(
        "--callgraph-dump",
        metavar="FILE",
        help="write the resolved call graph as JSON to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "incremental mode: report findings only for files differing "
            "from `git merge-base HEAD main` (plus untracked files); "
            "the whole project is still analyzed so cross-module rules "
            "stay sound.  Falls back to a full run outside git"
        ),
    )
    parser.add_argument(
        "--changed-base",
        default="main",
        metavar="REF",
        help="base ref for --changed (default: main)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _split_ids(raw: str | None) -> list[str] | None:
    if not raw:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; returns the process exit code."""
    try:
        return _run(argv)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _run(argv: Sequence[str] | None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  [{rule.severity.value:7s}] {rule.title}")
            print(f"    {rule.rationale}")
        return 0

    if not args.paths:
        parser.error("no paths given (try: repro-lint src/)")

    if args.write_baseline and not args.baseline:
        parser.error("--write-baseline requires --baseline FILE")

    changed = None
    if args.changed:
        changed = changed_py_files(args.changed_base)
        if changed is not None and not changed:
            print(
                "reprolint: no python files changed since the merge "
                f"base with {args.changed_base!r}; nothing to report"
            )
            return 0
        if changed is None:
            print(
                "reprolint: --changed requested but no git merge base "
                "found; running a full lint",
                file=sys.stderr,
            )

    result = analyze_paths(
        args.paths,
        select=_split_ids(args.select),
        disable=_split_ids(args.disable),
        worker_entry=args.worker_entry,
        service_entry=args.service_entry or None,
        entry_points=_split_ids(args.entry_points) or (),
    )

    if args.callgraph_dump and result.project and result.project.callgraph:
        payload = json.dumps(result.project.callgraph.dump(), indent=2)
        if args.callgraph_dump == "-":
            print(payload)
        else:
            with open(args.callgraph_dump, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")

    if changed is not None:
        result = filter_to_changed(result, changed)

    if args.write_baseline:
        Baseline.from_findings(result.findings).save(args.baseline)
        print(
            f"reprolint: wrote {len(result.findings)} finding(s) to "
            f"{args.baseline}"
        )
        return 0

    baseline = Baseline.load(args.baseline) if args.baseline else Baseline()
    new, grandfathered, stale = apply_baseline(result.findings, baseline)
    if changed is not None:
        # A partial view cannot judge baseline staleness: entries for
        # unchanged files legitimately match nothing in this run.
        stale = []

    renderer = render_json if args.format == "json" else render_text
    renderer(result, new, grandfathered, stale, sys.stdout)

    failed = bool(new) or bool(stale) or bool(result.errors)
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - module execution guard
    sys.exit(main())
