"""The shipped reprolint rule set.

Importing this package registers every rule with
:mod:`repro.analysis.core`.  Rule families:

* ``ASY`` — async-blocking discipline (:mod:`repro.analysis.rules.async_blocking`)
* ``DET`` — determinism (:mod:`repro.analysis.rules.determinism`)
* ``RNG`` — rng threading (:mod:`repro.analysis.rules.rng_threading`)
* ``NUM`` — numerical safety (:mod:`repro.analysis.rules.numerics`)
* ``THR`` — thread safety (:mod:`repro.analysis.rules.thread_safety`)
* ``WRK`` — worker safety (:mod:`repro.analysis.rules.worker_safety`)
* ``DTY`` — dtype discipline (:mod:`repro.analysis.rules.dtypes`)
* ``OBS`` — observability discipline (:mod:`repro.analysis.rules.observability`)
"""

from repro.analysis.rules import (  # noqa: F401
    async_blocking,
    determinism,
    dtypes,
    numerics,
    observability,
    rng_threading,
    thread_safety,
    worker_safety,
)

__all__ = [
    "async_blocking",
    "determinism",
    "dtypes",
    "numerics",
    "observability",
    "rng_threading",
    "thread_safety",
    "worker_safety",
]
