"""The shipped reprolint rule set.

Importing this package registers every rule with
:mod:`repro.analysis.core`.  Rule families:

* ``DET`` — determinism (:mod:`repro.analysis.rules.determinism`)
* ``RNG`` — rng threading (:mod:`repro.analysis.rules.rng_threading`)
* ``NUM`` — numerical safety (:mod:`repro.analysis.rules.numerics`)
* ``WRK`` — worker safety (:mod:`repro.analysis.rules.worker_safety`)
* ``DTY`` — dtype discipline (:mod:`repro.analysis.rules.dtypes`)
* ``OBS`` — observability discipline (:mod:`repro.analysis.rules.observability`)
"""

from repro.analysis.rules import (  # noqa: F401
    determinism,
    dtypes,
    numerics,
    observability,
    rng_threading,
    worker_safety,
)

__all__ = [
    "determinism",
    "dtypes",
    "numerics",
    "observability",
    "rng_threading",
    "worker_safety",
]
