"""Thread-safety rules (``THR``): shared state, lock order, shutdown.

The telemetry layer runs three long-lived daemon threads next to the
asyncio serve loop; these rules use the call graph's entry-point
registry and origins analysis to reason about what actually runs
concurrently, instead of pattern-matching on ``threading`` imports:

* **THR001** — an instance attribute is mutated from two or more
  concurrent origins (a spawned thread's closure vs. the main/loop
  thread, or two different threads) with no *common* lock held across
  all mutating sites.  ``__init__`` is exempt: construction happens
  before any thread the object spawns exists (happens-before via
  ``Thread.start``).
* **THR002** — two locks are acquired in nested ``with`` blocks in both
  orders somewhere in the project (a lock-order cycle); whichever
  thread interleaving hits both sides deadlocks.  Flagged at every
  acquisition site on the cycle.
* **THR003** — a ``daemon=True`` thread whose target's reachable
  closure neither checks a ``threading.Event`` stop flag nor is ever
  ``.join()``-ed via the attribute it was bound to.  Daemon threads die
  mid-statement at interpreter exit; without a cooperative stop path
  there is no way to flush or hand off their state first (the metrics
  stream would truncate its last JSONL line).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import CallGraph, FunctionInfo
from repro.analysis.context import ModuleContext, _expr_token
from repro.analysis.core import Finding, Rule, Severity, register

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)

#: Methods whose bodies run before any thread the object starts exists.
CONSTRUCTION_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


def _graph(ctx: ModuleContext) -> CallGraph | None:
    project = ctx.project
    return getattr(project, "callgraph", None) if project is not None else None


def _mutated_attrs(
    ctx: ModuleContext, info: FunctionInfo
) -> Iterator[tuple[str, ast.AST]]:
    """``(attr, node)`` for every ``self.<attr>`` mutation in a method.

    Covers plain/augmented/subscript assignment (``self.x = ...``,
    ``self.x += 1``, ``self.x[k] = v``) and in-place mutator calls
    (``self.x.append(...)``).
    """
    for node in ast.walk(info.node):
        if ctx.enclosing_scope(node) is not info.node:
            continue
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                token = _expr_token(target)
                if token is None:
                    continue
                parts = token.split(".")
                if parts[0] == "self" and len(parts) == 2:
                    yield parts[1], node
        elif isinstance(node, ast.Call):
            token = _expr_token(node.func)
            if token is None:
                continue
            parts = token.split(".")
            if (
                len(parts) == 3
                and parts[0] == "self"
                and parts[2] in MUTATOR_METHODS
            ):
                yield parts[1], node


@register
class UnlockedSharedMutationRule(Rule):
    """THR001: attribute mutated from ≥2 origins with no common lock."""

    rule_id = "THR001"
    title = "shared attribute mutated without a common lock"
    severity = Severity.ERROR
    rationale = (
        "When a sampler thread and the main thread both mutate the same "
        "attribute, unlocked interleavings lose updates and tear "
        "multi-field invariants (a counter reset racing an increment, a "
        "file handle swapped mid-write).  Every mutating site must hold "
        "one common lock — partial locking on only one side protects "
        "nothing."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Group mutation sites per (class, attr); flag lock-free races."""
        graph = _graph(ctx)
        if graph is None:
            return
        sites: dict[tuple[str, str], list[tuple]] = {}
        for info in graph.functions.values():
            if info.module != ctx.module_name or info.class_name is None:
                continue
            method = info.local_name.rsplit(".", 1)[-1]
            if method in CONSTRUCTION_METHODS:
                continue
            origins = graph.origins(info.qualname)
            for attr, node in _mutated_attrs(ctx, info):
                held = graph.held_locks(ctx, info, node)
                sites.setdefault((info.class_name, attr), []).append(
                    (node, info, origins, held)
                )
        for (class_name, attr), group in sorted(
            sites.items(), key=lambda item: item[0]
        ):
            all_origins = frozenset().union(*(g[2] for g in group))
            if len(all_origins) < 2:
                continue
            common = group[0][3]
            for entry in group[1:]:
                common &= entry[3]
            if common:
                continue
            group.sort(key=lambda entry: entry[0].lineno)
            node, info, _origins, held = next(
                (g for g in group if not g[3]), group[0]
            )
            class_short = class_name.rsplit(".", 1)[-1]
            origin_list = ", ".join(sorted(all_origins))
            yield Finding(
                path=ctx.display_path,
                line=node.lineno,
                col=node.col_offset,
                rule_id=self.rule_id,
                severity=self.severity.value,
                message=(
                    f"`self.{attr}` of {class_short} is mutated from "
                    f"multiple concurrent contexts ({origin_list}) with "
                    "no common lock across the mutating sites"
                ),
                scope=info.local_name,
            )


@register
class LockOrderCycleRule(Rule):
    """THR002: locks acquired in conflicting nested orders."""

    rule_id = "THR002"
    title = "lock-ordering cycle"
    severity = Severity.ERROR
    rationale = (
        "If one code path takes lock A then B while another takes B "
        "then A, two threads hitting both paths simultaneously each "
        "hold the lock the other needs — a classic deadlock that only "
        "manifests under production interleavings.  Acquire locks in "
        "one global order, or collapse them into a single lock."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag this module's acquisition sites on any lock-order cycle."""
        graph = _graph(ctx)
        if graph is None:
            return
        adjacency: dict[str, set[str]] = {}
        for outer, inner in graph.lock_edges:
            adjacency.setdefault(outer, set()).add(inner)
        seen_lines: set[int] = set()
        for (outer, inner), occurrences in sorted(graph.lock_edges.items()):
            if not self._reaches(adjacency, inner, outer):
                continue
            for module, line, col, scope in occurrences:
                if module != ctx.module_name or line in seen_lines:
                    continue
                seen_lines.add(line)
                local_scope = (
                    scope[len(module) + 1 :]
                    if scope.startswith(module + ".")
                    else scope
                )
                yield Finding(
                    path=ctx.display_path,
                    line=line,
                    col=col,
                    rule_id=self.rule_id,
                    severity=self.severity.value,
                    message=(
                        f"lock `{inner}` acquired while holding "
                        f"`{outer}`, but the reverse order also occurs — "
                        "lock-order cycle can deadlock"
                    ),
                    scope=local_scope,
                )

    @staticmethod
    def _reaches(
        adjacency: dict[str, set[str]], start: str, goal: str
    ) -> bool:
        """True when ``goal`` is reachable from ``start`` over lock edges."""
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            if current == goal:
                return True
            for nxt in adjacency.get(current, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False


@register
class DaemonWithoutStopPathRule(Rule):
    """THR003: daemon thread with no reachable stop/join path."""

    rule_id = "THR003"
    title = "daemon thread without stop/join path"
    severity = Severity.WARNING
    rationale = (
        "A daemon thread is killed mid-statement when the interpreter "
        "exits: buffered telemetry is lost, files truncate mid-record, "
        "and shm segments leak.  Give the target loop a threading.Event "
        "it checks (`while not stop.is_set()` / `stop.wait(dt)`), or "
        "keep a handle and `.join()` it on shutdown."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag daemon spawns lacking both stop-event and join evidence."""
        graph = _graph(ctx)
        if graph is None:
            return
        for entry in graph.thread_entries(ctx.module_name):
            if not entry.daemon:
                continue
            checks_stop = any(
                fn.checks_stop_event
                for q in graph.reachable(entry.target)
                if (fn := graph.functions.get(q)) is not None
            )
            joined = (
                entry.owner is not None
                and entry.bound_to is not None
                and (entry.owner, entry.bound_to) in graph.joined_attrs
            )
            if checks_stop or joined:
                continue
            target_short = entry.target.rsplit(".", 1)[-1]
            yield Finding(
                path=ctx.display_path,
                line=entry.line,
                col=0,
                rule_id=self.rule_id,
                severity=self.severity.value,
                message=(
                    f"daemon thread target `{target_short}` has no "
                    "reachable stop-event check and is never joined; it "
                    "will be killed mid-iteration at interpreter exit"
                ),
                scope=entry.spawn_scope,
            )
