"""Worker-safety rules (``WRK``): what campaign workers may touch.

Campaign workers are spawned processes executing
``repro.experiments._campaign_worker`` functions.  Two invariants keep
them honest:

* modules *reachable from the worker call graph* must not accumulate
  state in module-level mutable containers — a worker that mutates one
  produces results that depend on its private task history, which breaks
  1-vs-N-worker bit-identity and makes respawned workers (PR 3)
  diverge from the workers they replace;
* all cross-process transport goes through the one audited chokepoint,
  :mod:`repro.parallel` (``shm.pack``/``unpack`` + the executor) — ad-hoc
  ``multiprocessing`` use elsewhere bypasses the shm ownership protocol,
  the leak janitor, and the fault-tolerance fencing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext, _expr_token
from repro.analysis.core import Finding, Rule, Severity, register

#: Constructors of mutable module-level state flagged by WRK001.
MUTABLE_FACTORIES = frozenset(
    {
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.Counter",
        "collections.deque",
        "itertools.count",
        "queue.Queue",
    }
)

#: Builtin constructors of mutable containers.
MUTABLE_BUILTINS = frozenset({"list", "dict", "set", "bytearray"})

#: Package segment allowed to use multiprocessing primitives directly.
TRANSPORT_PACKAGE_SEGMENT = "parallel"

#: Dotted prefixes that constitute direct cross-process transport.
TRANSPORT_PREFIXES = ("multiprocessing",)

#: Specific transport entry points outside the ``multiprocessing`` root.
TRANSPORT_CALLS = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "os.fork",
    }
)


@register
class MutableGlobalInWorkerPathRule(Rule):
    """WRK001: no module-level mutable containers on the worker call graph."""

    rule_id = "WRK001"
    title = "module-level mutable state reachable from campaign workers"
    severity = Severity.WARNING
    rationale = (
        "A worker that reads-and-mutates module state makes its results a "
        "function of its private task history: chunk order, worker count, "
        "and PR 3 respawns all change the answer.  Keep worker-reachable "
        "module state immutable (tuples/frozensets/MappingProxyType) or "
        "justify the exception in a suppression."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag mutable module-level assignments in worker-reachable modules."""
        project = ctx.project
        if project is None or ctx.module_name not in project.worker_reachable:
            return
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            reason = self._mutability(ctx, value)
            if reason is None:
                continue
            for target in targets:
                name = _expr_token(target)
                if name is None:
                    continue
                # Dunders (__all__ & friends) are interpreter conventions,
                # written once at import and never mutated.
                if name.startswith("__") and name.endswith("__"):
                    continue
                yield self.finding(
                    ctx,
                    stmt,
                    f"module-level mutable state `{name}` ({reason}) is "
                    "reachable from the campaign worker call graph",
                )

    def _mutability(self, ctx: ModuleContext, value: ast.AST) -> str | None:
        if isinstance(value, (ast.List, ast.ListComp)):
            return "list"
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(value, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(value, ast.Call):
            if (
                isinstance(value.func, ast.Name)
                and value.func.id in MUTABLE_BUILTINS
            ):
                return value.func.id
            resolved = ctx.resolve(value.func)
            if resolved in MUTABLE_FACTORIES:
                return resolved
        return None


@register
class TransportOutsideParallelRule(Rule):
    """WRK002: multiprocessing primitives only inside ``repro.parallel``."""

    rule_id = "WRK002"
    title = "cross-process transport outside repro.parallel"
    severity = Severity.ERROR
    rationale = (
        "repro.parallel owns the shm ownership protocol (named segments, "
        "janitor sweeps, epoch fencing).  Payload types cross the process "
        "boundary only via shm.pack/unpack, which knows how to extract "
        "and rehydrate ndarray-bearing trees; a bare Pool/Pipe elsewhere "
        "ships unregistered payloads and leaks segments on crash."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag multiprocessing usage outside the transport package."""
        if TRANSPORT_PACKAGE_SEGMENT in ctx.module_segments():
            return
        seen_lines: set[int] = set()
        for node in ast.walk(ctx.tree):
            resolved: str | None = None
            if isinstance(node, (ast.Attribute, ast.Name)):
                resolved = ctx.resolve(node)
            if resolved is None:
                continue
            hit = resolved in TRANSPORT_CALLS or any(
                resolved == p or resolved.startswith(p + ".")
                for p in TRANSPORT_PREFIXES
            )
            if hit and node.lineno not in seen_lines:
                seen_lines.add(node.lineno)
                yield self.finding(
                    ctx,
                    node,
                    f"direct transport primitive `{resolved}`; route "
                    "cross-process payloads through repro.parallel "
                    "(CampaignExecutor + shm.pack/unpack)",
                )
