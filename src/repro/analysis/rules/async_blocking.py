"""Async-blocking rules (``ASY``): coroutines must never block the loop.

The serve layer runs every client request through one asyncio event
loop; a single blocking call anywhere in a coroutine's *transitive* sync
call chain stalls every in-flight request (and the micro-batch
scheduler's deadline math with it).  These rules consume the project
call graph (:mod:`repro.analysis.callgraph`) instead of looking at one
function at a time:

* **ASY001** — a blocking call (``time.sleep``, sync file/socket I/O,
  ``subprocess``, the campaign executor's ``map``) is reachable from an
  ``async def`` through project-internal sync calls, with no
  ``await``/``run_in_executor`` boundary in between.  Passing a blocking
  function *as an argument* (``loop.run_in_executor(None, fn)``) creates
  no call edge, so the sanctioned escape hatches are invisible to the
  rule by construction.
* **ASY002** — ``await`` while holding a ``threading.Lock``-family lock:
  the coroutine parks with the lock held and any *thread* contending for
  it (profiler tick, metrics flush) blocks for the await's full
  duration.  ``asyncio`` locks are not in the lock table and never fire.
* **ASY003** — a call to a project coroutine function used as a bare
  expression statement: the coroutine object is created and dropped, the
  body never runs.  Spawns (``create_task(coro())``) and assignments
  keep the value and are not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import CallGraph, CallSite, DEFAULT_MAX_DEPTH
from repro.analysis.context import ModuleContext
from repro.analysis.core import Finding, Rule, Severity, register

#: External dotted calls that block the calling thread.
BLOCKING_EXACT = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "select.select",
        "urllib.request.urlopen",
        "queue.Queue.get",
        "queue.Queue.put",
        "pathlib.Path.open",
        "pathlib.Path.read_text",
        "pathlib.Path.read_bytes",
        "pathlib.Path.write_text",
        "pathlib.Path.write_bytes",
        "concurrent.futures.ThreadPoolExecutor.map",
        "concurrent.futures.ProcessPoolExecutor.map",
    }
)

#: Prefixes of external call families that block wholesale.
BLOCKING_PREFIXES = ("subprocess.", "requests.")

#: Builtins that block (unresolved bare names, so matched on the raw
#: token rather than an absolute dotted name).
BLOCKING_BUILTINS = frozenset({"open", "input"})

#: Project-internal functions that are blocking *by contract* — the
#: call graph stops here instead of descending into their bodies.
BLOCKING_PROJECT = frozenset(
    {
        "repro.parallel.executor.CampaignExecutor.map",
    }
)


def blocking_label(site: CallSite) -> str | None:
    """Blocking-table label for a call site, None when not blocking."""
    if site.external is not None:
        if site.external in BLOCKING_EXACT:
            return site.external
        if site.external.startswith(BLOCKING_PREFIXES):
            return site.external
    for target in site.targets:
        if target in BLOCKING_PROJECT:
            return target.rsplit(".", 2)[-2] + "." + target.rsplit(".", 1)[-1]
    if (
        site.raw in BLOCKING_BUILTINS
        and not site.targets
        and site.external is None
    ):
        return site.raw
    return None


def _graph(ctx: ModuleContext) -> CallGraph | None:
    project = ctx.project
    return getattr(project, "callgraph", None) if project is not None else None


@register
class BlockingCallInCoroutineRule(Rule):
    """ASY001: blocking call transitively reachable from ``async def``."""

    rule_id = "ASY001"
    title = "blocking call reachable from a coroutine"
    severity = Severity.ERROR
    rationale = (
        "One blocking call in a coroutine's sync call chain freezes the "
        "whole event loop: every in-flight request, the micro-batch "
        "scheduler's deadlines, and the drain path all stall behind it.  "
        "Blocking work belongs behind `await loop.run_in_executor(...)` "
        "/ `asyncio.to_thread`, or use `await asyncio.sleep` for pacing."
    )

    def __init__(self) -> None:
        self._path_memo: dict[int, dict[str, tuple[str, ...] | None]] = {}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag the first blocking reason at each offending call site."""
        graph = _graph(ctx)
        if graph is None:
            return
        memo = self._path_memo.setdefault(id(graph), {})
        for info in graph.async_functions(ctx.module_name):
            for site in info.calls:
                if site.awaited:
                    continue
                chain = self._site_chain(graph, site, memo)
                if chain is None:
                    continue
                route = " -> ".join((info.local_name,) + chain)
                yield Finding(
                    path=ctx.display_path,
                    line=site.lineno,
                    col=site.col,
                    rule_id=self.rule_id,
                    severity=self.severity.value,
                    message=(
                        f"coroutine `{info.local_name}` reaches blocking "
                        f"call `{chain[-1]}` via {route}; move it behind "
                        "run_in_executor/to_thread (or asyncio.sleep)"
                    ),
                    scope=info.local_name,
                )

    def _site_chain(
        self,
        graph: CallGraph,
        site: CallSite,
        memo: dict[str, tuple[str, ...] | None],
    ) -> tuple[str, ...] | None:
        """Blocking chain reached from one call site, shortest label path."""
        direct = blocking_label(site)
        if direct is not None:
            return (direct,)
        for target in site.targets:
            fn = graph.functions.get(target)
            if fn is None or fn.is_async or fn.is_generator:
                # Calling an async/generator function only *creates* the
                # coroutine/generator; its body does not run here.
                continue
            sub = self._blocking_path(graph, target, memo, frozenset())
            if sub is not None:
                return sub
        return None

    def _blocking_path(
        self,
        graph: CallGraph,
        qualname: str,
        memo: dict[str, tuple[str, ...] | None],
        seen: frozenset[str],
    ) -> tuple[str, ...] | None:
        """DFS for a blocking call under ``qualname``, bounded and memoized."""
        if qualname in memo:
            return memo[qualname]
        if qualname in seen or len(seen) >= DEFAULT_MAX_DEPTH:
            return None  # cycle/depth cut; memo only stores settled answers
        info = graph.functions[qualname]
        short = info.local_name.rsplit(".", 1)[-1]
        seen = seen | {qualname}
        for site in info.calls:
            label = blocking_label(site)
            if label is not None:
                memo[qualname] = (short, label)
                return memo[qualname]
        for site in info.calls:
            for target in site.targets:
                fn = graph.functions.get(target)
                if fn is None or fn.is_async or fn.is_generator:
                    continue
                sub = self._blocking_path(graph, target, memo, seen)
                if sub is not None:
                    memo[qualname] = (short,) + sub
                    return memo[qualname]
        memo[qualname] = None
        return None


@register
class AwaitUnderThreadLockRule(Rule):
    """ASY002: ``await`` while holding a ``threading`` lock."""

    rule_id = "ASY002"
    title = "await while holding a threading lock"
    severity = Severity.ERROR
    rationale = (
        "An await suspends the coroutine for an unbounded time with the "
        "lock still held, so the profiler/exporter threads contending "
        "for it block until the awaited I/O completes — the lock's "
        "critical section silently inflates from microseconds to a full "
        "request latency.  Hold threading locks only across straight-"
        "line code, or switch the shared state to an asyncio.Lock."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag awaits lexically inside ``with <threading lock>`` blocks."""
        graph = _graph(ctx)
        if graph is None:
            return
        for info in graph.async_functions(ctx.module_name):
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Await):
                    continue
                if ctx.enclosing_scope(node) is not info.node:
                    continue
                held = graph.held_locks(ctx, info, node)
                if not held:
                    continue
                locks = ", ".join(f"`{name}`" for name in sorted(held))
                yield Finding(
                    path=ctx.display_path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=self.rule_id,
                    severity=self.severity.value,
                    message=(
                        f"await inside `with` block holding threading "
                        f"lock {locks}; release before awaiting or use "
                        "asyncio.Lock"
                    ),
                    scope=info.local_name,
                )


@register
class CoroutineNeverAwaitedRule(Rule):
    """ASY003: project coroutine called and discarded without ``await``."""

    rule_id = "ASY003"
    title = "coroutine call never awaited"
    severity = Severity.ERROR
    rationale = (
        "Calling an `async def` returns a coroutine object without "
        "running its body; as a bare statement the object is dropped on "
        "the floor and the intended work (a submit, a drain, a metric "
        "flush) silently never happens.  Await it, or hand it to "
        "asyncio.create_task/gather if fire-and-forget is intended."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag bare-statement calls that resolve to project coroutines."""
        graph = _graph(ctx)
        if graph is None:
            return
        for info in graph.functions.values():
            if info.module != ctx.module_name:
                continue
            for site in info.calls:
                if site.awaited or site.node is None:
                    continue
                parent = ctx.parent(site.node)
                if not isinstance(parent, ast.Expr):
                    continue
                async_targets = [
                    t
                    for t in site.targets
                    if (fn := graph.functions.get(t)) is not None
                    and fn.is_async
                ]
                if not async_targets:
                    continue
                name = async_targets[0].rsplit(".", 1)[-1]
                yield Finding(
                    path=ctx.display_path,
                    line=site.lineno,
                    col=site.col,
                    rule_id=self.rule_id,
                    severity=self.severity.value,
                    message=(
                        f"result of coroutine `{name}` is discarded — the "
                        "body never runs; await it or wrap it in "
                        "asyncio.create_task"
                    ),
                    scope=info.local_name,
                )
