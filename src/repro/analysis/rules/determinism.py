"""Determinism rules (``DET``): ban hidden global state and wall clocks.

Campaign results must be bit-identical across runs and across worker
counts (PR 1's headline guarantee).  Anything that reads process-global
mutable state — the legacy ``np.random.*`` API, OS-entropy-seeded
generators, the wall clock — silently breaks that.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.core import Finding, Rule, Severity, register

#: Legacy ``numpy.random`` global-state API (draws from or mutates the
#: hidden module-level ``RandomState``).
LEGACY_NP_RANDOM = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "normal",
        "uniform",
        "choice",
        "shuffle",
        "permutation",
        "poisson",
        "exponential",
        "standard_normal",
        "binomial",
        "gamma",
        "beta",
        "get_state",
        "set_state",
        "RandomState",
    }
)

#: Wall-clock / monotonic-clock reads forbidden inside numeric kernels.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Packages whose modules count as numeric kernels: pure functions of
#: their inputs and the threaded rng, never of the clock.  Telemetry
#: (``repro.obs``) and orchestration (``repro.experiments``) are
#: deliberately excluded — timing spans are their job.
KERNEL_PACKAGES = frozenset(
    {
        "physics",
        "reconstruction",
        "localization",
        "detector",
        "geometry",
        "sources",
        "nn",
        "models",
        "quantization",
        "fpga",
        "infer",
    }
)


@register
class LegacyNumpyRandomRule(Rule):
    """DET001: no legacy ``np.random.*`` global-state API anywhere."""

    rule_id = "DET001"
    title = "legacy np.random.* global-state API"
    severity = Severity.ERROR
    rationale = (
        "The legacy API draws from one hidden process-global RandomState; "
        "results then depend on call order across the whole process, which "
        "breaks 1-vs-N-worker bit-identity.  Thread an explicit "
        "np.random.Generator instead."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag any attribute access resolving to the legacy API."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            resolved = ctx.resolve(node)
            if (
                resolved
                and resolved.startswith("numpy.random.")
                and resolved.rsplit(".", 1)[1] in LEGACY_NP_RANDOM
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"legacy global-state API `{resolved}`; thread an "
                    "explicit np.random.Generator",
                )


@register
class UnseededDefaultRngRule(Rule):
    """DET002: no ``np.random.default_rng()`` without a seed argument."""

    rule_id = "DET002"
    title = "unseeded default_rng()"
    severity = Severity.ERROR
    rationale = (
        "default_rng() with no argument seeds from OS entropy: every run "
        "differs and no campaign is reproducible.  Derive generators from "
        "the campaign SeedSequence instead."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag zero-argument ``default_rng`` calls."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if ctx.resolve(node.func) != "numpy.random.default_rng":
                continue
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    "default_rng() seeded from OS entropy; pass a seed or "
                    "SeedSequence derived from the campaign seed",
                )


@register
class WallClockInKernelRule(Rule):
    """DET003: no clock reads inside numeric-kernel packages."""

    rule_id = "DET003"
    title = "wall clock read inside a numeric kernel"
    severity = Severity.ERROR
    rationale = (
        "Kernels must be pure functions of their inputs and the threaded "
        "rng.  A time.time()/datetime.now() read makes outputs (or control "
        "flow) run-dependent; timing belongs in repro.obs spans."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag clock calls when the module lives in a kernel package."""
        if not ctx.in_packages(KERNEL_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved in WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"clock read `{resolved}` inside a numeric kernel; "
                    "pass timestamps in or use repro.obs tracing",
                )
