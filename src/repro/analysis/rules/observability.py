"""Observability-discipline rules (``OBS``) for kernel hot paths.

Telemetry is designed to cost one attribute check when disabled — but
one check *per row* is still O(rows) overhead smuggled into a kernel,
and when tracing is on, a span or metric call per row floods the event
buffer and the worker snapshot protocol.  Instrumentation in the
quantized/inference/FPGA packages belongs at stage granularity: one span
around the loop, one histogram observation per block.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.core import Finding, Rule, Severity, register

#: Kernel packages where per-row instrumentation is banned.  ``serve``
#: qualifies: its flush loop touches every pending request per round, so
#: an ungated per-request obs call there is per-row overhead in disguise.
KERNEL_PACKAGES = frozenset({"quantization", "infer", "fpga", "serve"})

#: Dotted names of span-opening and metric-recording entry points.
OBS_CALLS = frozenset(
    {
        "repro.obs.span",
        "repro.obs.timed_span",
        "repro.obs.traced",
        "repro.obs.inc",
        "repro.obs.observe",
        "repro.obs.set_gauge",
        "repro.obs.trace.span",
        "repro.obs.trace.timed_span",
        "repro.obs.trace.traced",
        "repro.obs.metrics.inc",
        "repro.obs.metrics.observe",
        "repro.obs.metrics.set_gauge",
    }
)

#: Dotted names whose truthiness gates telemetry (an ``if`` on one of
#: these makes a per-row call a *reviewed* trade-off, not an accident).
ENABLED_GATES = frozenset(
    {
        "repro.obs.is_enabled",
        "repro.obs.trace.is_enabled",
        "repro.obs.trace.STATE.enabled",
    }
)


@register
class PerRowInstrumentationRule(Rule):
    """OBS001: no ungated telemetry calls inside kernel per-row loops."""

    rule_id = "OBS001"
    title = "ungated telemetry call inside a kernel loop"
    severity = Severity.ERROR
    rationale = (
        "obs.span()/inc()/observe() cost one attribute check when "
        "telemetry is off — but inside a per-row loop of a kernel "
        "package that check (and, when tracing, an event dict per row) "
        "multiplies by len(rows).  Instrument at stage granularity: one "
        "span around the loop, one histogram observation per block.  If "
        "per-row telemetry is genuinely wanted, gate the loop body on "
        "obs.is_enabled() so the disabled path pays a single check."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag OBS calls lexically inside for/while loops, unless the
        call sits under an ``if obs.is_enabled():``-style gate between
        the loop and the call."""
        if not ctx.in_packages(KERNEL_PACKAGES):
            return
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.While, ast.AsyncFor)):
                continue
            for call in ast.walk(loop):
                if not isinstance(call, ast.Call):
                    continue
                resolved = ctx.resolve(call.func)
                if resolved not in OBS_CALLS:
                    continue
                if self._innermost_loop(ctx, call) is not loop:
                    continue  # reported once, against the nearest loop
                if self._gated(ctx, call, loop):
                    continue
                short = resolved.rsplit(".", 1)[1]
                yield self.finding(
                    ctx,
                    call,
                    f"obs.{short}() inside a loop in a kernel package; "
                    "hoist to stage granularity or gate the block on "
                    "obs.is_enabled()",
                )

    @staticmethod
    def _innermost_loop(ctx: ModuleContext, node: ast.AST) -> ast.AST | None:
        """The nearest enclosing loop of ``node`` (None outside loops)."""
        current = ctx.parent(node)
        while current is not None:
            if isinstance(current, (ast.For, ast.While, ast.AsyncFor)):
                return current
            current = ctx.parent(current)
        return None

    def _gated(self, ctx: ModuleContext, call: ast.Call, loop: ast.AST) -> bool:
        """Whether an enabled-gate ``if`` sits between ``loop`` and ``call``."""
        current = ctx.parent(call)
        while current is not None and current is not loop:
            if isinstance(current, ast.If) and self._is_enabled_test(
                ctx, current.test
            ):
                return True
            current = ctx.parent(current)
        return False

    @staticmethod
    def _is_enabled_test(ctx: ModuleContext, test: ast.AST) -> bool:
        """Whether an ``if`` test checks the telemetry enable flag."""
        for sub in ast.walk(test):
            if isinstance(sub, ast.Call) and ctx.resolve(sub.func) in ENABLED_GATES:
                return True
            if ctx.resolve(sub) in ENABLED_GATES:
                return True
        return False
