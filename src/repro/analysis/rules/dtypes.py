"""Dtype-discipline rules (``DTY``) for the INT8/FPGA path.

The quantized inference path (paper §FPGA, Fig. 6) is only faithful to
the hardware when every array's width is chosen on purpose: narrowing
casts must be clipped to the target range first (the FPGA saturates;
NumPy wraps), and array constructors must say which width they mean
instead of inheriting float64 by default.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext, _expr_token
from repro.analysis.core import Finding, Rule, Severity, register

#: Packages where the dtype rules apply.
DTYPE_PACKAGES = frozenset({"quantization", "fpga", "infer"})

#: Narrow integer targets whose ``astype`` wraps on overflow.
NARROW_INT_DTYPES = frozenset(
    {
        "numpy.int8",
        "numpy.uint8",
        "numpy.int16",
        "numpy.uint16",
        "numpy.int32",
        "numpy.uint32",
    }
)

#: String forms of the same dtypes (``x.astype("int8")``).
NARROW_INT_STRINGS = frozenset(
    {"int8", "uint8", "int16", "uint16", "int32", "uint32"}
)

#: Array constructors that silently default to float64.
IMPLICIT_DTYPE_CTORS = frozenset(
    {
        "numpy.asarray",
        "numpy.array",
        "numpy.zeros",
        "numpy.ones",
        "numpy.empty",
        "numpy.full",
        "numpy.zeros_like",
        "numpy.ones_like",
        "numpy.empty_like",
        "numpy.full_like",
    }
)

#: ``*_like`` constructors inherit their prototype's dtype — that is an
#: explicit choice, so they are exempt from DTY002.
_LIKE_CTORS = frozenset(
    {"numpy.zeros_like", "numpy.ones_like", "numpy.empty_like", "numpy.full_like"}
)

#: Widening targets whose per-call ``astype`` allocates and copies the
#: whole operand (the int8 slowdown BENCH_pr5 measured came from
#: exactly this: ``.astype(np.int64)`` per forward call).
WIDE_DTYPES = frozenset(
    {"numpy.int64", "numpy.uint64", "numpy.float32", "numpy.float64"}
)

#: String forms of the same dtypes.
WIDE_DTYPE_STRINGS = frozenset({"int64", "uint64", "float32", "float64"})

#: Per-call kernel entry points (the hot path).  Reference
#: implementations kept for parity (``_reference_forward_int``) are
#: deliberately *not* matched.
HOT_PATH_FUNCTIONS = frozenset({"forward", "forward_int", "apply"})


@register
class UnguardedNarrowingCastRule(Rule):
    """DTY001: clip before narrowing to an int dtype."""

    rule_id = "DTY001"
    title = "unclipped narrowing int cast"
    severity = Severity.ERROR
    rationale = (
        "astype(int8/int32/...) wraps out-of-range values modulo 2^n; the "
        "FPGA saturates instead.  Every narrowing cast in the quantized "
        "path must be np.clip-ed to the target range first or the "
        "software model diverges from the hardware exactly when it "
        "matters (overflow)."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag narrowing ``astype`` with no clip on the casted value."""
        if not ctx.in_packages(DTYPE_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "astype"):
                continue
            if not node.args:
                continue
            target = node.args[0]
            resolved = ctx.resolve(target)
            is_narrow = resolved in NARROW_INT_DTYPES or (
                isinstance(target, ast.Constant)
                and target.value in NARROW_INT_STRINGS
            )
            if not is_narrow:
                continue
            value = func.value
            if ctx.contains_guard(value):
                continue
            scope = ctx.enclosing_scope(node)
            guarded = ctx.guarded_names(scope)
            token = _expr_token(value)
            if token is not None and (
                token in guarded or token.split(".")[0] in guarded
            ):
                continue
            dtype_name = resolved or str(getattr(target, "value", "?"))
            yield self.finding(
                ctx,
                node,
                f"narrowing cast to {dtype_name} without np.clip to the "
                "target range; NumPy wraps where the FPGA saturates",
            )


@register
class HotPathWideningCastRule(Rule):
    """DTY003: no per-call widening ``astype`` in kernel hot paths."""

    rule_id = "DTY003"
    title = "per-call widening cast in a kernel hot path"
    severity = Severity.ERROR
    rationale = (
        "astype(int64/float64/...) inside forward/forward_int/apply "
        "allocates and copies the operand on every call; widened views "
        "of construction-time constants (weights, biases, requant "
        "parameters) must be precomputed once at construction and "
        "cached.  BENCH_pr5 measured the int8 path 8x slower than eager "
        "float for exactly this reason."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag widening ``astype`` calls inside hot-path functions."""
        if not ctx.in_packages(DTYPE_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name not in HOT_PATH_FUNCTIONS:
                continue
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                if not (
                    isinstance(func, ast.Attribute) and func.attr == "astype"
                ):
                    continue
                if not call.args:
                    continue
                target = call.args[0]
                resolved = ctx.resolve(target)
                is_wide = resolved in WIDE_DTYPES or (
                    isinstance(target, ast.Constant)
                    and target.value in WIDE_DTYPE_STRINGS
                )
                if not is_wide:
                    continue
                dtype_name = resolved or str(getattr(target, "value", "?"))
                yield self.finding(
                    ctx,
                    call,
                    f"widening cast to {dtype_name} inside "
                    f"{node.name}(); precompute the widened array at "
                    "construction instead of per call",
                )


@register
class ImplicitDtypeRule(Rule):
    """DTY002: array constructors must name their dtype."""

    rule_id = "DTY002"
    title = "array constructor without explicit dtype"
    severity = Severity.WARNING
    rationale = (
        "np.asarray/np.zeros default to float64 (or input-inferred) "
        "widths; in the int8 path that is a silent promotion that hides "
        "accumulator-width bugs.  Say dtype=... so the width is a "
        "reviewed decision."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag dtype-less array constructors in quantization/fpga."""
        if not ctx.in_packages(DTYPE_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved not in IMPLICIT_DTYPE_CTORS or resolved in _LIKE_CTORS:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            # Positional dtype: np.zeros(shape, np.int8) / np.full(s, v, d).
            n_positional = 3 if resolved == "numpy.full" else 2
            if len(node.args) >= n_positional:
                continue
            yield self.finding(
                ctx,
                node,
                f"{resolved.rsplit('.', 1)[1]}(...) without an explicit "
                "dtype in the quantized path; width must be a reviewed "
                "decision",
            )
