"""Numerical-safety rules (``NUM``): keep the kinematics NaN-free.

Compton reconstruction feeds measured (noisy) energies into functions
with restricted domains — ``arccos`` on [-1, 1], ``sqrt``/``log`` on
non-negatives — and divides by quantities that are only *physically*
guaranteed nonzero.  A single unguarded call turns one mismeasured event
into NaNs that propagate through ring weights into the localization fit.
These rules demand a visible guard (``np.clip``/``np.maximum``/… in the
argument, a guarded local name, an early-exit validation, or an
``np.errstate`` block with explicit invalid-handling) at every such
call site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import KNOWN_CONSTANTS, ModuleContext, _expr_token
from repro.analysis.core import Finding, Rule, Severity, register

#: Functions with a restricted real domain, checked by NUM001.
DOMAIN_CALLS = frozenset(
    {
        "numpy.arccos",
        "numpy.arcsin",
        "numpy.arctanh",
        "numpy.sqrt",
        "numpy.log",
        "numpy.log2",
        "numpy.log10",
    }
)

#: Packages where bare division is checked (NUM002): the kinematics and
#: fitting code where a zero denominator is a real event-data hazard.
DIVISION_PACKAGES = frozenset({"physics", "reconstruction", "localization"})


def _is_eps_token(node: ast.AST) -> bool:
    """True for names/attributes that read as an epsilon (``eps``, ``self.eps``)."""
    token = _expr_token(node) or ""
    return "eps" in token.rsplit(".", 1)[-1].lower()


def _has_positive_offset(expr: ast.AST) -> bool:
    """True for ``x + <positive constant>`` / ``x + eps`` additive guards."""
    if not (isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add)):
        return False
    for side in (expr.left, expr.right):
        if (
            isinstance(side, ast.Constant)
            and isinstance(side.value, (int, float))
            and side.value > 0
        ):
            return True
        if _is_eps_token(side):
            return True
    return False


def _provably_nonneg(expr: ast.AST) -> bool:
    """Structurally non-negative: even powers, their products and sums."""
    if isinstance(expr, ast.Constant):
        return isinstance(expr.value, (int, float)) and expr.value >= 0
    if isinstance(expr, ast.BinOp):
        if isinstance(expr.op, (ast.Add, ast.Mult)):
            return _provably_nonneg(expr.left) and _provably_nonneg(expr.right)
        if isinstance(expr.op, ast.Pow):
            exponent = expr.right
            return (
                isinstance(exponent, ast.Constant)
                and isinstance(exponent.value, int)
                and exponent.value % 2 == 0
            )
    if _is_eps_token(expr):
        return True
    return False


def _names_all_guarded(ctx: ModuleContext, expr: ast.AST, scope: ast.AST) -> bool:
    """True when every name/attribute token in ``expr`` is scope-guarded.

    Expressions with no tokens at all (pure constants) also count.
    """
    guarded = ctx.guarded_names(scope)
    stack = [expr]
    while stack:
        node = stack.pop()
        token = _expr_token(node)
        if token is not None:
            if token not in guarded and token.split(".")[0] not in guarded:
                return False
            continue  # do not descend into a guarded chain
        stack.extend(ast.iter_child_nodes(node))
    return True


@register
class UnguardedDomainCallRule(Rule):
    """NUM001: ``arccos``/``sqrt``/``log`` arguments must be guarded."""

    rule_id = "NUM001"
    title = "unguarded domain-restricted call"
    severity = Severity.ERROR
    rationale = (
        "Measured energies routinely push eta outside [-1, 1] and "
        "radicands below zero; an unguarded arccos/sqrt/log turns those "
        "events into NaNs deep inside the pipeline.  Clip or floor the "
        "argument where the call happens, or validate-and-reject first."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag domain-restricted calls with no visible guard."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved not in DOMAIN_CALLS or not node.args:
                continue
            arg = node.args[0]
            if ctx.in_errstate(node):
                continue
            if isinstance(arg, ast.Constant):
                continue
            if ctx.contains_guard(arg):
                continue
            fn_name = resolved.rsplit(".", 1)[1]
            if fn_name in ("sqrt",) and _provably_nonneg(arg):
                continue
            if fn_name in ("sqrt", "log", "log2", "log10") and _has_positive_offset(
                arg
            ):
                continue
            scope = ctx.enclosing_scope(node)
            if _names_all_guarded(ctx, arg, scope):
                continue
            fn = resolved.rsplit(".", 1)[1]
            yield self.finding(
                ctx,
                node,
                f"np.{fn} argument has no visible domain guard "
                "(np.clip/np.maximum/validation); out-of-domain inputs "
                "become NaN",
            )


@register
class UnguardedDivisionRule(Rule):
    """NUM002: bare division in kinematics/fitting packages needs a guard."""

    rule_id = "NUM002"
    title = "unguarded division"
    severity = Severity.WARNING
    rationale = (
        "In physics/reconstruction/localization a denominator is usually "
        "a measured quantity that *can* be zero (coincident hits, "
        "degenerate fits).  Guard it (np.maximum/epsilon/validation), "
        "compute under np.errstate with explicit invalid-handling, or "
        "suppress with a written physical justification."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag divisions whose denominator has no visible guard."""
        if not ctx.in_packages(DIVISION_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp) or not isinstance(
                node.op, (ast.Div, ast.FloorDiv, ast.Mod)
            ):
                continue
            if ctx.in_errstate(node):
                continue
            scope = ctx.enclosing_scope(node)
            if self._denominator_safe(ctx, node.right, scope):
                continue
            yield self.finding(
                ctx,
                node,
                "denominator "
                f"`{ast.unparse(node.right)}` has no visible nonzero guard",
            )

    def _denominator_safe(
        self, ctx: ModuleContext, denom: ast.AST, scope: ast.AST
    ) -> bool:
        if isinstance(denom, ast.Constant):
            return not isinstance(denom.value, (int, float)) or denom.value != 0
        if isinstance(denom, ast.UnaryOp):
            return self._denominator_safe(ctx, denom.operand, scope)
        token = _expr_token(denom)
        if token is not None:
            if ctx.resolve(denom) in KNOWN_CONSTANTS:
                return True
            # ALL_CAPS module constants are trusted (validated at import).
            last = token.rsplit(".", 1)[-1]
            if last.isupper() or (last.startswith("_") and last[1:].isupper()):
                return True
            guarded = ctx.guarded_names(scope)
            return token in guarded or token.split(".")[0] in guarded
        if isinstance(denom, ast.Call):
            return ctx.contains_guard(denom)
        if isinstance(denom, ast.BinOp):
            if isinstance(denom.op, ast.Add):
                # Additive positive offset (`1.0 + x`, `x + eps`) is the
                # canonical epsilon pattern.
                for side in (denom.left, denom.right):
                    if (
                        isinstance(side, ast.Constant)
                        and isinstance(side.value, (int, float))
                        and side.value > 0
                    ):
                        return True
                    side_token = _expr_token(side) or ""
                    if "eps" in side_token.rsplit(".", 1)[-1].lower():
                        return True
                return self._denominator_safe(
                    ctx, denom.left, scope
                ) and self._denominator_safe(ctx, denom.right, scope)
            if isinstance(denom.op, ast.Mult):
                return self._denominator_safe(
                    ctx, denom.left, scope
                ) and self._denominator_safe(ctx, denom.right, scope)
            if isinstance(denom.op, ast.Pow):
                return self._denominator_safe(ctx, denom.left, scope)
            # Subtraction and anything else: cancellation hazard.
            return False
        return False
