"""RNG-threading rules (``RNG``): every draw comes from a threaded Generator.

The 1-vs-N-worker bit-identity proof (PR 1) rests on one invariant:
randomness flows *down* the call graph from a single campaign
``SeedSequence``, through explicit ``rng: np.random.Generator``
parameters.  A function that conjures its own generator — from a
hard-coded seed, or as a silent ``rng or default_rng(0)`` fallback —
severs that thread: two call sites share one stream, or a caller that
forgot to pass ``rng`` silently gets deterministic-but-wrong draws
instead of an error.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.core import Finding, Rule, Severity, register

#: Constructors that mint a new random stream.
RNG_FACTORIES = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.MT19937",
        "numpy.random.Philox",
        "numpy.random.SFC64",
    }
)


def _is_rng_factory_call(ctx: ModuleContext, node: ast.AST) -> bool:
    """True for a call to any :data:`RNG_FACTORIES` constructor."""
    return isinstance(node, ast.Call) and ctx.resolve(node.func) in RNG_FACTORIES


@register
class HardCodedSeedRule(Rule):
    """RNG001: no generator minted from a hard-coded literal seed."""

    rule_id = "RNG001"
    title = "hard-coded rng seed"
    severity = Severity.ERROR
    rationale = (
        "default_rng(<literal>) gives every call site the same stream, "
        "hides an unthreaded rng parameter, and decouples the draw from "
        "the campaign seed.  Derive the seed from a parameter or the "
        "campaign SeedSequence; for an explicit opt-in fallback use "
        "repro.rng.require_rng."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag rng factory calls whose first argument is a literal."""
        for node in ast.walk(ctx.tree):
            if not _is_rng_factory_call(ctx, node):
                continue
            assert isinstance(node, ast.Call)
            seed = node.args[0] if node.args else None
            for kw in node.keywords:
                if kw.arg in ("seed", "entropy"):
                    seed = kw.value
            if isinstance(seed, ast.Constant) and isinstance(
                seed.value, (int, float)
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"generator minted from hard-coded seed {seed.value!r}; "
                    "derive it from a parameter or the campaign SeedSequence",
                )


@register
class SilentRngFallbackRule(Rule):
    """RNG002: no silent ``rng or default_rng(...)`` parameter fallback."""

    rule_id = "RNG002"
    title = "silent rng fallback"
    severity = Severity.ERROR
    rationale = (
        "`rng = rng or default_rng(...)` masks callers that forgot to "
        "thread the generator: they get valid-looking draws from a stream "
        "unrelated to the campaign seed.  Require the generator, or call "
        "repro.rng.require_rng(rng, owner) which warns explicitly."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag fallback assignments inside functions with an rng parameter."""
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            arg_names = {
                a.arg
                for a in (
                    func.args.posonlyargs + func.args.args + func.args.kwonlyargs
                )
            }
            if "rng" not in arg_names:
                continue
            for node in ast.walk(func):
                if self._is_fallback(ctx, node):
                    yield self.finding(
                        ctx,
                        node,
                        "silent fallback mints a generator when rng is "
                        "omitted; require it or use repro.rng.require_rng",
                    )

    def _is_fallback(self, ctx: ModuleContext, node: ast.AST) -> bool:
        # Pattern A: ``x = rng or default_rng(...)`` (any boolean-or whose
        # operands mix the rng parameter with a factory call).
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
            has_rng = any(
                isinstance(v, ast.Name) and v.id == "rng" for v in node.values
            )
            has_factory = any(
                _is_rng_factory_call(ctx, v) for v in node.values
            )
            return has_rng and has_factory
        # Pattern B: ``if rng is None: rng = default_rng(...)``.
        if isinstance(node, ast.If):
            test = node.test
            is_none_check = (
                isinstance(test, ast.Compare)
                and isinstance(test.left, ast.Name)
                and test.left.id == "rng"
                and any(isinstance(op, ast.Is) for op in test.ops)
            ) or (
                isinstance(test, ast.UnaryOp)
                and isinstance(test.op, ast.Not)
                and isinstance(test.operand, ast.Name)
                and test.operand.id == "rng"
            )
            if not is_none_check:
                return False
            for stmt in node.body:
                if isinstance(stmt, ast.Assign) and _is_rng_factory_call(
                    ctx, stmt.value
                ):
                    return True
        return False
