"""Per-module analysis context: aliases, guard dataflow, suppressions.

One :class:`ModuleContext` wraps one parsed source file and provides the
semantic helpers every rule needs:

* **alias resolution** — maps local names through ``import`` statements so
  ``np.random.default_rng`` and ``from numpy.random import default_rng``
  resolve to the same dotted name (``numpy.random.default_rng``);
* **guard dataflow** — a deliberately simple, flow-insensitive,
  intra-scope analysis marking names/attribute-chains as *guarded* when
  they are assigned from a guarding expression (``np.clip``,
  ``np.maximum``, ``abs`` ...), validated by an early-exit ``if``
  (``if x < 1: raise``), or asserted;
* **errstate tracking** — nodes inside ``with np.errstate(...)`` blocks,
  where invalid/zero-division outcomes are explicitly managed;
* **suppressions** — ``# reprolint: disable=RULE-ID`` comments, per line
  or per file, with an optional ``-- justification`` tail.

The dataflow is a heuristic, not a proof: it exists so that code which
*visibly* guards its inputs lints clean, while code with no guard in
sight is surfaced for a human decision (fix, or suppress with a written
justification).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.analysis.runner import Project

#: Calls whose result is range-restricted enough to count as a guard for
#: domain functions (``sqrt``/``log``/``arccos``) and denominators.
GUARD_CALLS = frozenset(
    {
        "numpy.clip",
        "numpy.maximum",
        "numpy.minimum",
        "numpy.abs",
        "numpy.absolute",
        "numpy.fabs",
        "numpy.exp",
        "numpy.linalg.norm",
        "numpy.hypot",
        "numpy.square",
        "numpy.sqrt",
        "numpy.errstate",
    }
)

#: Builtins accepted as guards (``max(x, 1)``, ``abs(d)``).
BUILTIN_GUARDS = frozenset({"max", "min", "abs", "round", "len"})

#: Module-level numpy constants trusted as nonzero denominators.
KNOWN_CONSTANTS = frozenset(
    {"numpy.pi", "numpy.e", "numpy.euler_gamma", "numpy.inf"}
)

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable(?P<scope>-file)?\s*=\s*(?P<ids>[A-Za-z0-9_,\s-]+?)"
    r"(?:\s+--.*)?$"
)


def _parse_suppressions(
    source: str,
) -> tuple[dict[int, frozenset[str]], frozenset[str]]:
    """Extract per-line and per-file suppression directives.

    Returns:
        ``(line_disables, file_disables)`` where ``line_disables`` maps a
        1-based line number to the rule ids disabled on that line, and
        ``file_disables`` holds rule ids disabled for the whole file.
        The id ``all`` disables every rule.
    """
    line_disables: dict[int, frozenset[str]] = {}
    file_disables: set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "reprolint" not in text:
            continue
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        ids = frozenset(
            part.strip() for part in match.group("ids").split(",") if part.strip()
        )
        if not ids:
            continue
        if match.group("scope"):
            file_disables |= ids
        else:
            line_disables[lineno] = ids | line_disables.get(lineno, frozenset())
    return line_disables, frozenset(file_disables)


def _expr_token(node: ast.AST) -> str | None:
    """Dotted token for a name or attribute chain (``rings.deta``), else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _expr_token(node.value)
        if base is not None:
            return f"{base}.{node.attr}"
    if isinstance(node, ast.Subscript):
        return _expr_token(node.value)
    return None


def _is_early_exit(stmts: list[ast.stmt]) -> bool:
    """True when a statement list exits its scope (raise/return/continue/break)."""
    return any(
        isinstance(s, (ast.Raise, ast.Return, ast.Continue, ast.Break))
        for s in stmts
    )


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one source file.

    Attributes:
        path: Filesystem path of the module.
        display_path: Path as shown in findings (relative when possible).
        module_name: Dotted module name (``repro.physics.compton``).
        source: Raw source text.
        tree: Parsed ``ast.Module``.
        project: Back-reference to project-wide state (worker
            reachability); None when linting standalone files.
    """

    path: Path
    display_path: str
    module_name: str
    source: str
    tree: ast.Module
    project: "Project | None" = None
    _parents: dict[int, ast.AST] = field(default_factory=dict, repr=False)
    _aliases: dict[str, str] = field(default_factory=dict, repr=False)
    _guarded: dict[int, frozenset[str]] = field(default_factory=dict, repr=False)
    _errstate_nodes: set[int] = field(default_factory=set, repr=False)
    line_disables: dict[int, frozenset[str]] = field(default_factory=dict)
    file_disables: frozenset[str] = frozenset()

    @classmethod
    def from_path(
        cls,
        path: Path,
        module_name: str,
        display_path: str | None = None,
        project: "Project | None" = None,
    ) -> "ModuleContext":
        """Parse ``path`` and precompute the per-module analysis tables.

        Raises:
            SyntaxError: When the file does not parse.
            OSError: When the file cannot be read.
        """
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        ctx = cls(
            path=path,
            display_path=display_path or str(path),
            module_name=module_name,
            source=source,
            tree=tree,
            project=project,
        )
        ctx._index()
        return ctx

    # -- precomputation ------------------------------------------------

    def _index(self) -> None:
        """Build parent links, import aliases, errstate spans, suppressions."""
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        self._collect_aliases()
        self._collect_errstate()
        self.line_disables, self.file_disables = _parse_suppressions(self.source)

    def _collect_aliases(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self._aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                module = self._absolute_import_base(node)
                if module is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{module}.{alias.name}" if module else alias.name

    def _absolute_import_base(self, node: ast.ImportFrom) -> str | None:
        """Absolute dotted base for an ``from X import ...`` statement."""
        if node.level == 0:
            return node.module or ""
        parts = self.module_name.split(".")
        # ``from . import x`` inside pkg.mod resolves against pkg.
        base = parts[: len(parts) - node.level]
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base)

    def _collect_errstate(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.With):
                continue
            if any(
                isinstance(item.context_expr, ast.Call)
                and self.resolve(item.context_expr.func) == "numpy.errstate"
                for item in node.items
            ):
                for stmt in node.body:
                    for sub in ast.walk(stmt):
                        self._errstate_nodes.add(id(sub))

    # -- queries -------------------------------------------------------

    def resolve(self, node: ast.AST | None) -> str | None:
        """Dotted name of a Name/Attribute chain through import aliases.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` when the module imported
        ``numpy as np``; unresolvable expressions return None.
        """
        if isinstance(node, ast.Name):
            return self._aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None

    def imported_modules(self) -> set[str]:
        """Absolute dotted targets of every import in the module."""
        targets: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    targets.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = self._absolute_import_base(node)
                if base is None:
                    continue
                if base:
                    targets.add(base)
                for alias in node.names:
                    if alias.name != "*" and base:
                        targets.add(f"{base}.{alias.name}")
        return targets

    def parent(self, node: ast.AST) -> ast.AST | None:
        """Syntactic parent of ``node`` (None for the module root)."""
        return self._parents.get(id(node))

    def enclosing_scope(self, node: ast.AST) -> ast.AST:
        """Nearest enclosing function node, or the module root."""
        current = self.parent(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parent(current)
        return self.tree

    def qualname(self, node: ast.AST) -> str:
        """Dotted class/function path enclosing ``node`` (``<module>`` at top)."""
        parts: list[str] = []
        current: ast.AST | None = node
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                parts.append(current.name)
            current = self.parent(current)
        return ".".join(reversed(parts)) or "<module>"

    def in_errstate(self, node: ast.AST) -> bool:
        """True when ``node`` sits inside a ``with np.errstate(...)`` body."""
        return id(node) in self._errstate_nodes

    def module_segments(self) -> frozenset[str]:
        """Segments of the dotted module name, for package-scoped rules."""
        return frozenset(self.module_name.split("."))

    def in_packages(self, segments: tuple[str, ...] | frozenset[str]) -> bool:
        """True when any dotted-name segment matches ``segments``."""
        return bool(self.module_segments() & frozenset(segments))

    # -- guard dataflow ------------------------------------------------

    def contains_guard(self, expr: ast.AST) -> bool:
        """True when ``expr``'s subtree contains a guarding call."""
        for sub in ast.walk(expr):
            if not isinstance(sub, ast.Call):
                continue
            resolved = self.resolve(sub.func)
            if resolved in GUARD_CALLS:
                return True
            if (
                isinstance(sub.func, ast.Name)
                and sub.func.id in BUILTIN_GUARDS
                and sub.func.id not in self._aliases
            ):
                return True
        return False

    def guarded_names(self, scope: ast.AST) -> frozenset[str]:
        """Names/attribute-chains considered guarded within ``scope``.

        A token is guarded when, anywhere in the scope (flow-insensitive):

        * it is assigned from an expression containing a guard call or a
          numeric constant;
        * it appears in the test of an ``if`` whose body exits early
          (``raise``/``return``/``continue``/``break``) — the scope
          visibly rejects out-of-domain values;
        * it appears in an ``assert`` test;
        * for function scopes, it is a parameter *validated* by one of
          the above (parameters are not guarded by default).
        """
        key = id(scope)
        cached = self._guarded.get(key)
        if cached is not None:
            return cached
        tokens: set[str] = set()
        assignments: list[tuple[list[str], ast.AST]] = []
        for stmt in self._scope_statements(scope):
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                value = stmt.value
                if value is None:
                    continue
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                names = [t for t in map(_expr_token, targets) if t]
                if not names:
                    continue
                if self.contains_guard(value) or isinstance(value, ast.Constant):
                    tokens.update(names)
                else:
                    assignments.append((names, value))
            elif isinstance(stmt, ast.If) and _is_early_exit(stmt.body):
                tokens.update(self._test_tokens(stmt.test))
            elif isinstance(stmt, ast.Assert):
                tokens.update(self._test_tokens(stmt.test))
            elif isinstance(stmt, ast.While) and _is_early_exit(stmt.body):
                # ``while x < 0: ...`` style normalization loops.
                tokens.update(self._test_tokens(stmt.test))
        # Propagate guardedness through plain assignments (``step =
        # np.radians(res)`` is guarded once ``res`` is) to a fixpoint.
        changed = True
        while changed:
            changed = False
            for names, value in assignments:
                if set(names) <= tokens:
                    continue
                value_tokens = self._value_tokens(value)
                if value_tokens and all(
                    t in tokens or t.split(".")[0] in tokens for t in value_tokens
                ):
                    tokens.update(names)
                    changed = True
        result = frozenset(tokens)
        self._guarded[key] = result
        return result

    def _value_tokens(self, value: ast.AST) -> set[str]:
        """Data tokens of an expression, ignoring called-function names."""
        tokens: set[str] = set()
        stack: list[ast.AST] = [value]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Call):
                stack.extend(node.args)
                stack.extend(kw.value for kw in node.keywords)
                continue
            token = _expr_token(node)
            if token is not None:
                tokens.add(token)
                continue
            stack.extend(ast.iter_child_nodes(node))
        return tokens

    def _test_tokens(self, test: ast.AST) -> set[str]:
        tokens: set[str] = set()
        for sub in ast.walk(test):
            token = _expr_token(sub)
            if token:
                tokens.add(token)
        return tokens

    def _scope_statements(self, scope: ast.AST) -> Iterator[ast.stmt]:
        """Statements belonging to ``scope``, excluding nested functions."""
        stack: list[ast.AST] = list(getattr(scope, "body", []))
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(node, ast.stmt):
                yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.stmt, ast.excepthandler)):
                    stack.append(child)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True when ``rule_id`` is disabled on ``line`` or file-wide."""
        if "all" in self.file_disables or rule_id in self.file_disables:
            return True
        ids = self.line_disables.get(line)
        return bool(ids) and ("all" in ids or rule_id in ids)
