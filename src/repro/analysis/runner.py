"""File discovery, worker-reachability, and rule execution.

:func:`analyze_paths` is the library entry point: it discovers ``.py``
files, derives dotted module names (relative to the nearest ``src``
directory when present, else to the given root), computes the set of
modules transitively imported by the campaign-worker entry module, runs
every registered rule, and applies inline suppressions.
"""

from __future__ import annotations

import ast
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.callgraph import CallGraph
from repro.analysis.context import ModuleContext
from repro.analysis.core import Finding, all_rules

#: Module whose (transitive) imports define the worker call graph.
DEFAULT_WORKER_ENTRY = "repro.experiments._campaign_worker"

#: Long-lived service entry module: the serve scheduler loop holds jobs
#: across many clients, so the same no-mutable-module-state discipline
#: the campaign worker needs applies to everything it imports.
DEFAULT_SERVICE_ENTRY = "repro.serve.server"

#: Entry modules whose transitive imports are checked by WRK001.
DEFAULT_ENTRIES = (DEFAULT_WORKER_ENTRY, DEFAULT_SERVICE_ENTRY)


@dataclass
class Project:
    """Cross-module state shared by all rules in one analysis run.

    Attributes:
        modules: Module name -> context for every analyzed file.
        worker_entries: Dotted names of the entry modules anchoring the
            worker/service call graph (campaign worker + serve server by
            default).
        worker_reachable: Modules transitively imported from any entry
            (including the entries themselves); entries not among the
            analyzed files contribute nothing.
        callgraph: Whole-program call graph built once per run; the
            concurrency rules (``ASY``/``THR``) read entry points,
            reachability, and lock tables from it.  Its worker-kind
            entry points come from the same ``worker_entries`` tuple
            WRK001's import closure is anchored on — one registry, two
            consumers.
    """

    modules: dict[str, ModuleContext] = field(default_factory=dict)
    worker_entries: tuple[str, ...] = DEFAULT_ENTRIES
    worker_reachable: frozenset[str] = frozenset()
    callgraph: CallGraph | None = None

    def compute_reachability(self) -> None:
        """Breadth-first import closure from every present entry module."""
        seen: set[str] = set()
        frontier = [e for e in self.worker_entries if e in self.modules]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            ctx = self.modules.get(name)
            if ctx is None:
                continue
            for target in ctx.imported_modules():
                for candidate in self._module_candidates(target):
                    if candidate not in seen:
                        frontier.append(candidate)
        self.worker_reachable = frozenset(seen)

    def _module_candidates(self, target: str) -> list[str]:
        """Analyzed modules an import target may denote (incl. packages)."""
        out = []
        if target in self.modules:
            out.append(target)
        # ``import a.b.c`` also executes a and a.b (__init__ chain).
        parts = target.split(".")
        for i in range(1, len(parts)):
            prefix = ".".join(parts[:i])
            if prefix in self.modules:
                out.append(prefix)
        return out


@dataclass
class AnalysisResult:
    """Outcome of one analysis run.

    Attributes:
        findings: Active (unsuppressed) findings, sorted by location.
        suppressed: Findings silenced by inline directives.
        files_scanned: Number of files analyzed.
        errors: Per-file read/parse failures as ``(path, message)``.
        project: The run's project state (modules, reachability, call
            graph) for callers that need more than the findings —
            ``--callgraph-dump`` and the call-graph tests.
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    errors: list[tuple[str, str]] = field(default_factory=list)
    project: Project | None = None


def discover_files(paths: Sequence[str | Path]) -> list[tuple[Path, Path]]:
    """Expand files/directories into ``(file, root)`` pairs.

    The root is the argument the file was found under; module names are
    derived relative to it (or to an intermediate ``src`` directory).
    """
    out: list[tuple[Path, Path]] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                out.append((f, p))
        elif p.suffix == ".py":
            out.append((p, p.parent))
    return out


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module name for ``path`` relative to ``root``.

    When a ``src`` directory appears anywhere on the file's (resolved)
    path, names are relative to it, so ``src/repro/physics/compton.py``
    becomes ``repro.physics.compton`` even when the lint root is a
    single file or a subdirectory below ``src``.
    """
    resolved = path.resolve()
    try:
        rel = resolved.relative_to(root.resolve())
    except ValueError:
        rel = Path(path.name)
    parts = list(rel.with_suffix("").parts)
    full = list(resolved.with_suffix("").parts)
    if "src" in full:
        anchor = len(full) - 1 - full[::-1].index("src")
        parts = full[anchor + 1 :]
    elif "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts:
        parts = [root.resolve().name]
    return ".".join(parts)


def analyze_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    disable: Iterable[str] | None = None,
    worker_entry: str = DEFAULT_WORKER_ENTRY,
    service_entry: str | None = DEFAULT_SERVICE_ENTRY,
    entry_points: Sequence[str] = (),
) -> AnalysisResult:
    """Run every registered rule over the python files under ``paths``.

    Args:
        paths: Files and/or directories to lint.
        select: When given, only these rule ids run.
        disable: Rule ids excluded from the run.
        worker_entry: Module anchoring the worker-reachability graph
            (rule WRK001).
        service_entry: Additional long-lived-service entry module whose
            import closure joins the same graph; None disables it.
        entry_points: Extra concurrent roots for the call graph.  A
            dotted name matching an analyzed *module* joins
            ``worker_entries`` (extending both WRK001's import closure
            and the worker entry registry together); a dotted *function*
            qualname becomes a custom entry the THR origins analysis
            counts as its own concurrent context.

    Returns:
        An :class:`AnalysisResult` with active and suppressed findings.
    """
    rules = all_rules()
    if select:
        wanted = set(select)
        rules = [r for r in rules if r.rule_id in wanted]
    if disable:
        dropped = set(disable)
        rules = [r for r in rules if r.rule_id not in dropped]

    entries = (worker_entry,) if service_entry is None else (
        worker_entry, service_entry
    )
    result = AnalysisResult()
    project = Project(worker_entries=entries)
    result.project = project
    cwd = Path.cwd()
    for path, root in discover_files(paths):
        try:
            resolved = path.resolve()
            try:
                display = str(resolved.relative_to(cwd))
            except ValueError:
                display = str(path)
            ctx = ModuleContext.from_path(
                path,
                module_name_for(path, root),
                display_path=display,
                project=project,
            )
        except (SyntaxError, OSError, UnicodeDecodeError) as exc:
            result.errors.append((str(path), str(exc)))
            continue
        project.modules[ctx.module_name] = ctx
    module_entries = tuple(e for e in entry_points if e in project.modules)
    if module_entries:
        project.worker_entries = tuple(
            dict.fromkeys(project.worker_entries + module_entries)
        )
    project.compute_reachability()
    function_entries = tuple(
        e for e in entry_points if e not in project.modules
    )
    project.callgraph = CallGraph.build(
        project, extra_entry_points=function_entries
    )
    result.files_scanned = len(project.modules)

    for name in sorted(project.modules):
        ctx = project.modules[name]
        for rule in rules:
            for finding in rule.check(ctx):
                if ctx.is_suppressed(finding.rule_id, finding.line):
                    result.suppressed.append(finding)
                else:
                    result.findings.append(finding)
    result.findings.sort()
    result.suppressed.sort()
    return result


def _git(args: Sequence[str]) -> str | None:
    """stdout of a git command, or None when git/refs are unavailable."""
    try:
        proc = subprocess.run(
            ["git", *args],
            capture_output=True,
            text=True,
            timeout=30,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout


def changed_py_files(base: str = "main") -> set[Path] | None:
    """Python files differing from ``git merge-base HEAD <base>``.

    Returns resolved paths of tracked files changed since the merge
    base plus untracked ``.py`` files, or None when the working
    directory is not a git checkout or the base ref does not exist —
    callers fall back to a full run.  Incremental lint still analyzes
    the *whole* project (the call graph is a whole-program artifact);
    only the reported findings are filtered to these files.
    """
    top = _git(["rev-parse", "--show-toplevel"])
    if top is None:
        return None
    root = Path(top.strip())
    merge_base = None
    for ref in (base, f"origin/{base}"):
        out = _git(["merge-base", "HEAD", ref])
        if out is not None:
            merge_base = out.strip()
            break
    if merge_base is None:
        return None
    changed: set[Path] = set()
    diff = _git(["diff", "--name-only", merge_base, "--", "*.py"])
    untracked = _git(
        ["ls-files", "--others", "--exclude-standard", "--", "*.py"]
    )
    for listing in (diff, untracked):
        if listing is None:
            continue
        for line in listing.splitlines():
            line = line.strip()
            if line:
                changed.add((root / line).resolve())
    return changed


def filter_to_changed(
    result: AnalysisResult, changed: set[Path]
) -> AnalysisResult:
    """Project an analysis result onto a changed-file set.

    Keeps only findings (active and suppressed) whose path resolves
    into ``changed``; counts and errors are preserved so the report
    still states how many files the whole-program analysis covered.
    """
    def keep(finding: Finding) -> bool:
        return Path(finding.path).resolve() in changed

    return AnalysisResult(
        findings=[f for f in result.findings if keep(f)],
        suppressed=[f for f in result.suppressed if keep(f)],
        files_scanned=result.files_scanned,
        errors=result.errors,
        project=result.project,
    )
