"""reprolint — AST-based static analysis enforcing the repo's invariants.

The reproduction's headline guarantees (bit-identical serial/parallel
campaigns, NaN-free Compton kinematics, INT8 accumulator discipline,
worker-safe shared state) are invariants of *how* the code is written,
not just what it computes.  This package makes them machine-checked:

* :mod:`repro.analysis.core` — rule framework (``Rule``, ``Finding``,
  severity, registry);
* :mod:`repro.analysis.context` — per-module AST context: alias
  resolution, guard dataflow, suppression comments;
* :mod:`repro.analysis.rules` — the shipped rule set (determinism,
  rng-threading, numerical safety, worker safety, dtype discipline);
* :mod:`repro.analysis.runner` — file discovery, worker-reachability
  graph, rule execution;
* :mod:`repro.analysis.baseline` — grandfathered-finding baselines;
* :mod:`repro.analysis.report` — text and JSON reporters;
* :mod:`repro.analysis.cli` — ``python -m repro.analysis`` /
  ``repro-lint`` entry point.

Run ``python -m repro.analysis src/`` to lint the library, or see
``docs/static_analysis.md`` for the rule catalogue and the
suppression/baseline workflow.
"""

from repro.analysis.core import Finding, Rule, Severity, all_rules
from repro.analysis.runner import AnalysisResult, analyze_paths

__all__ = [
    "AnalysisResult",
    "Finding",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_paths",
]
