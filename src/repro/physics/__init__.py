"""Photon-interaction physics and Monte-Carlo transport.

This package is the repository's substitute for the Geant4 simulations the
paper relies on: Klein--Nishina Compton scattering, photoelectric
absorption, and (crude) pair production, transported through the layered
ADAPT geometry.  See DESIGN.md for the substitution rationale.
"""

from repro.physics.compton import (
    cos_theta_from_energies,
    klein_nishina_differential,
    rotate_directions,
    sample_klein_nishina,
    scattered_energy,
)
from repro.physics.crosssections import (
    compton_mu,
    interaction_probabilities,
    klein_nishina_total,
    pair_mu,
    photoelectric_mu,
    total_mu,
)
from repro.physics.spectra import (
    BandSpectrum,
    PowerLawSpectrum,
    Spectrum,
)
from repro.physics.transport import TransportResult, transport_photons

__all__ = [
    "klein_nishina_differential",
    "sample_klein_nishina",
    "scattered_energy",
    "cos_theta_from_energies",
    "rotate_directions",
    "klein_nishina_total",
    "compton_mu",
    "photoelectric_mu",
    "pair_mu",
    "total_mu",
    "interaction_probabilities",
    "Spectrum",
    "BandSpectrum",
    "PowerLawSpectrum",
    "TransportResult",
    "transport_photons",
]
