"""Compton-scattering kinematics and Klein--Nishina angle sampling.

Conventions: energies in MeV; ``cos_theta`` is the cosine of the photon
scattering angle; directions are unit 3-vectors.  All functions are
vectorized over photons.
"""

from __future__ import annotations

import numpy as np

from repro.constants import ELECTRON_MASS_MEV

_ME = ELECTRON_MASS_MEV


def scattered_energy(energy: np.ndarray, cos_theta: np.ndarray) -> np.ndarray:
    """Photon energy after Compton scattering.

    ``E' = E / (1 + (E / m_e c^2) (1 - cos theta))``

    Args:
        energy: Incident photon energies, MeV.
        cos_theta: Cosine of the scattering angle.

    Returns:
        Scattered photon energies, MeV.
    """
    energy = np.asarray(energy, dtype=np.float64)
    cos_theta = np.asarray(cos_theta, dtype=np.float64)
    return energy / (1.0 + (energy / _ME) * (1.0 - cos_theta))


def cos_theta_from_energies(
    total_energy: np.ndarray, deposited_first: np.ndarray
) -> np.ndarray:
    """Scattering-angle cosine from measured energies (the Compton formula).

    Given the photon's total energy ``E`` and the energy ``E1`` it deposited
    in its *first* interaction, the scattered energy is ``E' = E - E1`` and

    ``cos theta = 1 - m_e c^2 (1/E' - 1/E)``.

    This is the quantity the paper calls ``eta``.  Values may fall outside
    [-1, 1] when the energies are mismeasured; callers decide whether to
    clip or reject such rings.

    Args:
        total_energy: ``E``, MeV.
        deposited_first: ``E1``, MeV.

    Returns:
        ``eta = cos theta`` (unclipped).
    """
    total_energy = np.asarray(total_energy, dtype=np.float64)
    deposited_first = np.asarray(deposited_first, dtype=np.float64)
    scattered = total_energy - deposited_first
    with np.errstate(divide="ignore", invalid="ignore"):
        eta = 1.0 - _ME * (1.0 / scattered - 1.0 / total_energy)
    return eta


def klein_nishina_differential(
    energy: np.ndarray, cos_theta: np.ndarray
) -> np.ndarray:
    """Unnormalized Klein--Nishina differential cross section d(sigma)/d(Omega).

    Proportional to ``(E'/E)^2 (E'/E + E/E' - sin^2 theta)``; the common
    ``r_e^2 / 2`` prefactor is omitted since samplers and tests only need
    relative values.
    """
    energy = np.asarray(energy, dtype=np.float64)
    cos_theta = np.asarray(cos_theta, dtype=np.float64)
    ratio = scattered_energy(energy, cos_theta) / energy  # reprolint: disable=NUM002 -- photon energy > 0 MeV is a documented precondition
    sin2 = 1.0 - cos_theta**2
    return ratio**2 * (ratio + 1.0 / ratio - sin2)  # reprolint: disable=NUM002 -- ratio = E'/E in (0, 1] for E > 0


def sample_klein_nishina(
    energy: np.ndarray, rng: np.random.Generator, max_rounds: int = 256
) -> np.ndarray:
    """Sample Compton scattering-angle cosines from the Klein--Nishina law.

    Vectorized implementation of Kahn's composition--rejection method
    (Kahn 1954), which remains >= ~50% efficient at every energy -- a
    uniform-in-``cos theta`` proposal degrades badly for forward-peaked
    high-energy photons.

    With ``alpha = E / m_e c^2`` and ``eta = E / E'`` in ``[1, 1 + 2 alpha]``:

    * branch 1 (probability ``(1+2a)/(9+2a)``): propose ``eta = 1 + 2 a u``,
      accept with probability ``4 (1/eta - 1/eta^2)``;
    * branch 2: propose ``eta = (1+2a)/(1+2au)``, accept with probability
      ``(cos^2 theta + 1/eta)/2`` where ``cos theta = 1 - (eta-1)/a``.

    Args:
        energy: Incident photon energies, MeV. Shape ``(n,)``.
        rng: NumPy random generator.
        max_rounds: Safety bound on rejection rounds.

    Returns:
        ``(n,)`` array of sampled ``cos theta``.

    Raises:
        RuntimeError: If sampling fails to converge (cannot happen for
            positive finite energies within ``max_rounds`` in practice).
    """
    energy = np.atleast_1d(np.asarray(energy, dtype=np.float64))
    n = energy.shape[0]
    out = np.empty(n, dtype=np.float64)
    pending = np.arange(n)
    alpha_all = energy / _ME
    for _ in range(max_rounds):
        if pending.size == 0:
            return out
        m = pending.size
        a = alpha_all[pending]
        r1 = rng.uniform(size=m)
        r2 = rng.uniform(size=m)
        r3 = rng.uniform(size=m)
        branch1 = r1 <= (1.0 + 2.0 * a) / (9.0 + 2.0 * a)
        eta = np.where(branch1, 1.0 + 2.0 * a * r2, (1.0 + 2.0 * a) / (1.0 + 2.0 * a * r2))
        cos_t = 1.0 - (eta - 1.0) / a  # reprolint: disable=NUM002 -- alpha = E/m_e > 0 for physical photons
        accept_p = np.where(
            branch1,
            4.0 * (1.0 / eta - 1.0 / eta**2),  # reprolint: disable=NUM002 -- eta in [1, 1+2*alpha] by construction
            0.5 * (cos_t**2 + 1.0 / eta),  # reprolint: disable=NUM002 -- eta in [1, 1+2*alpha] by construction
        )
        accept = r3 <= accept_p
        out[pending[accept]] = cos_t[accept]
        pending = pending[~accept]
    raise RuntimeError("Klein-Nishina rejection sampling did not converge")


def rotate_directions(
    directions: np.ndarray,
    cos_theta: np.ndarray,
    phi: np.ndarray,
) -> np.ndarray:
    """Rotate unit vectors by polar angle theta and azimuth phi about themselves.

    Builds an orthonormal frame ``(u, v, d)`` around each direction ``d`` and
    returns ``sin(theta) (cos(phi) u + sin(phi) v) + cos(theta) d`` — the
    standard scattering rotation.

    Args:
        directions: ``(n, 3)`` unit direction vectors.
        cos_theta: ``(n,)`` scattering-angle cosines.
        phi: ``(n,)`` azimuthal angles, radians.

    Returns:
        ``(n, 3)`` rotated unit vectors.
    """
    d = np.atleast_2d(np.asarray(directions, dtype=np.float64))
    cos_theta = np.asarray(cos_theta, dtype=np.float64)
    phi = np.asarray(phi, dtype=np.float64)

    # Pick a helper axis not parallel to d: use z unless d is nearly +-z.
    helper = np.zeros_like(d)
    near_z = np.abs(d[:, 2]) > 0.999
    helper[near_z, 0] = 1.0
    helper[~near_z, 2] = 1.0

    u = np.cross(helper, d)
    u /= np.linalg.norm(u, axis=1, keepdims=True)
    v = np.cross(d, u)

    sin_theta = np.sqrt(np.clip(1.0 - cos_theta**2, 0.0, 1.0))
    out = (
        sin_theta[:, None] * (np.cos(phi)[:, None] * u + np.sin(phi)[:, None] * v)
        + cos_theta[:, None] * d
    )
    # Guard against accumulated roundoff.
    out /= np.linalg.norm(out, axis=1, keepdims=True)
    return out
