"""Photon energy spectra: the GRB Band function and power laws.

Samplers draw photon energies over a bounded range using inverse-CDF lookup
on a log-spaced grid (exact for the power law, numerically exact to grid
resolution for the Band function).  Energies are in MeV throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import BAND_BETA, MIN_PHOTON_ENERGY_MEV


class Spectrum:
    """Base class for photon-number spectra N(E) (photons / MeV, unnormalized)."""

    e_min: float
    e_max: float

    def pdf_unnormalized(self, energy: np.ndarray) -> np.ndarray:
        """Relative photon-number density at the given energies."""
        raise NotImplementedError

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` photon energies from the spectrum.

        Default implementation: inverse CDF on a log-spaced grid.
        """
        grid = np.geomspace(self.e_min, self.e_max, 4096)
        pdf = self.pdf_unnormalized(grid)
        # Trapezoidal CDF on the grid.
        dcdf = 0.5 * (pdf[1:] + pdf[:-1]) * np.diff(grid)
        cdf = np.concatenate([[0.0], np.cumsum(dcdf)])
        cdf /= cdf[-1]
        u = rng.uniform(0.0, 1.0, size=n)
        return np.interp(u, cdf, grid)

    def mean_energy(self) -> float:
        """Mean photon energy <E> of the spectrum, MeV."""
        grid = np.geomspace(self.e_min, self.e_max, 8192)
        pdf = self.pdf_unnormalized(grid)
        norm = max(np.trapezoid(pdf, grid), np.finfo(np.float64).tiny)
        return float(np.trapezoid(grid * pdf, grid) / norm)


@dataclass
class PowerLawSpectrum(Spectrum):
    """``N(E) ~ E^index`` between ``e_min`` and ``e_max``.

    The default index of -2.0 approximates the diffuse atmospheric MeV
    gamma-ray background at balloon altitudes.
    """

    index: float = -2.0
    e_min: float = MIN_PHOTON_ENERGY_MEV
    e_max: float = 30.0

    def __post_init__(self) -> None:
        if not (0 < self.e_min < self.e_max):
            raise ValueError("require 0 < e_min < e_max")

    def pdf_unnormalized(self, energy: np.ndarray) -> np.ndarray:
        energy = np.asarray(energy, dtype=np.float64)
        return np.power(energy, self.index)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Exact inverse-CDF sampling for the power law."""
        u = rng.uniform(0.0, 1.0, size=n)
        g = self.index + 1.0
        if abs(g) < 1e-12:
            # N(E) ~ 1/E: log-uniform.
            return self.e_min * np.exp(u * np.log(self.e_max / self.e_min))  # reprolint: disable=NUM001,NUM002 -- __post_init__ enforces 0 < e_min < e_max
        lo = self.e_min**g
        hi = self.e_max**g
        return np.power(lo + u * (hi - lo), 1.0 / g)


@dataclass
class BandSpectrum(Spectrum):
    """The Band GRB spectral function.

    ``N(E) ~ E^alpha exp(-E/E0)`` below the break and ``~ E^beta`` above,
    joined smoothly at ``E_break = (alpha - beta) E0``.  The paper fixes
    ``beta = -2.35`` (Section IV footnote) and simulates down to 30 keV.

    Attributes:
        alpha: Low-energy photon index (typical short-GRB value -0.5).
        beta: High-energy photon index.
        e_peak: ``nu F_nu`` peak energy, MeV; ``E0 = e_peak / (2 + alpha)``.
        e_min: Minimum sampled energy, MeV.
        e_max: Maximum sampled energy, MeV.
    """

    alpha: float = -0.5
    beta: float = BAND_BETA
    e_peak: float = 0.5
    e_min: float = MIN_PHOTON_ENERGY_MEV
    e_max: float = 30.0
    _e0: float = field(init=False, repr=False)
    _e_break: float = field(init=False, repr=False)
    _join: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.alpha <= self.beta:
            raise ValueError("Band function requires alpha > beta")
        if self.e_peak <= 0 or self.alpha <= -2.0:
            raise ValueError("require e_peak > 0 and alpha > -2")
        if not (0 < self.e_min < self.e_max):
            raise ValueError("require 0 < e_min < e_max")
        self._e0 = self.e_peak / (2.0 + self.alpha)
        self._e_break = (self.alpha - self.beta) * self._e0
        # Continuity constant for the high-energy branch.
        self._join = (
            self._e_break ** (self.alpha - self.beta)
            * np.exp(self.beta - self.alpha)
        )

    def pdf_unnormalized(self, energy: np.ndarray) -> np.ndarray:
        energy = np.asarray(energy, dtype=np.float64)
        low = np.power(energy, self.alpha) * np.exp(-energy / self._e0)  # reprolint: disable=NUM002 -- _e0 > 0: __post_init__ enforces e_peak > 0, alpha > -2
        high = self._join * np.power(energy, self.beta)
        return np.where(energy < self._e_break, low, high)
