"""Vectorized Monte-Carlo photon transport through the layered detector.

This is the heart of the Geant4 substitute: batches of photons are stepped
through the slab stack simultaneously; at each step every live photon
samples an exponential optical depth, walks the geometric layer
intersections to convert it into an interaction point (or escapes), chooses
an interaction channel from the cross-section ratios, and either deposits
energy and dies (photoelectric / pair, treated as local absorption) or
Compton-scatters into a new direction and energy.

Per the hpc-parallel guides, the inner loop is over *interaction
generations* (a handful), never over photons; all per-photon work is NumPy
array arithmetic on structure-of-arrays state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import Material, CSI
from repro.geometry.tiles import DetectorGeometry
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.physics.compton import (
    rotate_directions,
    sample_klein_nishina,
    scattered_energy,
)
from repro.physics.crosssections import interaction_probabilities, total_mu

#: Scattered photons below this energy are absorbed on the spot (their
#: residual range is sub-millimeter in CsI), MeV.
ABSORB_CUTOFF_MEV: float = 0.015

#: Fate codes recorded per photon.
FATE_NO_INTERACTION = 0  #: passed through without touching scintillator
FATE_ESCAPED = 1  #: interacted >=1 time, then left the detector
FATE_ABSORBED = 2  #: full energy chain terminated inside the detector
FATE_MAX_GENERATIONS = 3  #: still alive when the generation cap was reached


@dataclass
class TransportResult:
    """Structure-of-arrays record of all interactions ("hits") of a batch.

    Hits are stored flat and tagged with the photon index they belong to;
    within one photon, ``order`` counts interactions from 0 (the first
    scatter).  Per-photon summary arrays have length ``num_photons``.

    Attributes:
        photon_index: ``(k,)`` index of the owning photon for each hit.
        order: ``(k,)`` interaction order within the photon, from 0.
        positions: ``(k, 3)`` true interaction positions, cm.
        energies: ``(k,)`` true deposited energies, MeV.
        num_interactions: ``(n,)`` hits per photon.
        fate: ``(n,)`` FATE_* code per photon.
        escaped_energy: ``(n,)`` energy carried away by escaping photons, MeV.
    """

    photon_index: np.ndarray
    order: np.ndarray
    positions: np.ndarray
    energies: np.ndarray
    num_interactions: np.ndarray
    fate: np.ndarray
    escaped_energy: np.ndarray

    @property
    def num_hits(self) -> int:
        return int(self.photon_index.shape[0])

    @property
    def num_photons(self) -> int:
        return int(self.num_interactions.shape[0])

    def hits_of(self, photon: int) -> np.ndarray:
        """Indices of this photon's hits, sorted by interaction order."""
        idx = np.nonzero(self.photon_index == photon)[0]
        return idx[np.argsort(self.order[idx], kind="stable")]


def _material_path_to_geometric(
    t_in: np.ndarray,
    t_out: np.ndarray,
    required_path: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Convert a required material path length into a geometric distance.

    Walks each ray's (possibly unordered) slab-intersection intervals in
    order of increasing entry distance, accumulating material path until
    ``required_path`` is consumed.

    Args:
        t_in: ``(m, L)`` slab entry distances (may be negative/inf).
        t_out: ``(m, L)`` slab exit distances.
        required_path: ``(m,)`` material path to consume, cm.

    Returns:
        Tuple ``(t_star, escaped)`` — the geometric distance of the
        interaction point (undefined where ``escaped``), and a boolean mask
        of rays whose total remaining material path is insufficient.
    """
    # Clip intervals to the forward half-line.  A tiny epsilon keeps a photon
    # sitting exactly on the face it just interacted at from re-counting
    # zero-length path.
    eps = 1e-12
    start = np.maximum(t_in, eps)
    end = np.maximum(t_out, eps)
    lengths = np.maximum(end - start, 0.0)

    order = np.argsort(start, axis=1)
    start_sorted = np.take_along_axis(start, order, axis=1)
    len_sorted = np.take_along_axis(lengths, order, axis=1)
    cum = np.cumsum(len_sorted, axis=1)

    total = cum[:, -1]
    escaped = required_path >= total

    # Index of the slab interval in which the required path is consumed.
    idx = np.sum(cum < required_path[:, None], axis=1)
    idx_safe = np.minimum(idx, cum.shape[1] - 1)
    rows = np.arange(cum.shape[0])
    prev = np.where(idx_safe > 0, cum[rows, idx_safe - 1], 0.0)
    t_star = start_sorted[rows, idx_safe] + (required_path - prev)
    return t_star, escaped


@obs_trace.traced("physics.transport")
def transport_photons(
    geometry: DetectorGeometry,
    origins: np.ndarray,
    directions: np.ndarray,
    energies: np.ndarray,
    rng: np.random.Generator,
    material: Material = CSI,
    max_generations: int = 12,
    absorb_cutoff_mev: float = ABSORB_CUTOFF_MEV,
) -> TransportResult:
    """Transport a batch of photons through the detector.

    Args:
        geometry: Slab-stack detector geometry.
        origins: ``(n, 3)`` photon start positions, cm (typically on or
            above the top face, or on a lateral entry plane).
        directions: ``(n, 3)`` unit travel directions.
        energies: ``(n,)`` photon energies, MeV.
        rng: NumPy random generator (use spawned children for parallelism).
        material: Scintillator material (all layers share it).
        max_generations: Cap on interactions per photon.
        absorb_cutoff_mev: Scattered photons below this energy are locally
            absorbed.

    Returns:
        A :class:`TransportResult` with every interaction and per-photon fate.
    """
    origins = np.atleast_2d(np.asarray(origins, dtype=np.float64)).copy()
    directions = np.atleast_2d(np.asarray(directions, dtype=np.float64)).copy()
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    if np.any(norms == 0):
        raise ValueError("zero-length direction vector")
    directions /= norms
    energies = np.atleast_1d(np.asarray(energies, dtype=np.float64)).copy()
    n = origins.shape[0]
    if directions.shape[0] != n or energies.shape[0] != n:
        raise ValueError("origins, directions, energies must have equal length")
    if np.any(energies <= 0):
        raise ValueError("photon energies must be positive")
    obs_metrics.inc("transport.photons", n)

    alive = np.ones(n, dtype=bool)
    num_interactions = np.zeros(n, dtype=np.int64)
    fate = np.full(n, FATE_NO_INTERACTION, dtype=np.int64)
    escaped_energy = np.zeros(n, dtype=np.float64)

    hit_photon: list[np.ndarray] = []
    hit_order: list[np.ndarray] = []
    hit_pos: list[np.ndarray] = []
    hit_edep: list[np.ndarray] = []

    for _generation in range(max_generations):
        live_idx = np.nonzero(alive)[0]
        if live_idx.size == 0:
            break
        pos = origins[live_idx]
        dirs = directions[live_idx]
        e = energies[live_idx]

        t_in, t_out = geometry.segment_intersections(pos, dirs)
        # total_mu > 0 at every energy (Compton never vanishes); the
        # floor only shields degenerate test materials from 0-division.
        mu = np.maximum(total_mu(e, material), np.finfo(np.float64).tiny)
        required = rng.exponential(1.0, size=live_idx.size) / mu
        t_star, escaped = _material_path_to_geometric(t_in, t_out, required)

        esc_idx = live_idx[escaped]
        if esc_idx.size:
            alive[esc_idx] = False
            escaped_energy[esc_idx] = energies[esc_idx]
            fate[esc_idx] = np.where(
                num_interactions[esc_idx] > 0, FATE_ESCAPED, FATE_NO_INTERACTION
            )

        act = ~escaped
        act_idx = live_idx[act]
        if act_idx.size == 0:
            continue
        new_pos = pos[act] + t_star[act, None] * dirs[act]
        origins[act_idx] = new_pos
        e_act = e[act]

        p_c, p_pe, _p_pp = interaction_probabilities(e_act, material)
        u = rng.uniform(0.0, 1.0, size=act_idx.size)
        is_compton = u < p_c
        # Photoelectric and pair both terminate with full local deposition.

        edep = np.empty(act_idx.size, dtype=np.float64)
        edep[~is_compton] = e_act[~is_compton]

        if np.any(is_compton):
            ci = np.nonzero(is_compton)[0]
            cos_t = sample_klein_nishina(e_act[ci], rng)
            e_sc = scattered_energy(e_act[ci], cos_t)
            dep = e_act[ci] - e_sc
            low = e_sc < absorb_cutoff_mev
            # Locally absorb sub-cutoff scattered photons: deposit everything.
            dep = np.where(low, e_act[ci], dep)
            edep[ci] = dep
            phi = rng.uniform(0.0, 2.0 * np.pi, size=ci.size)
            new_dirs = rotate_directions(dirs[act][ci], cos_t, phi)
            surv = ~low
            surv_global = act_idx[ci[surv]]
            directions[surv_global] = new_dirs[surv]
            energies[surv_global] = e_sc[surv]
            dead_global = act_idx[ci[low]]
            alive[dead_global] = False
            fate[dead_global] = FATE_ABSORBED
        term_global = act_idx[~is_compton]
        alive[term_global] = False
        fate[term_global] = FATE_ABSORBED

        hit_photon.append(act_idx)
        hit_order.append(num_interactions[act_idx].copy())
        hit_pos.append(new_pos)
        hit_edep.append(edep)
        num_interactions[act_idx] += 1

    still = np.nonzero(alive)[0]
    if still.size:
        fate[still] = FATE_MAX_GENERATIONS
        escaped_energy[still] = energies[still]

    if hit_photon:
        photon_index = np.concatenate(hit_photon)
        order = np.concatenate(hit_order)
        positions = np.concatenate(hit_pos, axis=0)
        edeps = np.concatenate(hit_edep)
    else:
        photon_index = np.empty(0, dtype=np.int64)
        order = np.empty(0, dtype=np.int64)
        positions = np.empty((0, 3), dtype=np.float64)
        edeps = np.empty(0, dtype=np.float64)

    return TransportResult(
        photon_index=photon_index,
        order=order,
        positions=positions,
        energies=edeps,
        num_interactions=num_interactions,
        fate=fate,
        escaped_energy=escaped_energy,
    )
