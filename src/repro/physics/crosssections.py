"""Photon interaction cross sections / linear attenuation coefficients.

Three channels matter in ADAPT's 0.03--30 MeV band:

* **Compton scattering** — exact total Klein--Nishina cross section per
  electron, scaled by the material's electron density.
* **Photoelectric absorption** — power-law parameterization
  ``mu_pe = rho * pe_coeff * E^-pe_index`` (dominant below ~0.3 MeV in CsI).
* **Pair production** — logarithmic ramp above the 2 m_e threshold; treated
  as full local absorption by the transport code (a deliberate
  simplification documented in DESIGN.md: the e+/e- pair ranges out within
  a tile at these energies and escaping 511 keV annihilation photons are
  neglected).

All ``mu`` functions return linear attenuation coefficients in 1/cm and are
vectorized over energy.
"""

from __future__ import annotations

import numpy as np

from repro.constants import (
    CLASSICAL_ELECTRON_RADIUS_CM,
    ELECTRON_MASS_MEV,
    Material,
)

_ME = ELECTRON_MASS_MEV
#: Pair-production threshold, MeV.
PAIR_THRESHOLD_MEV: float = 2.0 * _ME

#: Empirical pair-production scale for the logarithmic ramp, cm^2/g per
#: unit Z_eff^2/A_eff.  Chosen so CsI's pair mu/rho reaches ~0.02 cm^2/g at
#: 10 MeV, matching NIST XCOM within a factor ~1.5 across 2-30 MeV.
_PAIR_COEFF: float = 9.2e-4

#: Floor on the reduced energy ``k = E / m_e c^2``.  A no-op for any
#: physical photon (k ~ 2e-7 already at 0.1 keV); keeps the closed-form
#: Klein--Nishina expression finite if a zero-energy row sneaks in.
_K_FLOOR: float = 1e-30


def klein_nishina_total(energy: np.ndarray) -> np.ndarray:
    """Total Klein--Nishina cross section per electron, cm^2.

    Standard closed form in terms of ``k = E / m_e c^2``:

    ``sigma = 2 pi r_e^2 [ (1+k)/k^2 (2(1+k)/(1+2k) - ln(1+2k)/k)
    + ln(1+2k)/(2k) - (1+3k)/(1+2k)^2 ]``
    """
    energy = np.asarray(energy, dtype=np.float64)
    k = np.maximum(energy / _ME, _K_FLOOR)
    one_2k = 1.0 + 2.0 * k
    log_term = np.log1p(2.0 * k)
    sigma = (
        2.0
        * np.pi
        * CLASSICAL_ELECTRON_RADIUS_CM**2
        * (
            (1.0 + k) / k**2 * (2.0 * (1.0 + k) / one_2k - log_term / k)
            + log_term / (2.0 * k)
            - (1.0 + 3.0 * k) / one_2k**2
        )
    )
    return sigma


def compton_mu(energy: np.ndarray, material: Material) -> np.ndarray:
    """Compton linear attenuation coefficient, 1/cm."""
    return klein_nishina_total(energy) * material.electron_density_cm3


def photoelectric_mu(energy: np.ndarray, material: Material) -> np.ndarray:
    """Photoelectric linear attenuation coefficient, 1/cm.

    ``mu = rho * pe_coeff * E^-pe_index`` with E in MeV.
    """
    energy = np.asarray(energy, dtype=np.float64)
    return (
        material.density_g_cm3
        * material.pe_coeff
        * np.power(energy, -material.pe_index)
    )


def pair_mu(energy: np.ndarray, material: Material) -> np.ndarray:
    """Pair-production linear attenuation coefficient, 1/cm.

    Zero below threshold; ``rho * C * Z^2/A * ln(E / threshold)`` above.
    """
    energy = np.asarray(energy, dtype=np.float64)
    ramp = np.where(
        energy > PAIR_THRESHOLD_MEV,
        np.log(np.maximum(energy, PAIR_THRESHOLD_MEV) / PAIR_THRESHOLD_MEV),
        0.0,
    )
    return (
        material.density_g_cm3
        * _PAIR_COEFF
        * (material.z_eff**2 / material.a_eff)  # reprolint: disable=NUM002 -- Material.a_eff is a positive tabulated constant
        * ramp
    )


def total_mu(energy: np.ndarray, material: Material) -> np.ndarray:
    """Total linear attenuation coefficient (all channels), 1/cm."""
    return (
        compton_mu(energy, material)
        + photoelectric_mu(energy, material)
        + pair_mu(energy, material)
    )


def interaction_probabilities(
    energy: np.ndarray, material: Material
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-channel interaction probabilities at an interaction site.

    Returns:
        Tuple ``(p_compton, p_photoelectric, p_pair)``; each ``(n,)`` and
        summing to 1 elementwise.
    """
    mu_c = compton_mu(energy, material)
    mu_pe = photoelectric_mu(energy, material)
    mu_pp = pair_mu(energy, material)
    # mu_c > 0 at every energy, so the floor is a no-op for physical
    # photons; it only shields a hand-crafted all-zero row from 0/0.
    total = np.maximum(mu_c + mu_pe + mu_pp, np.finfo(np.float64).tiny)
    return mu_c / total, mu_pe / total, mu_pp / total
