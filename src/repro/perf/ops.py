"""Registered microbenchmarks for every inference kernel.

One entry per hot kernel, at the paper's workload shape: the
first-background-iteration ring block (597 rows — see
``fpga.PAPER_NUM_RINGS``) pushed through the widest background-net
stage (13 -> 256).  Importing this module populates the registry in
:mod:`repro.perf.registry`; ``repro.perf`` does so on import.

Workloads are built deterministically (fixed seeds) inside each
``build`` factory, so registering is free and nothing heavy happens
until a runner asks for numbers.
"""

from __future__ import annotations

import numpy as np

from repro.perf.registry import register

#: Paper block regime: rings in the first background iteration.
BLOCK_ROWS = 597
#: Widest background-net stage (input features -> first hidden layer).
IN_WIDTH = 13
OUT_WIDTH = 256


def _rng(seed: int) -> np.random.Generator:
    """Benchmark-workload generator.

    Fixed seeds are the point here: every run must time *identical*
    work, and these draws are benchmark fixtures, never campaign
    physics, so the campaign SeedSequence rule does not apply.
    """
    return np.random.default_rng(seed)  # reprolint: disable=RNG001 -- benchmark fixture; identical workload every run is the requirement


def _linear_op(dtype):
    from repro.infer.plan import LinearOp

    rng = _rng(11)
    return LinearOp(
        weight=rng.normal(size=(IN_WIDTH, OUT_WIDTH)).astype(dtype),
        bias=rng.normal(size=OUT_WIDTH).astype(dtype),
        activation="relu",
    )


def _quantized_layer():
    """A paper-shaped per-channel ``QuantizedLinear`` (13 -> 256)."""
    from repro.quantization.int8 import QuantizedLinear

    rng = _rng(13)
    w = rng.normal(size=(IN_WIDTH, OUT_WIDTH))
    return QuantizedLinear.from_float(
        weight=w,
        bias=rng.normal(size=OUT_WIDTH),
        weight_scale=np.maximum(np.abs(w).max(axis=0), 1e-12) / 127.0,
        in_scale=0.05,
        in_zero_point=128,
        out_scale=0.1,
        out_zero_point=128,
        relu=True,
    )


def _quantized_input(rows: int = BLOCK_ROWS):
    from repro.quantization.fake_quant import UINT8_MAX, UINT8_MIN, quantize

    rng = _rng(17)
    x = rng.normal(size=(rows, IN_WIDTH))
    return quantize(x, 0.05, 128, UINT8_MIN, UINT8_MAX)


@register("linear_f32_block597", op="LinearOp")
def _bench_linear_f32():
    op = _linear_op(np.float32)
    x = _rng(3).normal(size=(BLOCK_ROWS, IN_WIDTH))
    x = x.astype(np.float32)
    out = np.empty((BLOCK_ROWS, OUT_WIDTH), dtype=np.float32)
    return (lambda: op.apply(x, out)), BLOCK_ROWS


@register("linear_f64_block597", op="LinearOp")
def _bench_linear_f64():
    op = _linear_op(np.float64)
    x = _rng(3).normal(size=(BLOCK_ROWS, IN_WIDTH))
    out = np.empty((BLOCK_ROWS, OUT_WIDTH), dtype=np.float64)
    return (lambda: op.apply(x, out)), BLOCK_ROWS


@register("affine_f64_block597", op="AffineOp")
def _bench_affine():
    from repro.infer.plan import AffineOp

    rng = _rng(5)
    op = AffineOp(
        mean=rng.normal(size=IN_WIDTH),
        inv_std=1.0 / (0.5 + rng.uniform(size=IN_WIDTH)),
        gamma=rng.normal(size=IN_WIDTH),
        beta=rng.normal(size=IN_WIDTH),
        activation="none",
    )
    x = rng.normal(size=(BLOCK_ROWS, IN_WIDTH))
    out = np.empty_like(x)
    return (lambda: op.apply(x, out)), BLOCK_ROWS


@register("activation_sigmoid_block597", op="ActivationOp")
def _bench_activation():
    from repro.infer.plan import ActivationOp

    op = ActivationOp(activation="sigmoid", width=OUT_WIDTH)
    x = _rng(7).normal(size=(BLOCK_ROWS, OUT_WIDTH))
    out = np.empty_like(x)
    return (lambda: op.apply(x, out)), BLOCK_ROWS


@register("quantize_block597", op="QuantizeOp")
def _bench_quantize():
    from repro.infer.plan import QuantizeOp

    op = QuantizeOp(scale=0.05, zero_point=128, width=IN_WIDTH)
    x = _rng(9).normal(size=(BLOCK_ROWS, IN_WIDTH))
    return (lambda: op.apply(x, None)), BLOCK_ROWS


@register("int8_linear_block597", op="Int8LinearOp")
def _bench_int8_linear():
    from repro.infer.plan import Int8LinearOp

    op = Int8LinearOp(_quantized_layer())
    x_q = _quantized_input()
    return (lambda: op.apply(x_q, None)), BLOCK_ROWS


@register("int8_linear_reference_block597", op="Int8LinearOp")
def _bench_int8_linear_reference():
    # The retained pre-rework int64 kernel, tracked so the report keeps
    # quantifying the fixed-point path's speedup over it.
    layer = _quantized_layer()
    x_q = _quantized_input()
    return (lambda: layer._reference_forward_int(x_q)), BLOCK_ROWS


@register("dequantize_block597", op="DequantizeOp")
def _bench_dequantize():
    from repro.infer.plan import DequantizeOp

    layer = _quantized_layer()
    op = DequantizeOp(layer)
    y_q = layer.forward_int(_quantized_input())
    return (lambda: op.apply(y_q, None)), BLOCK_ROWS


def _ring_block(n: int = BLOCK_ROWS):
    """Synthetic paper-shaped ring set (``n`` rings around one source).

    Built directly as arrays (no detector simulation) so the skymap
    kernels time pure likelihood evaluation at the paper's ring count.
    """
    from repro.reconstruction.rings import RingSet

    rng = _rng(23)
    source = np.array([0.35, -0.12, 0.93])
    source /= np.linalg.norm(source)
    axes = rng.normal(size=(n, 3))
    axes /= np.linalg.norm(axes, axis=1, keepdims=True)
    deta = np.full(n, 0.03)
    eta = axes @ source + rng.normal(size=n) * deta
    return RingSet(
        axis=axes,
        eta=eta,
        deta=deta,
        event_index=np.arange(n),
        first_hit=np.zeros(n, dtype=np.int64),
        second_hit=np.ones(n, dtype=np.int64),
        ordering_score=np.full(n, np.nan),
        labels=np.zeros(n, dtype=np.int64),
        ordering_correct=np.ones(n, dtype=bool),
        source_direction=source,
    )


@register("skymap_evaluate_coarse8deg", op="skymap.evaluate_cells")
def _bench_skymap_evaluate():
    # Level-0 of the hierarchical sky search: 597 rings against every
    # coarse cell of the 8-degree hemisphere pixelization.  rows = cells
    # evaluated per call.
    from repro.localization.hierarchy import coarse_cells, evaluate_cells

    rings = _ring_block()
    cells = coarse_cells(8.0, 95.0)
    return (lambda: evaluate_cells(rings, cells, 25.0)), cells.num_cells


@register("skymap_refine_level16", op="skymap.refine_level")
def _bench_skymap_refine():
    # One refine step at the default frontier: select top-16 + margin,
    # split into children, evaluate, merge.  rows = starting cells.
    from repro.localization.hierarchy import (
        SkymapConfig,
        coarse_cells,
        evaluate_cells,
        refine_level,
    )

    cfg = SkymapConfig()
    rings = _ring_block()
    cells = coarse_cells(cfg.coarse_resolution_deg, cfg.max_polar_deg)
    log_like, log_post = evaluate_cells(rings, cells, cfg.cap)
    return (
        lambda: refine_level(rings, cells, log_like, log_post, cfg)
    ), cells.num_cells


@register("gather_scatter_block40x16", op="GatherScratch")
def _bench_gather_scatter():
    # localize_many's lock-step round: gather 16 events' small blocks
    # into one batch, then scatter row slices back out (the slices are
    # views; the copy cost is all in the gather).
    from repro.infer.batch import GatherScratch

    rng = _rng(19)
    blocks = [rng.normal(size=(40, IN_WIDTH)) for _ in range(16)]
    lengths = [b.shape[0] for b in blocks]
    offsets = np.cumsum([0] + lengths)
    scratch = GatherScratch()

    def run():
        merged = scratch.gather(blocks)
        return [
            merged[offsets[j] : offsets[j + 1]] for j in range(len(blocks))
        ]

    return run, int(offsets[-1])
