"""Op-level microbenchmark registry.

Every hot kernel in the inference runtime registers a tracked
:class:`OpBenchmark` here (see ``repro.perf.ops``), so performance is a
*program*, not an afterthought: ``scripts/bench_report.py`` runs the
whole registry into the ``BENCH_*.json`` report with per-op rows/s, and
``scripts/ci_checks.py`` fails the build if any op class exported by
``repro.infer.plan`` lacks a registered benchmark.

A benchmark is a named factory: ``build()`` constructs the workload
once (weights, input blocks, arenas) and returns ``(fn, rows)`` where
``fn`` evaluates the kernel on ``rows`` input rows.  The runner then
times repeated calls and reports rows/s, best-of-rounds — the standard
defense against background-load noise on a shared machine.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass
from typing import Callable

#: Timed rounds per benchmark; the best (minimum) round is reported.
DEFAULT_ROUNDS = 3

#: Target seconds per timed round: calls are batched until one round
#: takes at least this long, so per-call timer overhead stays negligible
#: even for microsecond kernels.
DEFAULT_MIN_TIME = 0.02


@dataclass(frozen=True)
class OpBenchmark:
    """One registered kernel benchmark.

    Attributes:
        name: Registry key, e.g. ``"int8_linear_block597"``.
        op: Kernel class (or subsystem) this entry covers, e.g.
            ``"Int8LinearOp"`` or ``"GatherScratch"`` — what the CI
            coverage gate matches against.
        build: Zero-argument factory returning ``(fn, rows)``: a
            closure evaluating the kernel, and the input rows per call.
    """

    name: str
    op: str
    build: Callable[[], tuple[Callable[[], object], int]]


_REGISTRY: dict[str, OpBenchmark] = {}


def register(name: str, op: str):
    """Decorator: register ``build`` under ``name``, covering ``op``."""

    def _register(build):
        if name in _REGISTRY:
            raise ValueError(f"duplicate benchmark name {name!r}")
        _REGISTRY[name] = OpBenchmark(name=name, op=op, build=build)
        return build

    return _register


def registered() -> tuple[OpBenchmark, ...]:
    """All registered benchmarks, in name order."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def covered_ops() -> frozenset[str]:
    """Kernel/class names with at least one registered benchmark."""
    return frozenset(bench.op for bench in _REGISTRY.values())


def plan_op_names() -> frozenset[str]:
    """Op classes exported by ``repro.infer.plan`` (the coverage bar).

    An "op" is any public class in the plan module with an ``apply``
    execution method — the set the CI perf gate requires benchmarks
    for.  Discovered by inspection so a newly added op class fails the
    gate until someone benchmarks it.
    """
    from repro.infer import plan

    return frozenset(
        name
        for name, obj in vars(plan).items()
        if inspect.isclass(obj)
        and obj.__module__ == plan.__name__
        and callable(getattr(obj, "apply", None))
    )


#: Hot kernels outside ``repro.infer.plan`` that the coverage gate also
#: requires benchmarks for, by subsystem-qualified name.  The skymap
#: entries are the hierarchical sky search's two kernels (level
#: evaluation and the split-evaluate-merge refine step) — the cost the
#: Fig.-6 loop pays per emitted confidence region.
EXTRA_REQUIRED_OPS = frozenset(
    {
        "skymap.evaluate_cells",
        "skymap.refine_level",
    }
)


def required_ops() -> frozenset[str]:
    """Every op name the CI coverage gate requires a benchmark for."""
    return plan_op_names() | EXTRA_REQUIRED_OPS


def missing_ops() -> frozenset[str]:
    """Required ops without a registered benchmark (CI gate input)."""
    return required_ops() - covered_ops()


def run_benchmark(
    bench: OpBenchmark,
    rounds: int = DEFAULT_ROUNDS,
    min_time: float = DEFAULT_MIN_TIME,
) -> float:
    """Time one benchmark; return rows/s (best of ``rounds``).

    The workload is built once, then calibrated: calls per round double
    until a round reaches ``min_time``.  Every subsequent round reuses
    that call count, and the fastest round wins.
    """
    fn, rows = bench.build()
    fn()  # warm-up: touch caches, trigger lazy allocations
    calls = 1
    while True:
        t0 = time.perf_counter()
        for _ in range(calls):
            fn()
        elapsed = time.perf_counter() - t0
        if elapsed >= min_time:
            break
        calls *= 2
    best = elapsed
    for _ in range(rounds - 1):
        t0 = time.perf_counter()
        for _ in range(calls):
            fn()
        best = min(best, time.perf_counter() - t0)
    return calls * rows / best


def run_all(
    rounds: int = DEFAULT_ROUNDS, min_time: float = DEFAULT_MIN_TIME
) -> dict[str, float]:
    """Run every registered benchmark; return name -> rows/s."""
    return {
        bench.name: run_benchmark(bench, rounds=rounds, min_time=min_time)
        for bench in registered()
    }
