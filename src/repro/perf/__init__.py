"""Op-level performance program: tracked microbenchmarks per kernel.

``repro.perf.registry`` holds the registry and runner;
``repro.perf.ops`` registers one benchmark per inference kernel
(imported here so the registry is populated as a side effect of
``import repro.perf``).  ``scripts/bench_report.py`` feeds the registry
into ``BENCH_pr6.json``; ``scripts/ci_checks.py`` gates on coverage —
every op class in ``repro.infer.plan`` must have an entry.
"""

from repro.perf import ops as _ops  # noqa: F401  (registers benchmarks)
from repro.perf.registry import (
    DEFAULT_MIN_TIME,
    DEFAULT_ROUNDS,
    OpBenchmark,
    covered_ops,
    missing_ops,
    plan_op_names,
    register,
    registered,
    required_ops,
    run_all,
    run_benchmark,
)

__all__ = [
    "DEFAULT_MIN_TIME",
    "DEFAULT_ROUNDS",
    "OpBenchmark",
    "covered_ops",
    "missing_ops",
    "plan_op_names",
    "register",
    "registered",
    "required_ops",
    "run_all",
    "run_benchmark",
]
