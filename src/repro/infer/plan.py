"""Plan compilation: flatten a trained ``Module`` tree into flat ops.

``compile_plan`` walks an eval-mode :class:`~repro.nn.layers.Sequential`
and emits a flat tuple of execution ops:

* ``Linear`` becomes a :class:`LinearOp`; an immediately following
  ``ReLU``/``Sigmoid`` is fused into it (one buffer, no extra pass).
* ``BatchNorm1d`` in eval mode is a fixed affine map — it becomes an
  :class:`AffineOp` with ``inv_std`` precomputed once at compile time
  (optionally folded into an adjacent ``LinearOp`` when
  ``fold_batchnorm=True``; folding changes float rounding, so it is off
  by default — see ``docs/inference.md``).
* Train-only layers (``Dropout``) and ``Identity`` are skipped entirely:
  they are exact no-ops in eval mode, so the plan neither stores them nor
  pays per-call dispatch for them.

``compile_int8_plan`` does the same for a
:class:`~repro.quantization.int8.QuantizedMLP`, reusing the existing
integer kernels (``QuantizedLinear.forward_int``) verbatim so the INT8
plan is bit-identical to the eager quantized chain.

**Parity contract.**  For a **float64** plan executed on the same row
block the eager model would see (no re-tiling), every op reproduces the
eager layer stack's per-element arithmetic bit for bit (the fused
activations use faster formulations proven bitwise-equal — see
:func:`_apply_activation_inplace`), so outputs are bit-identical — this
is what the ``tests/infer`` parity suite pins.  The *default* plan dtype is **float32** (deployment-grade:
halves arena traffic and runs the GEMMs on sgemm, ~1.5-2x dgemm) at
ulp-level deviation from eager; callers that need bit-identity — the
campaign driver does, by default — request ``dtype=np.float64``
explicitly.  Tiling a block across micro-batches preserves values to the
ulp but not bits for gemv-shaped stages (BLAS kernels differ by shape),
which is why the default micro-batch exceeds any realistic per-event
block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.infer.arena import DEFAULT_MICRO_BATCH, ActivationArena
from repro.nn.layers import (
    BatchNorm1d,
    Dropout,
    Identity,
    Linear,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
)
from repro.obs import metrics as obs_metrics
from repro.quantization.fake_quant import UINT8_MAX, UINT8_MIN, quantize
from repro.quantization.int8 import QuantizedLinear, QuantizedMLP

#: Activation tags accepted by the fused ops.
ACTIVATIONS = ("none", "relu", "sigmoid")

#: Default compute dtype for float plans (see the parity contract above).
DEFAULT_PLAN_DTYPE = np.float32


def _apply_activation_inplace(y: np.ndarray, activation: str) -> np.ndarray:
    """Apply a fused activation to ``y`` in place (bit-matching eager).

    ``relu`` is ``np.fmax(y, 0)``: element-for-element the same bits as
    the eager ``np.where(y > 0, y, 0.0)`` — ``fmax`` prefers the non-NaN
    operand, so NaN rows map to 0.0 exactly as the eager layer does —
    but it runs as one SIMD pass instead of a boolean-mask gather
    (~4x on a 597x256 block).  ``sigmoid`` is the numerically stable
    two-branch form of ``nn.layers.Sigmoid`` computed branch-free:
    ``z = exp(-|y|)`` equals ``exp(-y)`` on the positive branch and
    ``exp(y)`` on the negative one, so selecting the numerator with one
    ``np.where`` reproduces the per-element arithmetic — and the bits —
    of the masked two-branch form without fancy indexing.
    """
    if activation == "relu":
        np.fmax(y, y.dtype.type(0.0), out=y)
    elif activation == "sigmoid":
        one = y.dtype.type(1.0)
        neg = y < 0
        np.abs(y, out=y)
        np.negative(y, out=y)
        np.exp(y, out=y)  # z = exp(-|y|)
        numer = np.where(neg, y, one)
        np.add(y, one, out=y)  # 1 + z
        np.divide(numer, y, out=y)
    elif activation != "none":
        raise ValueError(f"unknown activation {activation!r}")
    return y


@dataclass
class LinearOp:
    """Fused ``y = x @ W + b`` (+ optional activation) stage.

    Attributes:
        weight: ``(in, out)`` weights, frozen at compile time.
        bias: ``(out,)`` bias.
        activation: ``"none"``, ``"relu"``, or ``"sigmoid"``.
    """

    weight: np.ndarray
    bias: np.ndarray
    activation: str = "none"

    @property
    def in_width(self) -> int:
        """Input feature count."""
        return int(self.weight.shape[0])

    @property
    def out_width(self) -> int:
        """Output feature count."""
        return int(self.weight.shape[1])

    @property
    def buffer_width(self) -> int | None:
        """Arena buffer width for this op."""
        return self.out_width

    def apply(self, x: np.ndarray, out: np.ndarray | None) -> np.ndarray:
        """Evaluate the stage into ``out`` (allocating when None)."""
        if out is None:
            y = x @ self.weight + self.bias
        else:
            np.matmul(x, self.weight, out=out)
            np.add(out, self.bias, out=out)
            y = out
        return _apply_activation_inplace(y, self.activation)


@dataclass
class AffineOp:
    """Eval-mode BatchNorm as a fixed per-feature affine map.

    ``y = gamma * (x - mean) * inv_std + beta`` with ``inv_std``
    precomputed from the running variance exactly as the eager layer
    computes it per call (``1.0 / np.sqrt(var + eps)``).

    Attributes:
        mean: Running mean.
        inv_std: Precomputed inverse standard deviation.
        gamma: Scale parameter.
        beta: Shift parameter.
        activation: Optional fused activation.
    """

    mean: np.ndarray
    inv_std: np.ndarray
    gamma: np.ndarray
    beta: np.ndarray
    activation: str = "none"

    @property
    def width(self) -> int:
        """Feature count (input width == output width)."""
        return int(self.mean.shape[0])

    @property
    def buffer_width(self) -> int | None:
        """Arena buffer width for this op."""
        return self.width

    def apply(self, x: np.ndarray, out: np.ndarray | None) -> np.ndarray:
        """Evaluate the affine map into ``out`` (allocating when None)."""
        if out is None:
            y = (x - self.mean) * self.inv_std
            y = self.gamma * y + self.beta
        else:
            np.subtract(x, self.mean, out=out)
            np.multiply(out, self.inv_std, out=out)
            np.multiply(out, self.gamma, out=out)
            np.add(out, self.beta, out=out)
            y = out
        return _apply_activation_inplace(y, self.activation)


@dataclass
class ActivationOp:
    """A standalone activation stage (one not fusable into a neighbor).

    Attributes:
        activation: ``"relu"`` or ``"sigmoid"``.
        width: Feature count, for arena sizing.
    """

    activation: str
    width: int

    @property
    def buffer_width(self) -> int | None:
        """Arena buffer width for this op."""
        return self.width

    def apply(self, x: np.ndarray, out: np.ndarray | None) -> np.ndarray:
        """Evaluate the activation without mutating the caller's input."""
        if out is None:
            y = np.array(x, dtype=x.dtype)
        else:
            np.copyto(out, x)
            y = out
        return _apply_activation_inplace(y, self.activation)


@dataclass
class QuantizeOp:
    """Input quantization stage of an INT8 plan.

    Attributes:
        scale: Input activation scale.
        zero_point: Input activation zero point.
        width: Input feature count.
    """

    scale: float
    zero_point: int
    width: int

    @property
    def buffer_width(self) -> int | None:
        """Integer ops manage their own storage."""
        return None

    def apply(self, x: np.ndarray, out: np.ndarray | None) -> np.ndarray:
        """Float features -> uint8-domain int32 grid (same as eager)."""
        del out
        return quantize(
            np.asarray(x, dtype=np.float64),
            self.scale,
            self.zero_point,
            UINT8_MIN,
            UINT8_MAX,
        )


@dataclass
class Int8LinearOp:
    """One integer linear stage, delegating to the INT8 kernel.

    Reusing :meth:`QuantizedLinear.forward_int` verbatim is what makes
    the INT8 plan bit-identical to the eager quantized chain — and since
    the kernel itself is pinned bitwise against the retained
    ``_reference_forward_int``, the plan is transitively bit-identical
    to the original int64 implementation as well.

    Attributes:
        layer: The quantized layer (int8 weights, int32 bias, and the
            construction-time GEMM/requant caches).
    """

    layer: QuantizedLinear

    @property
    def in_width(self) -> int:
        """Input feature count."""
        return int(self.layer.weight_q.shape[0])

    @property
    def out_width(self) -> int:
        """Output feature count."""
        return int(self.layer.weight_q.shape[1])

    @property
    def buffer_width(self) -> int | None:
        """Integer ops manage their own storage."""
        return None

    def apply(self, x: np.ndarray, out: np.ndarray | None) -> np.ndarray:
        """Quantized activations in, quantized activations out."""
        del out
        return self.layer.forward_int(x)


@dataclass
class DequantizeOp:
    """Final dequantization stage of an INT8 plan.

    Attributes:
        layer: The last quantized layer (supplies scale / zero point).
    """

    layer: QuantizedLinear

    @property
    def buffer_width(self) -> int | None:
        """Integer ops manage their own storage."""
        return None

    def apply(self, x: np.ndarray, out: np.ndarray | None) -> np.ndarray:
        """Quantized activations -> float outputs."""
        del out
        return self.layer.dequantize_output(x)


@dataclass
class InferencePlan:
    """A compiled, flat inference program.

    Attributes:
        ops: Execution stages, in order.
        in_width: Input feature count.
        out_width: Output feature count.
        quantized: Whether this is an INT8 plan.
        dtype: Float compute dtype (float plans; INT8 plans emit float64
            dequantized outputs regardless).
        micro_batch: Default tile size for the lazily built arena.
    """

    ops: tuple
    in_width: int
    out_width: int
    quantized: bool = False
    dtype: np.dtype = np.float64
    micro_batch: int = DEFAULT_MICRO_BATCH
    _arena: ActivationArena | None = field(
        default=None, repr=False, compare=False
    )

    def buffer_widths(self) -> tuple[int | None, ...]:
        """Per-op arena buffer widths (None = op-managed storage)."""
        return tuple(op.buffer_width for op in self.ops)

    @property
    def layer_widths(self) -> tuple[int, ...]:
        """Linear-stage widths ``(in, hidden..., out)`` — the FPGA view.

        Derived from the plan's (fused) linear ops, so the HLS cost model
        can consume a compiled plan instead of a live module tree.
        """
        widths = [self.in_width]
        for op in self.ops:
            if isinstance(op, (LinearOp, Int8LinearOp)):
                widths.append(op.out_width)
        return tuple(widths)

    def arena(self) -> ActivationArena:
        """The plan's lazily created default arena (reused across runs)."""
        if self._arena is None or not self._arena.compatible_with(self):
            self._arena = ActivationArena(self, micro_batch=self.micro_batch)
        return self._arena

    def run(
        self, x: np.ndarray, arena: ActivationArena | None = None
    ) -> np.ndarray:
        """Evaluate the plan over a ``(n, in_width)`` row block.

        Rows beyond the arena's micro-batch are tiled into consecutive
        blocks.  Per-row outputs are independent of tiling to the ulp,
        and bit-identical to the eager forward whenever the block fits a
        single tile (the default for per-event blocks).

        Args:
            x: Input rows; float plans evaluate them in ``self.dtype``.
            arena: Buffer set to execute in; None uses the plan's own.

        Returns:
            ``(n, out_width)`` outputs (owned by the caller, never a view
            into arena storage).
        """
        if x.ndim != 2 or x.shape[1] != self.in_width:
            raise ValueError(
                f"expected (n, {self.in_width}) input, got {x.shape}"
            )
        if not self.quantized:
            x = np.asarray(x, dtype=self.dtype)
        n = int(x.shape[0])
        out_dtype = np.float64 if self.quantized else self.dtype
        out = np.empty((n, self.out_width), dtype=out_dtype)
        obs_metrics.inc("infer.batches")
        obs_metrics.inc("infer.rows", n)
        if n == 0:
            return out
        if arena is None:
            arena = self.arena()
        elif not arena.compatible_with(self):
            raise ValueError("arena was built for a different plan")
        step = arena.micro_batch
        for lo in range(0, n, step):
            hi = min(lo + step, n)
            rows = hi - lo
            cur = x[lo:hi]
            for op, buf in zip(self.ops, arena.buffers):
                cur = op.apply(cur, None if buf is None else buf[:rows])
            out[lo:hi] = cur
        return out

    def __getstate__(self) -> dict:
        """Pickle without the arena (buffers are per-process scratch)."""
        state = dict(self.__dict__)
        state["_arena"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        """Restore; the arena is rebuilt lazily on first run."""
        self.__dict__.update(state)


def _flatten(module: Module) -> list[Module]:
    """Depth-first leaf modules of a (possibly nested) Sequential."""
    if isinstance(module, Sequential):
        leaves: list[Module] = []
        for child in module:
            leaves.extend(_flatten(child))
        return leaves
    return [module]


def _fold_affine_into_linear(
    linear: LinearOp, affine: AffineOp, dtype: np.dtype
) -> LinearOp:
    """Fold a trailing eval-mode BatchNorm into the preceding linear."""
    g = affine.gamma * affine.inv_std
    weight = linear.weight * g[None, :]
    bias = (linear.bias - affine.mean) * g + affine.beta
    return LinearOp(
        weight=np.array(weight, dtype=dtype),
        bias=np.array(bias, dtype=dtype),
        activation="none",
    )


def _fold_affine_before_linear(
    affine: AffineOp, linear: Linear, dtype: np.dtype
) -> LinearOp:
    """Fold a leading eval-mode BatchNorm into the following linear."""
    g = affine.gamma * affine.inv_std
    w = linear.weight.value
    weight = g[:, None] * w
    bias = (affine.beta - affine.mean * g) @ w + linear.bias.value
    return LinearOp(
        weight=np.array(weight, dtype=dtype),
        bias=np.array(bias, dtype=dtype),
        activation="none",
    )


def _require_eval(model: Module, leaves: list[Module]) -> None:
    """Reject training-mode models (mirrors ``fuse_linear_bn_relu``)."""
    if model.training or any(leaf.training for leaf in leaves):
        raise ValueError(
            "compile_plan requires an eval-mode model; call model.eval() "
            "first (training-mode BatchNorm/Dropout are data-dependent "
            "and cannot be frozen into a plan)"
        )


def compile_plan(
    model: Module,
    fold_batchnorm: bool = False,
    dtype: np.dtype = DEFAULT_PLAN_DTYPE,
    micro_batch: int = DEFAULT_MICRO_BATCH,
) -> InferencePlan:
    """Compile an eval-mode float model into an :class:`InferencePlan`.

    Args:
        model: The trained network (``Sequential`` or a single layer).
            Must be in eval mode; parameters are copied (the plan is
            frozen — later training does not leak into it).
        fold_batchnorm: Fold eval-mode BatchNorm stages into an adjacent
            ``Linear`` (either order).  Algebraically exact but changes
            float rounding, so results differ from eager at the ulp
            level; off by default to preserve bit-identity.
        dtype: Compute dtype.  ``float32`` (default) halves arena
            storage and runs on sgemm — deployment-grade precision at
            ulp-level deviation from eager; ``float64`` matches the
            eager framework bit-for-bit (the campaign driver's default,
            via ``TrialConfig.infer_dtype``).
        micro_batch: Default arena tile rows (see ``docs/inference.md``).

    Returns:
        An :class:`InferencePlan`.

    Raises:
        ValueError: Training-mode model, unsupported layer type, or an
            inconsistent layer chain.
    """
    leaves = _flatten(model)
    _require_eval(model, leaves)
    dtype = np.dtype(dtype)

    ops: list = []
    width: int | None = None  # current activation width, once known
    for leaf in leaves:
        if isinstance(leaf, (Dropout, Identity)):
            continue  # exact no-ops in eval mode
        if isinstance(leaf, Linear):
            if width is not None and width != leaf.in_features:
                raise ValueError(
                    f"layer chain mismatch: {width} features flowing into "
                    f"a Linear expecting {leaf.in_features}"
                )
            if (
                fold_batchnorm
                and ops
                and isinstance(ops[-1], AffineOp)
                and ops[-1].activation == "none"
            ):
                ops.append(_fold_affine_before_linear(ops.pop(), leaf, dtype))
            else:
                ops.append(
                    LinearOp(
                        weight=np.array(leaf.weight.value, dtype=dtype),
                        bias=np.array(leaf.bias.value, dtype=dtype),
                    )
                )
            width = leaf.out_features
        elif isinstance(leaf, BatchNorm1d):
            if width is not None and width != leaf.num_features:
                raise ValueError(
                    f"layer chain mismatch: {width} features flowing into "
                    f"a BatchNorm expecting {leaf.num_features}"
                )
            affine = AffineOp(
                mean=np.array(leaf.running_mean, dtype=dtype),
                inv_std=np.array(
                    1.0 / np.sqrt(leaf.running_var + leaf.eps), dtype=dtype
                ),
                gamma=np.array(leaf.gamma.value, dtype=dtype),
                beta=np.array(leaf.beta.value, dtype=dtype),
            )
            if (
                fold_batchnorm
                and ops
                and isinstance(ops[-1], LinearOp)
                and ops[-1].activation == "none"
            ):
                ops.append(_fold_affine_into_linear(ops.pop(), affine, dtype))
            else:
                ops.append(affine)
            width = leaf.num_features
        elif isinstance(leaf, (ReLU, Sigmoid)):
            tag = "relu" if isinstance(leaf, ReLU) else "sigmoid"
            if ops and getattr(ops[-1], "activation", None) == "none":
                ops[-1].activation = tag
            else:
                if width is None:
                    raise ValueError(
                        "activation before any width-defining layer"
                    )
                ops.append(ActivationOp(activation=tag, width=width))
        else:
            raise ValueError(
                f"cannot compile layer type {type(leaf).__name__}; "
                "supported: Linear, BatchNorm1d, ReLU, Sigmoid, Dropout, "
                "Identity (QAT models must be converted with "
                "quantization.qat.convert_to_int8 first)"
            )
    if not ops:
        raise ValueError("model compiles to an empty plan")
    first = ops[0]
    in_width = first.in_width if isinstance(first, LinearOp) else first.width
    last_width = width
    assert last_width is not None
    obs_metrics.inc("infer.plan_compiles")
    return InferencePlan(
        ops=tuple(ops),
        in_width=int(in_width),
        out_width=int(last_width),
        quantized=False,
        dtype=dtype,
        micro_batch=micro_batch,
    )


def compile_int8_plan(
    model: QuantizedMLP, micro_batch: int = DEFAULT_MICRO_BATCH
) -> InferencePlan:
    """Compile a :class:`QuantizedMLP` into an INT8 plan.

    The plan is ``[quantize, int8-linear..., dequantize]`` with every
    integer stage delegating to the existing
    :meth:`QuantizedLinear.forward_int` kernel, so outputs are
    bit-identical to ``QuantizedMLP.forward`` (integer arithmetic is
    exactly row-independent, so this holds under any tiling).

    Args:
        model: The converted integer model.
        micro_batch: Default arena tile rows.

    Returns:
        An :class:`InferencePlan` with ``quantized=True``.
    """
    if not model.layers:
        raise ValueError("quantized model has no layers")
    in_width = int(model.layers[0].weight_q.shape[0])
    ops: list = [
        QuantizeOp(
            scale=model.input_scale,
            zero_point=model.input_zero_point,
            width=in_width,
        )
    ]
    for layer in model.layers:
        ops.append(Int8LinearOp(layer))
    ops.append(DequantizeOp(model.layers[-1]))
    obs_metrics.inc("infer.plan_compiles")
    return InferencePlan(
        ops=tuple(ops),
        in_width=in_width,
        out_width=int(model.layers[-1].weight_q.shape[1]),
        quantized=True,
        dtype=np.float64,
        micro_batch=micro_batch,
    )
