"""Inference engines: pluggable evaluation backends for the ML pipeline.

The pipeline's localization loop does not call the network bundles
directly any more — it emits :class:`InferRequest` items (see
``MLPipeline.localize_requests``) and an *engine* answers them:

* :class:`EagerEngine` (backend ``"reference"``) delegates to the trained
  bundles' own ``predict_proba`` / ``predict_deta`` — the original code
  path, kept as the parity reference.
* :class:`PlannedEngine` (backends ``"planned"`` / ``"int8"``) evaluates
  compiled :class:`~repro.infer.plan.InferencePlan` programs with
  pre-allocated arenas.  Post-processing (sigmoid, logit clipping, the
  dEta clip-and-exp) is delegated back to the *bundle's* own helper
  methods, so the planned path cannot drift from the eager definition.

Engines are plain picklable objects: campaigns compile plans once in the
parent and ship the engine to workers through the executor's common
payload (broadcast once per campaign, not per chunk).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.infer.plan import InferencePlan, compile_int8_plan, compile_plan
from repro.models.quantized import Int8BackgroundNet

#: Recognized inference backends.
INFER_BACKENDS = ("reference", "planned", "int8")

#: Compute dtypes accepted for float plans.  float32 is the runtime
#: default (deployment-grade, sgemm-backed); float64 is the bit-parity
#: mode the campaign driver selects by default.
PLANNED_DTYPES = ("float32", "float64")


@dataclass(frozen=True)
class InferRequest:
    """One network-evaluation request emitted by the localization loop.

    Attributes:
        kind: ``"background"`` (wants per-ring background probabilities)
            or ``"deta"`` (wants per-ring predicted ``d eta``).
        features: ``(m, f)`` raw (unscaled) ring features.
    """

    kind: str
    features: np.ndarray


class EagerEngine:
    """Reference backend: the bundles' original per-call evaluation."""

    backend = "reference"

    def __init__(self, background_net, deta_net) -> None:
        self.background_net = background_net
        self.deta_net = deta_net

    def background_proba(self, features: np.ndarray) -> np.ndarray:
        """Background probability per ring, shape ``(m,)``."""
        return self.background_net.predict_proba(features)

    def deta(self, features: np.ndarray) -> np.ndarray:
        """Predicted ``d eta`` per ring, shape ``(m,)``."""
        return self.deta_net.predict_deta(features)


class PlannedEngine:
    """Planned backend: compiled plans + arena execution.

    Attributes:
        backend: ``"planned"`` or ``"int8"`` (cosmetic — the plan type
            is determined by the bundle at build time).
        background_plan: Compiled background-net plan (float or INT8).
        deta_plan: Compiled dEta-net plan (always float, as in the paper:
            the INT8 deployment runs "in conjunction with the FP32
            version of the dEta model").
    """

    def __init__(
        self,
        backend: str,
        background_net,
        deta_net,
        background_plan: InferencePlan,
        deta_plan: InferencePlan,
    ) -> None:
        self.backend = backend
        self.background_net = background_net
        self.deta_net = deta_net
        self.background_plan = background_plan
        self.deta_plan = deta_plan

    def background_proba(self, features: np.ndarray) -> np.ndarray:
        """Background probability per ring, shape ``(m,)``."""
        x = self.background_net.scaler.transform(features)
        logit = self.background_plan.run(x)[:, 0]
        return self.background_net.proba_from_logit(logit)

    def deta(self, features: np.ndarray) -> np.ndarray:
        """Predicted ``d eta`` per ring, shape ``(m,)``."""
        x = self.deta_net.scaler.transform(features)
        raw = self.deta_plan.run(x)[:, 0]
        return self.deta_net.deta_from_raw(raw)


def evaluate_request(engine, request: InferRequest) -> np.ndarray:
    """Answer one :class:`InferRequest` with the given engine."""
    if request.kind == "background":
        return engine.background_proba(request.features)
    if request.kind == "deta":
        return engine.deta(request.features)
    raise ValueError(f"unknown request kind {request.kind!r}")


def build_engine(
    pipeline,
    backend: str = "planned",
    micro_batch: int | None = None,
    dtype: str | np.dtype | None = None,
):
    """Build an inference engine for a trained ``MLPipeline``.

    Args:
        pipeline: The trained pipeline (FP32 or INT8 background bundle).
        backend: ``"reference"`` (eager bundles), ``"planned"`` (compiled
            plans — float for a ``BackgroundNet``, automatically INT8 for
            an ``Int8BackgroundNet``), or ``"int8"`` (same as planned but
            *requires* the INT8 bundle, failing loudly otherwise).
        micro_batch: Arena tile rows; None keeps the plan default.
        dtype: Compute dtype for the *float* plans (the background plan
            when not quantized, and always the dEta plan): one of
            :data:`PLANNED_DTYPES`.  None keeps the runtime default
            (float32); pass ``"float64"`` for bit-identity with the
            eager bundles.  Integer plans are unaffected — the INT8
            chain is bit-exact at any setting.

    Returns:
        An :class:`EagerEngine` or :class:`PlannedEngine`.

    Raises:
        ValueError: Unknown backend or dtype, or ``"int8"`` requested
            for a pipeline whose background bundle is not quantized.
    """
    if backend not in INFER_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; options: {INFER_BACKENDS}"
        )
    if dtype is not None and np.dtype(dtype).name not in PLANNED_DTYPES:
        raise ValueError(
            f"unsupported plan dtype {dtype!r}; options: {PLANNED_DTYPES}"
        )
    bg = pipeline.background_net
    deta_net = pipeline.deta_net
    if backend == "reference":
        return EagerEngine(bg, deta_net)
    kwargs = {} if micro_batch is None else {"micro_batch": micro_batch}
    float_kwargs = dict(kwargs)
    if dtype is not None:
        float_kwargs["dtype"] = np.dtype(dtype)
    if isinstance(bg, Int8BackgroundNet):
        bg_plan = compile_int8_plan(bg.model, **kwargs)
    elif backend == "int8":
        raise ValueError(
            "int8 backend requires an Int8BackgroundNet bundle; quantize "
            "the pipeline first (models.quantized.quantize_background_net)"
        )
    else:
        bg.model.eval()
        bg_plan = compile_plan(bg.model, **float_kwargs)
    deta_net.model.eval()
    deta_plan = compile_plan(deta_net.model, **float_kwargs)
    return PlannedEngine(backend, bg, deta_net, bg_plan, deta_plan)
