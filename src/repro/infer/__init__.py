"""Planned, batched inference runtime for the trained networks.

Compiles a trained ``Module`` tree into a flat execution plan (fused
Linear+activation stages, eval-mode BatchNorm as precomputed affines,
train-only layers elided), executes it in pre-allocated activation
arenas, and exposes pluggable engines the localization pipeline and the
campaign runner consume.  See ``docs/inference.md`` for semantics and
the parity guarantees, and ``BENCH_pr6.json`` for measured throughput.
"""

from repro.infer.arena import DEFAULT_MICRO_BATCH, ActivationArena
from repro.infer.batch import GatherScratch, localize_many
from repro.infer.engine import (
    INFER_BACKENDS,
    PLANNED_DTYPES,
    EagerEngine,
    InferRequest,
    PlannedEngine,
    build_engine,
    evaluate_request,
)
from repro.infer.plan import (
    ACTIVATIONS,
    DEFAULT_PLAN_DTYPE,
    ActivationOp,
    AffineOp,
    DequantizeOp,
    InferencePlan,
    Int8LinearOp,
    LinearOp,
    QuantizeOp,
    compile_int8_plan,
    compile_plan,
)

__all__ = [
    "ACTIVATIONS",
    "ActivationArena",
    "ActivationOp",
    "AffineOp",
    "DEFAULT_MICRO_BATCH",
    "DEFAULT_PLAN_DTYPE",
    "DequantizeOp",
    "EagerEngine",
    "GatherScratch",
    "INFER_BACKENDS",
    "InferRequest",
    "InferencePlan",
    "Int8LinearOp",
    "LinearOp",
    "PLANNED_DTYPES",
    "PlannedEngine",
    "QuantizeOp",
    "build_engine",
    "compile_int8_plan",
    "compile_plan",
    "evaluate_request",
    "localize_many",
]
