"""Campaign-level batched localization: one planned pass per round.

Per-event inference evaluates each event's ring features alone — a few
hundred rows per network call.  :func:`localize_many` instead drives many
events' request generators in lock step: every round it gathers the
pending feature blocks of the same kind across *all* live events,
concatenates them into one block, evaluates the engine once, and
scatters the row slices back to their generators.

**Determinism.**  Each event keeps its own ``Generator`` and its own
request stream, and requests within one event are answered strictly in
order, so every event consumes exactly the RNG draws and control flow it
would alone — batched outcomes are reproducible and independent of which
events share a group.  Per-row network outputs under cross-event
concatenation match per-event evaluation to the ulp but not always
bit-for-bit (BLAS kernels are shape-dependent), which is why campaign
batching is opt-in (``TrialConfig.event_batch > 1``) while the default
per-event planned path stays bit-identical to eager.  See
``docs/inference.md``.
"""

from __future__ import annotations

import numpy as np

from repro.infer.engine import InferRequest, build_engine, evaluate_request
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: Request kinds gathered per round, in a fixed evaluation order.
_REQUEST_KINDS = ("background", "deta")


class GatherScratch:
    """Reusable gather buffer for one request kind.

    ``localize_many`` used to ``np.concatenate`` the pending feature
    blocks every lock-step round, allocating a fresh gather array per
    kind per round.  A campaign of thousands of events runs thousands of
    rounds, so that churn is pure overhead.  This scratch keeps one
    growable ``(capacity, width)`` array per kind and copies blocks into
    its head instead; the array only ever grows (geometrically), so a
    steady-state campaign allocates nothing after warm-up.

    The returned view is consumed synchronously — the engine's scaler
    ``transform`` produces a fresh array before any plan touches it — so
    handing out a view of the scratch across rounds is safe.
    """

    def __init__(self) -> None:
        self._buf: np.ndarray | None = None
        self.grows = 0

    def gather(self, blocks: list[np.ndarray]) -> np.ndarray:
        """Concatenate ``blocks`` row-wise into the reusable buffer.

        A single block is returned as-is (no copy); multiple blocks are
        copied into the scratch and a head view is returned.

        Raises:
            ValueError: Empty ``blocks``, a non-2D block, or blocks with
                mismatched widths or dtypes (a silent mismatch would
                scatter garbage rows back to the wrong events).
        """
        if not blocks:
            raise ValueError("gather() needs at least one feature block")
        width = _checked_width(blocks)
        if len(blocks) == 1:
            return blocks[0]
        rows = sum(int(b.shape[0]) for b in blocks)
        dtype = blocks[0].dtype
        buf = self._buf
        if (
            buf is None
            or buf.shape[0] < rows
            or buf.shape[1] != width
            or buf.dtype != dtype
        ):
            capacity = rows if buf is None else max(rows, 2 * buf.shape[0])
            self._buf = buf = np.empty((capacity, width), dtype=dtype)
            self.grows += 1
        offset = 0
        for block in blocks:
            n = int(block.shape[0])
            buf[offset : offset + n] = block
            offset += n
        return buf[:rows]


def _checked_width(blocks: list[np.ndarray]) -> int:
    """Common feature width of ``blocks`` (all 2D, one width, one dtype)."""
    first = blocks[0]
    if first.ndim != 2:
        raise ValueError(f"feature blocks must be 2D, got ndim={first.ndim}")
    width = int(first.shape[1])
    for block in blocks[1:]:
        if block.ndim != 2:
            raise ValueError(
                f"feature blocks must be 2D, got ndim={block.ndim}"
            )
        if int(block.shape[1]) != width:
            raise ValueError(
                f"mixed feature widths in gather: {width} vs {block.shape[1]}"
            )
        if block.dtype != first.dtype:
            raise ValueError(
                f"mixed dtypes in gather: {first.dtype} vs {block.dtype}"
            )
    return width


def localize_many(
    pipeline,
    event_sets,
    rngs,
    engine=None,
    halt_after: int | None = None,
) -> list:
    """Localize many exposures with lock-step batched inference.

    Args:
        pipeline: A trained ``MLPipeline``.
        event_sets: One digitized ``EventSet`` per exposure.
        rngs: One ``numpy.random.Generator`` per exposure (never shared —
            sharing would interleave draw order across events).
        engine: Inference engine answering the gathered requests; None
            builds the default planned engine for ``pipeline``.
        halt_after: Anytime knob forwarded to every event's loop.

    Returns:
        One ``MLPipelineOutcome`` per exposure, in input order.
    """
    event_sets = list(event_sets)
    rngs = list(rngs)
    if len(event_sets) != len(rngs):
        raise ValueError("need exactly one rng per event set")
    if engine is None:
        engine = build_engine(pipeline, "planned")

    gens = [
        pipeline.localize_requests(events, rng, halt_after=halt_after)
        for events, rng in zip(event_sets, rngs)
    ]
    outcomes: list = [None] * len(gens)
    pending: dict[int, InferRequest] = {}

    def _advance(i: int, payload) -> None:
        """Step generator ``i``; file its next request or its outcome."""
        try:
            request = next(gens[i]) if payload is None else gens[i].send(payload)
        except StopIteration as stop:
            outcomes[i] = stop.value
        else:
            pending[i] = request

    scratch = {kind: GatherScratch() for kind in _REQUEST_KINDS}
    rounds = 0
    with obs_trace.span("infer.localize_many"):
        for i in range(len(gens)):
            _advance(i, None)
        while pending:
            rounds += 1
            ready, pending = pending, {}
            for kind in _REQUEST_KINDS:
                idxs = [i for i in sorted(ready) if ready[i].kind == kind]
                if not idxs:
                    continue
                blocks = [ready[i].features for i in idxs]
                lengths = [int(b.shape[0]) for b in blocks]
                merged = evaluate_request(
                    engine,
                    InferRequest(kind, scratch[kind].gather(blocks)),
                )
                offsets = np.cumsum([0] + lengths)
                for j, i in enumerate(idxs):
                    _advance(i, merged[offsets[j] : offsets[j + 1]])
        obs_metrics.inc("infer.gather_rounds", rounds)
    return outcomes
