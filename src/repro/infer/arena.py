"""Pre-allocated activation arenas for plan execution.

Eager ``Module.forward`` allocates a fresh output array at every layer of
every call — for the campaign inference path (hundreds of thousands of
small forwards) that is pure allocator churn.  An
:class:`ActivationArena` pre-allocates one ``(micro_batch, width)``
buffer per plan op and the plan executes into those buffers in place,
tiling inputs larger than the micro-batch into consecutive row blocks.

Sizing guidance lives in ``docs/inference.md``: the default micro-batch
(:data:`DEFAULT_MICRO_BATCH`) is chosen so a typical per-event ring block
(~600 rows, up to a few thousand) runs as a *single* tile — which is what
keeps the planned float backend bit-identical to the eager forward (BLAS
results for gemv-shaped stages are not invariant under row re-tiling).
"""

from __future__ import annotations

import numpy as np

#: Default rows per tile.  Large enough that one event's ring block (and
#: small event batches) never re-tiles; small enough that the buffers of
#: a paper-sized background net stay ~tens of MB.
DEFAULT_MICRO_BATCH: int = 4096


class ActivationArena:
    """Reusable per-op activation buffers for one compiled plan.

    Attributes:
        micro_batch: Maximum rows evaluated per tile.
        buffers: One ``(micro_batch, width)`` array per plan op, or None
            for ops that manage their own storage (the integer ops, whose
            dtype changes along the chain).
    """

    def __init__(self, plan, micro_batch: int = DEFAULT_MICRO_BATCH) -> None:
        if micro_batch < 1:
            raise ValueError("micro_batch must be >= 1")
        self.micro_batch = int(micro_batch)
        self._widths = tuple(plan.buffer_widths())
        self._dtype = plan.dtype
        self.buffers = tuple(
            None
            if width is None
            else np.empty((self.micro_batch, width), dtype=plan.dtype)
            for width in self._widths
        )

    def compatible_with(self, plan) -> bool:
        """Whether this arena's buffers fit ``plan``'s op chain."""
        return (
            tuple(plan.buffer_widths()) == self._widths
            and plan.dtype == self._dtype
        )

    @property
    def nbytes(self) -> int:
        """Total pre-allocated buffer storage in bytes."""
        return int(sum(b.nbytes for b in self.buffers if b is not None))
