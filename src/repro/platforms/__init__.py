"""Embedded-platform timing models and host stage timers."""

from repro.platforms.platforms import (
    ATOM,
    RPI3B_PLUS,
    PlatformModel,
    StageTimes,
)
from repro.platforms.timing import StageTimer, time_pipeline_stages
from repro.platforms.scheduler import ExecutionPlan, plan_cost_ms, plan_under_budget
from repro.platforms.rate import (
    RateCapacity,
    max_sustainable_rate,
    rate_capacity,
    utilization,
)

__all__ = [
    "PlatformModel",
    "StageTimes",
    "RPI3B_PLUS",
    "ATOM",
    "StageTimer",
    "time_pipeline_stages",
    "ExecutionPlan",
    "plan_cost_ms",
    "plan_under_budget",
    "RateCapacity",
    "rate_capacity",
    "utilization",
    "max_sustainable_rate",
]
