"""Calibrated timing models for the paper's two flight-candidate platforms.

The paper times its (C++/OpenMP, 4-core) pipeline on a Raspberry Pi 3B+
(1.4 GHz Cortex-A53) and a WINSYSTEMS EBC-C413 (1.92 GHz Atom E3845) —
hardware this reproduction cannot run on.  Instead, each platform is a
*cost model*: per-stage unit costs (ms per event for reconstruction, ms
per ring for the ring-proportional stages) calibrated so that at the
paper's nominal workload the model reproduces Tables I/II, with the
paper's observed min/max spread retained as relative ranges.

The total-time composition is derived from the tables themselves: both
tables satisfy (to 0.1 ms)

``total = recon + setup + dEta + 5 x (bkg + approx/refine) + approx/refine``

i.e. five background-rejection iterations each pay one background-network
inference and one approximation+refinement pass, then the dEta network is
applied once and a final approximation+refinement produces the output.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Nominal workload behind the paper's stage means: rings entering the
#: first background-network iteration (paper Section V) ...
PAPER_NOMINAL_RINGS: int = 597
#: ... and the digitized events feeding reconstruction (not reported by
#: the paper; estimated from the ring yield of reconstruction filters).
PAPER_NOMINAL_EVENTS: int = 1200

#: Stage names, in table order.
STAGE_NAMES: tuple[str, ...] = (
    "Reconstruction",
    "Localization Setup",
    "DEta NN Inference",
    "Bkg NN Inference",
    "Approx + Refine",
)


@dataclass(frozen=True)
class StageTimes:
    """Mean and (min, max) milliseconds for every stage plus the total.

    Attributes:
        mean_ms: Stage name -> mean milliseconds.
        range_ms: Stage name -> (min, max) milliseconds.
    """

    mean_ms: dict[str, float]
    range_ms: dict[str, tuple[float, float]]

    def total_mean(self, iterations: int = 5) -> float:
        """Total pipeline time under the table composition law."""
        m = self.mean_ms
        return (
            m["Reconstruction"]
            + m["Localization Setup"]
            + m["DEta NN Inference"]
            + iterations * (m["Bkg NN Inference"] + m["Approx + Refine"])
            + m["Approx + Refine"]
        )

    def total_range(self, iterations: int = 5) -> tuple[float, float]:
        """(min, max) total under the composition law."""
        lo = {k: v[0] for k, v in self.range_ms.items()}
        hi = {k: v[1] for k, v in self.range_ms.items()}

        def comp(m: dict[str, float]) -> float:
            return (
                m["Reconstruction"]
                + m["Localization Setup"]
                + m["DEta NN Inference"]
                + iterations * (m["Bkg NN Inference"] + m["Approx + Refine"])
                + m["Approx + Refine"]
            )

        return comp(lo), comp(hi)


@dataclass(frozen=True)
class PlatformModel:
    """A platform's calibrated per-stage cost model.

    Attributes:
        name: Platform name.
        clock_ghz: Core clock (documentation; costs are calibrated, not
            derived from the clock).
        cores: Core count used by the OpenMP parallelization.
        stage_mean_ms: Calibrated stage means at the nominal workload
            (= the paper's table rows).
        stage_range_ms: The paper's observed (min, max) per stage.
        events_stages: Stages whose cost scales with event count.
        rings_stages: Stages whose cost scales with ring count.
    """

    name: str
    clock_ghz: float
    cores: int
    stage_mean_ms: dict[str, float]
    stage_range_ms: dict[str, tuple[float, float]]
    events_stages: tuple[str, ...] = ("Reconstruction",)
    rings_stages: tuple[str, ...] = (
        "Localization Setup",
        "DEta NN Inference",
        "Bkg NN Inference",
        "Approx + Refine",
    )

    def predict(
        self,
        num_events: int = PAPER_NOMINAL_EVENTS,
        num_rings: int = PAPER_NOMINAL_RINGS,
    ) -> StageTimes:
        """Predict stage times for a workload by linear unit-cost scaling.

        Args:
            num_events: Digitized events entering reconstruction.
            num_rings: Rings entering localization.

        Returns:
            A :class:`StageTimes`; at the nominal workload this reproduces
            the paper's table exactly.
        """
        if num_events < 0 or num_rings < 0:
            raise ValueError("workload counts must be non-negative")
        mean: dict[str, float] = {}
        rng: dict[str, tuple[float, float]] = {}
        for stage in STAGE_NAMES:
            if stage in self.events_stages:
                factor = num_events / PAPER_NOMINAL_EVENTS
            else:
                factor = num_rings / PAPER_NOMINAL_RINGS
            m = self.stage_mean_ms[stage] * factor
            lo, hi = self.stage_range_ms[stage]
            mean[stage] = m
            rng[stage] = (lo * factor, hi * factor)
        return StageTimes(mean_ms=mean, range_ms=rng)


#: Raspberry Pi 3B+ (paper Table I): 1.4 GHz quad Cortex-A53, 1 GB LPDDR2.
RPI3B_PLUS = PlatformModel(
    name="RPi 3B+",
    clock_ghz=1.4,
    cores=4,
    stage_mean_ms={
        "Reconstruction": 36.9,
        "Localization Setup": 35.4,
        "DEta NN Inference": 31.0,
        "Bkg NN Inference": 36.1,
        "Approx + Refine": 91.7,
    },
    stage_range_ms={
        "Reconstruction": (35.0, 44.0),
        "Localization Setup": (34.0, 99.0),
        "DEta NN Inference": (17.0, 41.0),
        "Bkg NN Inference": (22.0, 58.0),
        "Approx + Refine": (89.0, 107.0),
    },
)

#: WINSYSTEMS EBC-C413 (paper Table II): 1.92 GHz quad Atom E3845, 8 GB.
ATOM = PlatformModel(
    name="Atom",
    clock_ghz=1.92,
    cores=4,
    stage_mean_ms={
        "Reconstruction": 18.6,
        "Localization Setup": 12.1,
        "DEta NN Inference": 5.5,
        "Bkg NN Inference": 14.7,
        "Approx + Refine": 18.5,
    },
    stage_range_ms={
        "Reconstruction": (15.0, 26.0),
        "Localization Setup": (12.0, 13.0),
        "DEta NN Inference": (5.0, 6.0),
        "Bkg NN Inference": (14.0, 15.0),
        "Approx + Refine": (17.0, 21.0),
    },
)
