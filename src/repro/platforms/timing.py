"""Host-side stage timing of the actual Python pipeline.

Measures wall-clock milliseconds of each pipeline stage on the machine
running this reproduction.  Absolute values are incomparable to the
paper's C++/OpenMP implementation on embedded hardware; the point is (a)
the workload counts that feed :class:`~repro.platforms.platforms
.PlatformModel` and (b) the relative stage composition of *our*
implementation.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.obs import trace as obs_trace

from repro.detector.response import DetectorResponse
from repro.geometry.tiles import DetectorGeometry
from repro.localization.pipeline import localize_rings, prepare_rings
from repro.models.features import (
    azimuth_angle_of,
    extract_features,
    polar_angle_of,
)
from repro.pipeline.ml_pipeline import MLPipeline
from repro.reconstruction.ordering import order_hits
from repro.sources.background import BackgroundModel
from repro.sources.exposure import simulate_exposure
from repro.sources.grb import GRBSource


@dataclass
class StageTimer:
    """Accumulates named wall-clock intervals (milliseconds).

    Delegates interval measurement to :func:`repro.obs.trace.timed_span`,
    so platform timings share one clock (``time.perf_counter``) and event
    schema with campaign traces: when telemetry is enabled each stage also
    emits a ``platform.<name>`` span into the trace; when disabled only
    the local ``times_ms`` samples are kept, exactly as before.
    """

    times_ms: dict[str, list[float]] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str):
        """Context manager timing one interval under ``name``."""
        span = obs_trace.timed_span(f"platform.{name}")
        try:
            with span:
                yield
        finally:
            self.times_ms.setdefault(name, []).append(span.duration_ms)

    def mean_ms(self, name: str) -> float:
        """Mean recorded milliseconds of stage ``name``."""
        values = self.times_ms.get(name)
        if not values:
            raise KeyError(f"no samples for stage {name!r}")
        return float(np.mean(values))

    def range_ms(self, name: str) -> tuple[float, float]:
        """(min, max) recorded milliseconds of stage ``name``."""
        values = self.times_ms.get(name)
        if not values:
            raise KeyError(f"no samples for stage {name!r}")
        return float(np.min(values)), float(np.max(values))


@dataclass
class PipelineTimingResult:
    """One timed pipeline execution.

    Attributes:
        timer: Stage timings.
        num_events: Digitized events fed to reconstruction.
        num_rings: Rings that entered localization.
    """

    timer: StageTimer
    num_events: int
    num_rings: int


def time_pipeline_stages(
    geometry: DetectorGeometry,
    response: DetectorResponse,
    ml_pipeline: MLPipeline,
    rng: np.random.Generator,
    fluence_mev_cm2: float = 1.0,
    repeats: int = 5,
) -> PipelineTimingResult:
    """Time every stage of the ML pipeline on fresh simulated bursts.

    Stages mirror the paper's Table I/II rows: reconstruction (ordering +
    ring building + filters), localization setup (feature extraction),
    the two network inferences, and one approximation+refinement pass.

    Args:
        geometry: Detector geometry.
        response: Detector response.
        ml_pipeline: Trained pipeline (provides the two networks).
        rng: Random generator.
        fluence_mev_cm2: Burst brightness (paper: 1 MeV/cm^2, normal
            incidence).
        repeats: Independent timed bursts.

    Returns:
        A :class:`PipelineTimingResult` with per-stage samples and the
        final burst's workload counts.
    """
    timer = StageTimer()
    num_events = 0
    num_rings = 0
    for _ in range(repeats):
        grb = GRBSource(fluence_mev_cm2=fluence_mev_cm2, polar_angle_deg=0.0)
        exposure = simulate_exposure(geometry, rng, grb, BackgroundModel())
        events = response.digitize(
            exposure.transport, exposure.batch, rng, min_hits=2
        )
        num_events = events.num_events

        with timer.stage("Reconstruction"):
            order_hits(events)
            rings = prepare_rings(events)
        num_rings = rings.num_rings

        s_hat = np.array([0.0, 0.0, 1.0])
        with timer.stage("Localization Setup"):
            feats = extract_features(
                rings,
                events,
                polar_guess_deg=polar_angle_of(s_hat),
                azimuth_deg=azimuth_angle_of(s_hat),
            )
        with timer.stage("DEta NN Inference"):
            ml_pipeline.deta_net.predict_deta(feats)
        with timer.stage("Bkg NN Inference"):
            ml_pipeline.background_net.is_background(
                feats, polar_angle_of(s_hat)
            )
        with timer.stage("Approx + Refine"):
            localize_rings(rings, rng)
    return PipelineTimingResult(
        timer=timer, num_events=num_events, num_rings=num_rings
    )
