"""Event-rate capacity analysis (paper Section VI).

APT's "much larger detector demands event processing at a higher rate" —
this module quantifies what each platform can sustain.  Reconstruction
runs continuously on the event stream; localization bursts run when a
trigger fires.  The sustainable event rate is set by the per-event
reconstruction cost; the localization duty cycle then determines how much
headroom remains for triggers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platforms.platforms import (
    PAPER_NOMINAL_EVENTS,
    PlatformModel,
)


@dataclass(frozen=True)
class RateCapacity:
    """A platform's streaming capacity.

    Attributes:
        max_event_rate_hz: Events/s at which reconstruction alone
            saturates the platform.
        localization_ms: Full-pipeline latency (5 iterations + dEta) for
            one trigger at the nominal ring yield.
        triggers_per_second: Back-to-back localization throughput with no
            reconstruction load.
        utilization_at: Function-like mapping computed by
            :func:`rate_capacity` for requested rates.
    """

    max_event_rate_hz: float
    localization_ms: float
    triggers_per_second: float


def rate_capacity(platform: PlatformModel) -> RateCapacity:
    """Derive streaming capacity from a platform's calibrated costs.

    Args:
        platform: Calibrated platform model.

    Returns:
        A :class:`RateCapacity`.
    """
    times = platform.predict()
    recon_ms_per_event = times.mean_ms["Reconstruction"] / PAPER_NOMINAL_EVENTS
    max_event_rate = 1000.0 / recon_ms_per_event
    localization_ms = times.total_mean()
    return RateCapacity(
        max_event_rate_hz=max_event_rate,
        localization_ms=localization_ms,
        triggers_per_second=1000.0 / localization_ms,
    )


def utilization(
    platform: PlatformModel,
    event_rate_hz: float,
    triggers_per_hour: float = 0.0,
) -> float:
    """Fraction of the platform consumed by a given workload.

    Args:
        platform: Calibrated platform model.
        event_rate_hz: Continuous digitized-event rate.
        triggers_per_hour: Localization bursts per hour (each pays the
            full 5-iteration pipeline at the nominal ring yield).

    Returns:
        CPU utilization in [0, inf); > 1 means the platform cannot keep
        up.

    Raises:
        ValueError: For negative rates.
    """
    if event_rate_hz < 0 or triggers_per_hour < 0:
        raise ValueError("rates must be non-negative")
    cap = rate_capacity(platform)
    recon_load = event_rate_hz / cap.max_event_rate_hz
    trigger_load = (triggers_per_hour / 3600.0) * (cap.localization_ms / 1000.0)
    return recon_load + trigger_load


def max_sustainable_rate(
    platform: PlatformModel,
    triggers_per_hour: float = 10.0,
    headroom: float = 0.2,
) -> float:
    """Largest event rate keeping utilization below ``1 - headroom``.

    Args:
        platform: Calibrated platform model.
        triggers_per_hour: Expected localization bursts.
        headroom: Reserved capacity fraction.

    Returns:
        Sustainable continuous event rate, Hz.

    Raises:
        ValueError: If the trigger load alone exceeds the budget.
    """
    if not (0.0 <= headroom < 1.0):
        raise ValueError("headroom must be in [0, 1)")
    cap = rate_capacity(platform)
    budget = (1.0 - headroom) - (triggers_per_hour / 3600.0) * (
        cap.localization_ms / 1000.0
    )
    if budget <= 0:
        raise ValueError("trigger load alone exceeds the capacity budget")
    return budget * cap.max_event_rate_hz
