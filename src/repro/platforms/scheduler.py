"""Anytime scheduling: fit the iteration count to a latency budget.

The paper's iterative design is explicitly *anytime*: "If the system is
heavily loaded ... we may at any point halt and report the current source
direction."  This module turns that knob into a planner: given a
platform's calibrated cost model, the current workload, and a real-time
budget, it returns the largest number of background-rejection iterations
(and whether the dEta stage fits) that meets the deadline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platforms.platforms import PlatformModel


@dataclass(frozen=True)
class ExecutionPlan:
    """A schedule for one burst under a latency budget.

    Attributes:
        iterations: Background-rejection iterations to run (0 = report
            the initial estimate straight away).
        run_deta_stage: Whether the final dEta refinement fits.
        predicted_ms: Predicted total latency of the plan.
        budget_ms: The budget it was planned against.
    """

    iterations: int
    run_deta_stage: bool
    predicted_ms: float
    budget_ms: float

    @property
    def meets_budget(self) -> bool:
        return self.predicted_ms <= self.budget_ms


def plan_cost_ms(
    platform: PlatformModel,
    iterations: int,
    run_deta_stage: bool,
    num_events: int,
    num_rings: int,
) -> float:
    """Predicted latency of a plan, per the Tables I/II composition law.

    Mandatory work: reconstruction + localization setup + one
    approximation/refinement pass (the initial estimate).  Each iteration
    adds one background-network inference and one localization pass; the
    dEta stage adds its inference (its final refinement rides on the last
    iteration's localization pass in the paper's accounting — with 5
    iterations and the dEta stage this expression reproduces the tables'
    totals exactly).
    """
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    times = platform.predict(num_events=num_events, num_rings=num_rings)
    m = times.mean_ms
    cost = (
        m["Reconstruction"]
        + m["Localization Setup"]
        + m["Approx + Refine"]
        + iterations * (m["Bkg NN Inference"] + m["Approx + Refine"])
    )
    if run_deta_stage:
        cost += m["DEta NN Inference"]
    return cost


def plan_under_budget(
    platform: PlatformModel,
    budget_ms: float,
    num_events: int,
    num_rings: int,
    max_iterations: int = 5,
) -> ExecutionPlan:
    """Choose the richest plan that fits the budget.

    Preference order (accuracy-first, matching the paper's findings that
    the dEta stage mostly tightens the tail while iterations remove
    background): maximize iterations, then add the dEta stage if it still
    fits.  If even the mandatory work exceeds the budget, the returned
    plan has ``iterations=0``/no dEta and ``meets_budget`` False — the
    caller reports the initial estimate late rather than never.

    Args:
        platform: Calibrated platform cost model.
        budget_ms: Real-time latency budget.
        num_events: Digitized events in this exposure.
        num_rings: Rings entering localization.
        max_iterations: Iteration cap (paper: 5).

    Returns:
        An :class:`ExecutionPlan`.
    """
    if budget_ms <= 0:
        raise ValueError("budget must be positive")
    best = ExecutionPlan(
        iterations=0,
        run_deta_stage=False,
        predicted_ms=plan_cost_ms(platform, 0, False, num_events, num_rings),
        budget_ms=budget_ms,
    )
    for iterations in range(0, max_iterations + 1):
        for deta in (False, True):
            cost = plan_cost_ms(
                platform, iterations, deta, num_events, num_rings
            )
            if cost <= budget_ms:
                candidate = ExecutionPlan(
                    iterations=iterations,
                    run_deta_stage=deta,
                    predicted_ms=cost,
                    budget_ms=budget_ms,
                )
                better = (candidate.iterations, candidate.run_deta_stage) > (
                    best.iterations,
                    best.run_deta_stage,
                )
                if better or not best.meets_budget:
                    best = candidate
    return best
