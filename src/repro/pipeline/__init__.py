"""The ML-enhanced localization pipeline (paper Fig. 6)."""

from repro.pipeline.ml_pipeline import (
    MLPipeline,
    MLPipelineConfig,
    MLPipelineOutcome,
)

__all__ = ["MLPipeline", "MLPipelineConfig", "MLPipelineOutcome"]
