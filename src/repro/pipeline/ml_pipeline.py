"""The iterative ML localization pipeline of paper Fig. 6.

Because the networks take the source's polar angle as an input — and the
polar angle is only known once a source estimate exists — the models are
applied *in the middle* of localization:

1. Localize once without ML to get an initial estimate ``s_hat``.
2. Iterate (at most ``max_iterations``, paper: 5): compute the polar angle
   of ``s_hat``; classify every ring with the background network at that
   angle (per-bin threshold); drop the rings called background; re-localize
   the survivors seeded at ``s_hat``.  Stop early when the estimate stops
   moving.
3. Overwrite the survivors' ``d eta`` with the dEta network's prediction
   and run a final localization seeded at the last ``s_hat``.

The iteration is *anytime*: if the system is loaded, the loop can halt
after any step and report the current ``s_hat`` (`halt_after` exposes this
for the efficiency/accuracy trade-off study).

**Multi-hypothesis iteration.**  Classification given a *wrong* estimate
is self-reinforcing: the network keeps exactly the rings consistent with
that wrong direction, so the iteration polishes the wrong basin.  (We
verified this empirically: at a wrong seed, ~80% of true GRB rings get
discarded; at the true direction, ~30%.)  The pipeline therefore runs the
Fig. 6 iteration independently from a handful of initial hypotheses (the
baseline estimate plus the approximation stage's top candidate basins) and
keeps the hypothesis whose final direction best explains the *full* ring
population under a robust capped chi-square — the same anytime structure,
a constant factor more work, and immune to a bad first estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.detector.response import EventSet
from repro.localization.approximation import approximate_source
from repro.localization.hierarchy import SkymapConfig, hierarchical_skymap
from repro.localization.likelihood import capped_chi_square
from repro.localization.pipeline import (
    BaselineConfig,
    localize_rings,
    prepare_rings,
)
from repro.localization.skymap import SkyMap
from repro.infer.engine import InferRequest, evaluate_request
from repro.models.background import BackgroundNet
from repro.models.deta import DEtaNet
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.models.features import (
    azimuth_angle_of,
    extract_features,
    polar_angle_of,
)
from repro.reconstruction.rings import RingSet


@dataclass(frozen=True)
class MLPipelineConfig:
    """Parameters of the iterative scheme.

    Attributes:
        baseline: Underlying approximation/refinement parameters.
        max_iterations: Background-rejection iterations (paper: 5).
        convergence_deg: Stop iterating when the estimate moves less than
            this between iterations.
        min_rings: Never let background rejection leave fewer rings than
            this; if it would, the rings with *lowest* background
            probability are retained instead.
    """

    baseline: BaselineConfig = field(default_factory=BaselineConfig)
    max_iterations: int = 5
    convergence_deg: float = 0.5
    min_rings: int = 8
    #: Independent iteration hypotheses (see module docstring).
    num_hypotheses: int = 3
    #: Optional anytime accuracy target: halt iterating once the
    #: Fisher-information predicted 1-sigma error of the current estimate
    #: drops below this (paper: "if our models suggest that further
    #: iteration is not needed to achieve a given level of accuracy ...
    #: we may at any point halt").  None disables the check.
    accuracy_target_deg: float | None = None
    #: How the dEta network's output is applied: "replace" overwrites the
    #: propagated width wholesale (the paper's scheme); "widen_only"
    #: takes max(network, propagated) — conservative, protecting bright
    #: bursts where propagation is already adequate.
    deta_mode: str = "replace"
    #: Optional hierarchical sky-map stage: when set, every outcome
    #: carries a posterior :class:`~repro.localization.skymap.SkyMap`
    #: (68/90% credible regions) computed over the final surviving rings
    #: — pure NumPy, no extra network requests, so the InferRequest
    #: stream (and its bit-parity guarantees) is unchanged.  None
    #: (the default) skips the stage.
    skymap: SkymapConfig | None = None


@dataclass
class MLPipelineOutcome:
    """Result of the ML pipeline on one exposure.

    Attributes:
        direction: Final unit source direction (None if unlocalizable).
        iterations: Background-rejection iterations executed.
        converged: Whether the iteration stopped on the motion criterion.
        rings_in: Ring count entering the ML stage.
        rings_kept: Ring count surviving background rejection.
        background_removed_correct: Of the rings removed, how many were
            truly background (diagnostics).
        intermediate_directions: ``s_hat`` after each iteration (for the
            anytime-trade-off study).
        sky: Posterior sky map over the final ring set, when the
            pipeline config enables the skymap stage (None otherwise).
    """

    direction: np.ndarray | None
    iterations: int
    converged: bool
    rings_in: int
    rings_kept: int
    background_removed_correct: int
    intermediate_directions: list[np.ndarray]
    sky: SkyMap | None = None

    def error_degrees(self, true_direction: np.ndarray) -> float:
        """Angular error versus truth (180 for failed localizations)."""
        if self.direction is None:
            return 180.0
        c = float(np.clip(np.dot(self.direction, true_direction), -1.0, 1.0))
        return float(np.degrees(np.arccos(c)))


@dataclass
class MLPipeline:
    """Bundles the two networks with the localization machinery.

    Attributes:
        background_net: Trained background classifier.
        deta_net: Trained dEta regressor.
        config: Iteration parameters.
    """

    background_net: BackgroundNet
    deta_net: DEtaNet
    config: MLPipelineConfig = field(default_factory=MLPipelineConfig)

    def _classify_background(
        self, rings: RingSet, events: EventSet, s_hat: np.ndarray
    ):
        """Background mask over ``rings`` at a given direction estimate.

        A generator: yields one ``InferRequest`` for the ring features
        and receives the per-ring background probabilities from whatever
        engine is driving the loop; returns the boolean mask.  The
        probabilities are evaluated once and reused for the ``min_rings``
        fallback (bit-identical to thresholding and re-predicting — the
        features are unchanged).
        """
        polar_deg = polar_angle_of(s_hat)
        feats = extract_features(
            rings,
            events,
            polar_guess_deg=polar_deg,
            include_polar=self.background_net.include_polar,
            azimuth_deg=azimuth_angle_of(s_hat),
        )
        prob = yield InferRequest("background", feats)
        polar = np.full(prob.shape[0], float(polar_deg))
        mask = self.background_net.thresholds.classify(prob, polar)
        if (~mask).sum() < self.config.min_rings and rings.num_rings > 0:
            order = np.argsort(prob)
            mask = np.ones(rings.num_rings, dtype=bool)
            mask[order[: min(self.config.min_rings, rings.num_rings)]] = False
        return mask

    def _skymap(self, rings: RingSet) -> SkyMap | None:
        """Posterior map over the final ring set (None when disabled).

        Runs after the networks have cleaned the rings, so the map's
        credible regions reflect the ML-corrected ``d eta`` widths —
        this is what makes them calibratable (see docs/localization.md).
        """
        if self.config.skymap is None or rings.num_rings == 0:
            return None
        return hierarchical_skymap(rings, self.config.skymap).sky

    def _iterate(
        self,
        all_rings: RingSet,
        events: EventSet,
        seed_direction: np.ndarray,
        rng: np.random.Generator,
        halt_after: int | None,
    ):
        """One Fig. 6 background-rejection iteration chain from one seed.

        A generator (network evaluations arrive via ``yield from``);
        returns (final s_hat, survivors, iterations, converged,
        intermediate directions).
        """
        cfg = self.config
        s_hat = np.asarray(seed_direction, dtype=np.float64)
        survivors = all_rings
        intermediates: list[np.ndarray] = []
        converged = False
        iterations = 0
        for iterations in range(1, cfg.max_iterations + 1):
            obs_metrics.inc("ml.iterations")
            with obs_trace.span("ml.iteration"):
                bkg_mask = yield from self._classify_background(
                    all_rings, events, s_hat
                )
                survivors = all_rings.select(~bkg_mask)
                outcome = localize_rings(
                    survivors, rng, cfg.baseline, initial=s_hat
                )
            if outcome.direction is None:
                break
            step = np.degrees(
                np.arccos(np.clip(np.dot(s_hat, outcome.direction), -1.0, 1.0))
            )
            s_hat = outcome.direction
            intermediates.append(s_hat)
            if halt_after is not None and iterations >= halt_after:
                break
            if step < cfg.convergence_deg:
                converged = True
                break
            if cfg.accuracy_target_deg is not None:
                from repro.localization.uncertainty import predicted_error_deg

                predicted = predicted_error_deg(
                    survivors, s_hat, used=outcome.used
                )
                if predicted <= cfg.accuracy_target_deg:
                    converged = True
                    break
        return s_hat, survivors, iterations, converged, intermediates

    def localize_requests(
        self,
        events: EventSet,
        rng: np.random.Generator,
        halt_after: int | None = None,
    ):
        """The Fig. 6 loop as a request generator (advanced coroutine API).

        Yields :class:`~repro.infer.engine.InferRequest` items whenever a
        network evaluation is needed and expects the prediction array
        back via ``send``; the final :class:`MLPipelineOutcome` is the
        generator's return value (``StopIteration.value``).  This is the
        seam the batched campaign front-end
        (:func:`repro.infer.localize_many`) uses to gather feature blocks
        across many events into one planned pass per round — all
        localization math and RNG draws stay inside the generator, in
        exactly the order of a solo run.

        Args:
            events: Digitized events.
            rng: Random generator (approximation sampling).
            halt_after: Anytime knob — stop after this many
                background-rejection iterations (skipping the dEta stage)
                and report the current estimate; None runs to completion.
        """
        cfg = self.config
        all_rings = prepare_rings(events, cfg.baseline)
        initial = localize_rings(all_rings, rng, cfg.baseline)
        if initial.direction is None:
            return MLPipelineOutcome(
                direction=None,
                iterations=0,
                converged=False,
                rings_in=all_rings.num_rings,
                rings_kept=all_rings.num_rings,
                background_removed_correct=0,
                intermediate_directions=[],
            )

        # Hypothesis seeds: the baseline estimate plus the approximation
        # stage's top mutually-separated candidate basins.
        seeds: list[np.ndarray] = [initial.direction]
        extra = approximate_source(
            all_rings,
            rng,
            sample_size=cfg.baseline.approx_sample_size,
            n_azimuth=cfg.baseline.approx_n_azimuth,
            top_k=cfg.num_hypotheses,
        )
        if extra is not None:
            for s in np.atleast_2d(extra):
                if all(
                    np.degrees(np.arccos(np.clip(float(s @ t), -1.0, 1.0))) > 5.0
                    for t in seeds
                ):
                    seeds.append(s)
        seeds = seeds[: cfg.num_hypotheses]

        best: tuple | None = None
        best_score = np.inf
        for seed_dir in seeds:
            result = yield from self._iterate(
                all_rings, events, seed_dir, rng, halt_after
            )
            score = float(
                capped_chi_square(all_rings, result[0][None, :], cap=4.0)[0]
            )
            if score < best_score:
                best_score = score
                best = result
        assert best is not None
        s_hat, survivors, iterations, converged, intermediates = best

        removed = all_rings.num_rings - survivors.num_rings
        removed_correct = 0
        if removed > 0:
            bkg_mask = yield from self._classify_background(
                all_rings, events, s_hat
            )
            removed_correct = int(np.sum(bkg_mask & (all_rings.labels == 1)))

        if halt_after is not None and not converged:
            return MLPipelineOutcome(
                direction=s_hat,
                iterations=iterations,
                converged=converged,
                rings_in=all_rings.num_rings,
                rings_kept=survivors.num_rings,
                background_removed_correct=removed_correct,
                intermediate_directions=intermediates,
                sky=self._skymap(survivors),
            )

        # dEta stage: overwrite survivors' ring widths, re-localize from
        # the last estimate.
        if survivors.num_rings > 0:
            feats = extract_features(
                survivors,
                events,
                polar_guess_deg=polar_angle_of(s_hat),
                include_polar=self.deta_net.include_polar,
                azimuth_deg=azimuth_angle_of(s_hat),
            )
            predicted = yield InferRequest("deta", feats)
            if cfg.deta_mode == "widen_only":
                predicted = np.maximum(predicted, survivors.deta)
            elif cfg.deta_mode != "replace":
                raise ValueError(
                    f"unknown deta_mode {cfg.deta_mode!r}; use 'replace' or "
                    f"'widen_only'"
                )
            survivors = survivors.with_deta(predicted)
            final = localize_rings(survivors, rng, cfg.baseline, initial=s_hat)
            if final.direction is not None:
                s_hat = final.direction

        return MLPipelineOutcome(
            direction=s_hat,
            iterations=iterations,
            converged=converged,
            rings_in=all_rings.num_rings,
            rings_kept=survivors.num_rings,
            background_removed_correct=removed_correct,
            intermediate_directions=intermediates,
            sky=self._skymap(survivors),
        )

    def _evaluate(self, request, engine) -> np.ndarray:
        """Answer one inference request (eager bundles when no engine)."""
        if engine is not None:
            return evaluate_request(engine, request)
        if request.kind == "background":
            return self.background_net.predict_proba(request.features)
        if request.kind == "deta":
            return self.deta_net.predict_deta(request.features)
        raise ValueError(f"unknown request kind {request.kind!r}")

    @obs_trace.traced("ml.localize")
    def localize(
        self,
        events: EventSet,
        rng: np.random.Generator,
        halt_after: int | None = None,
        engine=None,
    ) -> MLPipelineOutcome:
        """Run the full Fig. 6 pipeline on one exposure's events.

        Args:
            events: Digitized events.
            rng: Random generator (approximation sampling).
            halt_after: Anytime knob — stop after this many
                background-rejection iterations (skipping the dEta stage)
                and report the current estimate; None runs to completion.
            engine: Inference backend answering the network requests
                (see :func:`repro.infer.build_engine`); None evaluates
                the bundles eagerly — the reference path.  The default
                planned engine is bit-identical to the reference on
                per-event blocks (pinned by ``tests/infer``).

        Returns:
            An :class:`MLPipelineOutcome`.
        """
        gen = self.localize_requests(events, rng, halt_after=halt_after)
        try:
            request = next(gen)
            while True:
                request = gen.send(self._evaluate(request, engine))
        except StopIteration as stop:
            return stop.value
