"""Explicit random-generator threading helpers.

The repository's reproducibility contract (see ``docs/performance.md``
and reprolint rules RNG001/RNG002) is that randomness flows from one
campaign ``SeedSequence`` down through explicit
``rng: np.random.Generator`` parameters.  :func:`require_rng` is the one
sanctioned escape hatch for interactive/exploratory use: omitting the
generator is *loud* (a :class:`MissingRngWarning`), so an unthreaded rng
can never silently masquerade as a seeded campaign.
"""

from __future__ import annotations

import warnings

import numpy as np


class MissingRngWarning(UserWarning):
    """Warns that a component minted its own fallback random generator.

    Raised-as-warning by :func:`require_rng` when a caller omitted the
    ``rng`` argument.  Campaign code must never trigger this: every draw
    is supposed to trace back to the campaign ``SeedSequence``.
    """


#: Seed of the fallback generator minted by :func:`require_rng`.
FALLBACK_SEED = 0


def require_rng(
    rng: np.random.Generator | None, owner: str
) -> np.random.Generator:
    """Return ``rng``, or warn and mint a deterministic fallback.

    Args:
        rng: The caller-threaded generator, or None when omitted.
        owner: Human-readable name of the component asking (used in the
            warning so the unthreaded call site is identifiable).

    Returns:
        ``rng`` unchanged when provided; otherwise a fresh generator
        seeded with :data:`FALLBACK_SEED`, after emitting a
        :class:`MissingRngWarning`.
    """
    if rng is not None:
        return rng
    warnings.warn(
        f"{owner}: no rng passed; drawing from a fixed fallback generator "
        f"(seed {FALLBACK_SEED}). Thread the campaign Generator for "
        "reproducible results.",
        MissingRngWarning,
        stacklevel=3,
    )
    # The fallback is deliberately constant-seeded so exploratory use is
    # at least repeatable; the warning above keeps it out of campaigns.
    return np.random.default_rng(FALLBACK_SEED)  # reprolint: disable=RNG001 -- sanctioned fallback, guarded by MissingRngWarning