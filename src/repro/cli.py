"""Command-line interface.

The subcommands cover the common workflows without writing any Python:

* ``python -m repro.cli simulate`` — one burst, baseline localization.
* ``python -m repro.cli train`` — run the training campaign, train both
  networks, and save the pipeline to disk.
* ``python -m repro.cli localize`` — load a trained pipeline and run
  ML-pipeline trials at a chosen experimental point.
* ``python -m repro.cli figure`` — reproduce one paper figure.
* ``python -m repro.cli serve`` — stream simulated event-set chunks
  through the micro-batching localization server (docs/serving.md).
* ``python -m repro.cli serve-load`` — closed-loop load generator:
  sustained req/s and latency percentiles at N concurrent clients.
* ``python -m repro.cli trace-summary`` — render the per-stage table of a
  trace captured with ``--trace`` (``--json`` for the machine form).
* ``python -m repro.cli profile-summary`` — render the sampling-profiler
  tables of a trace captured with ``--trace --profile`` (``--folded``
  writes flamegraph input).

Campaign subcommands (``train``, ``localize``, ``figure``) accept
``--workers N`` to fan Monte-Carlo exposures/trials out over the
persistent campaign executor, plus the crash-recovery knobs
``--max-retries`` (chunk redispatches after a worker crash) and
``--task-timeout`` (soft per-task timeout before a hung worker is killed
and its chunk retried).  Every workload subcommand accepts
``--trace out.jsonl`` (record a telemetry trace, merged across worker
processes) and ``--quiet`` (suppress stderr status lines; stdout carries
only machine-readable results).  On top of a trace, ``--profile``
samples every process's stacks (``--profile-hz`` sets the rate) and
``--resources`` records RSS/CPU/GC/shm gauges; independently of
tracing, ``--metrics-out live.jsonl`` streams cumulative registry
snapshots every ``--metrics-interval`` seconds while the command runs.

``localize`` and ``figure`` additionally accept
``--infer-backend {reference,planned,int8}`` to select the inference
runtime (see docs/inference.md), and ``localize`` accepts
``--event-batch N`` to gather ring features across N events into one
planned forward pass per localization round.

``simulate`` and ``localize`` accept the sky-map family
(docs/localization.md): ``--skymap`` attaches the hierarchical
coarse-to-fine posterior map, ``--skymap-resolution DEG`` sets its
target pixel scale and ``--skymap-temperature T`` the likelihood
temperature (fit via ``scripts/bench_report.py --skymap``).  On
``simulate`` the credible-region areas are printed for the one burst;
on ``localize`` the trial campaign becomes a containment-calibration
campaign reporting observed 68%/90% coverage and median region areas.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.obs import log


def _skymap_config(args: argparse.Namespace):
    """Build a ``SkymapConfig`` from the ``--skymap`` flag family.

    Returns ``None`` when ``--skymap`` was not passed, which keeps the
    localization paths on their map-free default.
    """
    if not getattr(args, "skymap", False):
        return None
    from repro.localization.hierarchy import SkymapConfig

    return SkymapConfig(
        resolution_deg=args.skymap_resolution,
        temperature=args.skymap_temperature,
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.detector.response import DetectorResponse
    from repro.geometry.tiles import adapt_geometry
    from repro.localization.pipeline import localize_baseline
    from repro.sources.background import BackgroundModel
    from repro.sources.exposure import simulate_exposure
    from repro.sources.grb import GRBSource

    geometry = adapt_geometry()
    response = DetectorResponse(geometry)
    rng = np.random.default_rng(args.seed)
    grb = GRBSource(
        fluence_mev_cm2=args.fluence,
        polar_angle_deg=args.polar,
        azimuth_deg=args.azimuth,
    )
    log.status(f"simulating one burst (fluence {args.fluence}, "
               f"polar {args.polar} deg, seed {args.seed})")
    exposure = simulate_exposure(geometry, rng, grb, BackgroundModel())
    events = response.digitize(
        exposure.transport, exposure.batch, rng, min_hits=2
    )
    outcome = localize_baseline(events, rng, skymap=_skymap_config(args))
    log.result(
        f"photons={exposure.batch.num_photons} events={events.num_events} "
        f"rings={outcome.rings.num_rings}"
    )
    log.result(f"localization error: "
               f"{outcome.error_degrees(grb.source_direction):.2f} deg")
    if outcome.sky is not None:
        sky = outcome.sky
        log.result(
            f"credible regions: 68% = "
            f"{sky.credible_region_area_deg2(0.68):.2f} deg^2, 90% = "
            f"{sky.credible_region_area_deg2(0.90):.2f} deg^2 "
            f"(truth inside 90%: {sky.contains(grb.source_direction, 0.9)})"
        )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.experiments.datasets import generate_training_rings
    from repro.experiments.modelzoo import train_models
    from repro.detector.response import DetectorResponse
    from repro.geometry.tiles import adapt_geometry
    from repro.io.datasets import save_pipeline

    geometry = adapt_geometry()
    response = DetectorResponse(geometry)
    log.status(f"generating training rings "
               f"({args.exposures_per_angle} exposures/angle, "
               f"{args.workers} workers)")
    data = generate_training_rings(
        geometry,
        response,
        seed=args.seed,
        exposures_per_angle=args.exposures_per_angle,
        n_workers=args.workers,
    )
    log.status(f"training both networks on {data.num_rings} rings")
    models = train_models(
        geometry=geometry,
        response=response,
        seed=args.seed,
        exposures_per_angle=args.exposures_per_angle,
        data=data,
    )
    save_pipeline(models.pipeline, args.output)
    log.result(f"trained on {models.data.num_rings} rings; "
               f"pipeline saved to {args.output}")
    return 0


def _cmd_localize(args: argparse.Namespace) -> int:
    from repro.detector.response import DetectorResponse
    from repro.experiments.containment import containment
    from repro.experiments.trials import TrialConfig, run_trials
    from repro.geometry.tiles import adapt_geometry
    from repro.io.datasets import load_pipeline

    pipeline = load_pipeline(args.pipeline)
    geometry = adapt_geometry()
    response = DetectorResponse(geometry)
    config = TrialConfig(
        fluence_mev_cm2=args.fluence,
        polar_angle_deg=args.polar,
        condition="ml",
        infer_backend=args.infer_backend,
        infer_dtype=args.infer_dtype,
        event_batch=args.event_batch,
    )
    if args.skymap:
        from repro.experiments.calibration import run_calibration

        log.status(f"running {args.trials} ML calibration trials "
                   f"({args.workers} workers, seed {args.seed})")
        report = run_calibration(
            geometry,
            response,
            seed=args.seed,
            n_trials=args.trials,
            config=config,
            skymap=_skymap_config(args),
            ml_pipeline=pipeline,
            n_workers=args.workers,
        )
        s = report.summary()
        log.result(f"{args.trials} trials at {args.fluence} MeV/cm^2, "
                   f"polar {args.polar} deg "
                   f"(T={args.skymap_temperature}):")
        log.result(f"  median error: {s['median_error_deg']:.2f} deg")
        log.result(f"  68% region: observed coverage {s['fraction68']:.2f}, "
                   f"median area {s['median_area68_deg2']:.2f} deg^2")
        log.result(f"  90% region: observed coverage {s['fraction90']:.2f}, "
                   f"median area {s['median_area90_deg2']:.2f} deg^2")
        return 0
    log.status(f"running {args.trials} ML trials "
               f"({args.workers} workers, seed {args.seed})")
    errors = run_trials(
        geometry,
        response,
        seed=args.seed,
        n_trials=args.trials,
        config=config,
        ml_pipeline=pipeline,
        n_workers=args.workers,
    )
    log.result(f"{args.trials} trials at {args.fluence} MeV/cm^2, "
               f"polar {args.polar} deg:")
    log.result(f"  68% containment: {containment(errors, 0.68):.2f} deg")
    log.result(f"  95% containment: {containment(errors, 0.95):.2f} deg")
    return 0


#: Figure name -> (driver, printer) from repro.experiments.figures.
FIGURES = ("fig4", "fig7", "fig8", "fig9", "fig10", "fig11")


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments import figures

    scale = figures.ExperimentScale(
        n_trials=args.trials,
        n_meta=args.meta,
        seed=args.seed,
        n_workers=args.workers,
        cache=args.cache if args.cache else None,
        infer_backend=args.infer_backend,
        infer_dtype=args.infer_dtype,
    )
    number = args.name.removeprefix("fig")
    driver = getattr(figures, f"figure{number}")
    printer = getattr(figures, f"print_figure{number}")
    log.status(f"reproducing {args.name} ({args.trials} trials x "
               f"{args.meta} meta, {args.workers} workers)")
    printer(driver(scale=scale))
    return 0


def _build_serve_parts(args: argparse.Namespace):
    from repro.infer import build_engine
    from repro.io.datasets import load_pipeline
    from repro.serve import BatchPolicy, ServeConfig

    pipeline = load_pipeline(args.pipeline)
    engine = build_engine(pipeline, "planned", dtype=args.infer_dtype)
    config = ServeConfig(
        queue_limit=args.queue_limit,
        policy=BatchPolicy(
            max_rows=args.max_rows,
            max_requests=args.max_requests,
            deadline_s=args.deadline_ms / 1e3,
        ),
    )
    return pipeline, engine, config


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import LocalizationServer, synthetic_event_pool

    pipeline, engine, config = _build_serve_parts(args)
    log.status(f"simulating {args.chunks} chunks x {args.chunk_size} "
               f"event sets (seed {args.seed})")
    pool = synthetic_event_pool(
        args.chunks * args.chunk_size, args.seed,
        fluence=args.fluence, polar_deg=args.polar,
    )
    rng_seqs = np.random.SeedSequence(args.seed + 1).spawn(len(pool))
    chunks = [
        [(pool[c * args.chunk_size + i],
          np.random.default_rng(rng_seqs[c * args.chunk_size + i]))
         for i in range(args.chunk_size)]
        for c in range(args.chunks)
    ]
    log.status(f"serving (deadline {args.deadline_ms} ms, "
               f"max {args.max_requests} requests/batch, "
               f"queue limit {config.queue_limit})")

    async def _stream():
        server = LocalizationServer(pipeline, engine=engine, config=config)
        async with server:
            n = 0
            async for results in server.localize_stream(
                chunks, halt_after=args.halt_after
            ):
                n += 1
                log.result(f"chunk {n}: {len(results)} localizations")
        return server.stats()

    stats = asyncio.run(_stream())
    rounds = stats["rounds"]
    mean_rows = stats["rows_flushed"] / rounds if rounds else 0.0
    reasons = ", ".join(
        f"{k}={v}" for k, v in sorted(stats["flush_reasons"].items())
    ) or "none"
    log.result(f"served {stats['admission']['accepted']} requests in "
               f"{rounds} fused rounds "
               f"(mean {mean_rows:.1f} rows/round; flushes: {reasons})")
    return 0


def _cmd_serve_load(args: argparse.Namespace) -> int:
    import json

    from repro.serve import run_load, synthetic_event_pool

    pipeline, engine, config = _build_serve_parts(args)
    log.status(f"simulating event pool ({args.pool} sets, seed {args.seed})")
    pool = synthetic_event_pool(
        args.pool, args.seed, fluence=args.fluence, polar_deg=args.polar
    )
    log.status(f"load: {args.clients} clients x {args.requests} requests "
               f"(deadline {args.deadline_ms} ms)")
    report = run_load(
        pipeline,
        pool,
        seed=args.seed + 1,
        n_clients=args.clients,
        requests_per_client=args.requests,
        engine=engine,
        config=config,
        halt_after=args.halt_after,
    )
    if args.json:
        log.result(json.dumps(report.to_dict(), indent=2))
        return 0
    log.result(f"{report.completed} requests in {report.wall_s:.2f} s: "
               f"{report.req_per_s:.1f} req/s")
    log.result(f"  latency p50/p95/p99/max: {report.p50_ms:.1f} / "
               f"{report.p95_ms:.1f} / {report.p99_ms:.1f} / "
               f"{report.max_ms:.1f} ms")
    log.result(f"  batching: {report.rounds} rounds, "
               f"mean {report.mean_batch_rows:.1f} rows/round")
    return 0


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    import json

    from repro.obs.summary import summary_dict
    from repro.obs.trace import load_jsonl

    if args.json:
        log.result(json.dumps(summary_dict(load_jsonl(args.trace_file)),
                              indent=2))
        return 0
    from repro.obs.summary import render_file

    log.result(render_file(args.trace_file))
    return 0


def _cmd_profile_summary(args: argparse.Namespace) -> int:
    from repro.obs import profile
    from repro.obs.trace import load_jsonl

    events = load_jsonl(args.trace_file)
    log.result(profile.render_table(events, top=args.top))
    if args.folded:
        n = profile.write_folded(events, args.folded)
        log.status(f"profile: {n} folded stacks written to {args.folded}")
    return 0


def _add_common_flags(p: argparse.ArgumentParser) -> None:
    """Telemetry/verbosity flags shared by every workload subcommand."""
    p.add_argument("--trace", metavar="OUT.JSONL", default=None,
                   help="record a telemetry trace (spans + metrics, merged "
                        "across workers) to this JSONL file")
    p.add_argument("--profile", action="store_true",
                   help="sample python stacks in every process while the "
                        "command runs (requires --trace; render with "
                        "`repro profile-summary`)")
    p.add_argument("--profile-hz", type=float, default=None, metavar="HZ",
                   help="profiler sampling rate (default 100; implies "
                        "--profile)")
    p.add_argument("--resources", action="store_true",
                   help="record RSS/CPU/GC/shm gauges in every process "
                        "(requires --trace)")
    p.add_argument("--metrics-out", metavar="LIVE.JSONL", default=None,
                   help="stream cumulative metric snapshots to this JSONL "
                        "file while the command runs")
    p.add_argument("--metrics-interval", type=float, default=1.0,
                   metavar="SEC",
                   help="seconds between --metrics-out flushes (default 1)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress stderr status output")


def _add_serve_flags(p: argparse.ArgumentParser) -> None:
    """Pipeline/batching knobs shared by ``serve`` and ``serve-load``."""
    p.add_argument("--pipeline", default="pipeline.pkl",
                   help="trained pipeline file")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--fluence", type=float, default=0.6,
                   help="simulated burst fluence, MeV/cm^2")
    p.add_argument("--polar", type=float, default=30.0,
                   help="simulated source polar angle, degrees")
    p.add_argument("--deadline-ms", dest="deadline_ms", type=float,
                   default=2.0, metavar="MS",
                   help="micro-batch coalescing deadline: the oldest "
                        "pending request waits at most this long before "
                        "a flush (default 2 ms)")
    p.add_argument("--max-requests", dest="max_requests", type=int,
                   default=64, metavar="N",
                   help="flush as soon as N requests are pending "
                        "(default 64)")
    p.add_argument("--max-rows", dest="max_rows", type=int, default=65536,
                   metavar="N",
                   help="flush as soon as N feature rows are pending "
                        "(default 65536)")
    p.add_argument("--queue-limit", dest="queue_limit", type=int,
                   default=256, metavar="N",
                   help="admission limit on in-flight requests "
                        "(default 256)")
    p.add_argument("--halt-after", dest="halt_after", type=int, default=None,
                   metavar="N",
                   help="anytime knob: stop each localization after N "
                        "refinement iterations")
    p.add_argument("--infer-dtype", dest="infer_dtype",
                   choices=("float32", "float64"), default="float64",
                   help="planned-engine compute dtype")


def _add_skymap_flags(p: argparse.ArgumentParser) -> None:
    """Hierarchical sky-map knobs shared by ``simulate`` and ``localize``."""
    p.add_argument("--skymap", action="store_true",
                   help="attach the hierarchical coarse-to-fine posterior "
                        "sky map with 68%%/90%% credible regions "
                        "(docs/localization.md)")
    p.add_argument("--skymap-resolution", dest="skymap_resolution",
                   type=float, default=0.5, metavar="DEG",
                   help="target pixel scale of the refined map "
                        "(default 0.5 deg)")
    p.add_argument("--skymap-temperature", dest="skymap_temperature",
                   type=float, default=1.0, metavar="T",
                   help="likelihood temperature; >1 widens the regions "
                        "toward honest coverage (fit one with "
                        "`scripts/bench_report.py --skymap`; default 1.0)")


def _add_fault_flags(p: argparse.ArgumentParser) -> None:
    """Crash-recovery knobs for subcommands that fan out over workers."""
    p.add_argument("--max-retries", type=int, default=None, metavar="N",
                   help="redispatches allowed per chunk after a worker "
                        "crash before the campaign fails (default 2)")
    p.add_argument("--task-timeout", type=float, default=None, metavar="SEC",
                   help="soft per-task timeout; a chunk of k tasks may run "
                        "k*SEC seconds before its worker is killed and the "
                        "chunk retried (default: no timeout)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ADAPT GRB-localization reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="simulate and localize one burst")
    p.add_argument("--fluence", type=float, default=1.0,
                   help="burst fluence, MeV/cm^2")
    p.add_argument("--polar", type=float, default=0.0,
                   help="source polar angle, degrees")
    p.add_argument("--azimuth", type=float, default=0.0,
                   help="source azimuth, degrees")
    p.add_argument("--seed", type=int, default=0)
    _add_skymap_flags(p)
    _add_common_flags(p)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("train", help="train the two networks")
    p.add_argument("--output", default="pipeline.pkl",
                   help="output pipeline file")
    p.add_argument("--exposures-per-angle", type=int, default=20)
    p.add_argument("--seed", type=int, default=2024)
    p.add_argument("--workers", type=int, default=1,
                   help="campaign fan-out over worker processes")
    _add_fault_flags(p)
    _add_common_flags(p)
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("localize", help="run ML-pipeline trials")
    p.add_argument("--pipeline", default="pipeline.pkl",
                   help="trained pipeline file")
    p.add_argument("--fluence", type=float, default=1.0)
    p.add_argument("--polar", type=float, default=0.0)
    p.add_argument("--trials", type=int, default=20)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--workers", type=int, default=1,
                   help="trial fan-out over worker processes")
    p.add_argument("--infer-backend", dest="infer_backend",
                   choices=("reference", "planned", "int8"),
                   default="reference",
                   help="inference backend: eager reference bundles, "
                        "compiled plans (bit-identical per event), or the "
                        "INT8 integer path (quantized pipelines only)")
    p.add_argument("--infer-dtype", dest="infer_dtype",
                   choices=("float32", "float64"), default="float64",
                   help="float-plan compute dtype for non-reference "
                        "backends: float64 keeps bit-parity with eager, "
                        "float32 is the faster deployment dtype")
    p.add_argument("--event-batch", dest="event_batch", type=int, default=1,
                   metavar="N",
                   help="localize N events per lock-step batched inference "
                        "group (1 = per-event, the bit-identical default)")
    _add_skymap_flags(p)
    _add_fault_flags(p)
    _add_common_flags(p)
    p.set_defaults(func=_cmd_localize)

    p = sub.add_parser("figure", help="reproduce one paper figure")
    p.add_argument("name", choices=FIGURES,
                   help="which figure to reproduce")
    p.add_argument("--trials", type=int, default=30,
                   help="trials per experimental point")
    p.add_argument("--meta", type=int, default=2,
                   help="meta-trials for error bars")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--workers", type=int, default=1,
                   help="trial fan-out over worker processes")
    _add_fault_flags(p)
    p.add_argument("--infer-backend", dest="infer_backend",
                   choices=("reference", "planned", "int8"),
                   default="reference",
                   help="inference backend for ML-condition points")
    p.add_argument("--infer-dtype", dest="infer_dtype",
                   choices=("float32", "float64"), default="float64",
                   help="float-plan compute dtype for non-reference "
                        "backends")
    p.add_argument("--cache", action="store_true",
                   help="cache trial sets in .campaign_cache/")
    _add_common_flags(p)
    p.set_defaults(func=_cmd_figure)

    p = sub.add_parser(
        "serve",
        help="stream simulated event chunks through the batching server",
    )
    p.add_argument("--chunks", type=int, default=4,
                   help="stream chunks to serve (default 4)")
    p.add_argument("--chunk-size", dest="chunk_size", type=int, default=4,
                   help="concurrent event sets per chunk (default 4)")
    _add_serve_flags(p)
    _add_common_flags(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "serve-load",
        help="closed-loop load benchmark against the batching server",
    )
    p.add_argument("--clients", type=int, default=8,
                   help="concurrent closed-loop clients (default 8)")
    p.add_argument("--requests", type=int, default=4,
                   help="sequential requests per client (default 4)")
    p.add_argument("--pool", type=int, default=8, metavar="N",
                   help="pre-simulated event sets cycled through "
                        "round-robin (default 8)")
    p.add_argument("--json", action="store_true",
                   help="emit the full LoadReport as JSON")
    _add_serve_flags(p)
    _add_common_flags(p)
    p.set_defaults(func=_cmd_serve_load)

    p = sub.add_parser(
        "trace-summary",
        help="render the per-stage table of a --trace JSONL file",
    )
    p.add_argument("trace_file", help="trace file written by --trace")
    p.add_argument("--json", action="store_true",
                   help="emit the summary as JSON (stages, coverage, "
                        "counters, gauges, histograms) instead of a table")
    p.add_argument("--quiet", action="store_true",
                   help="suppress stderr status output")
    p.set_defaults(func=_cmd_trace_summary)

    p = sub.add_parser(
        "profile-summary",
        help="render the sampling-profiler tables of a --trace --profile "
             "JSONL file",
    )
    p.add_argument("trace_file", help="trace file written by --trace "
                                      "--profile")
    p.add_argument("--top", type=int, default=15, metavar="N",
                   help="functions shown in the flat self-time table "
                        "(default 15)")
    p.add_argument("--folded", metavar="OUT.TXT", default=None,
                   help="also write merged folded stacks ('stack count' "
                        "lines) for flamegraph/speedscope tooling")
    p.add_argument("--quiet", action="store_true",
                   help="suppress stderr status output")
    p.set_defaults(func=_cmd_profile_summary)
    return parser


def _run_with_telemetry(args: argparse.Namespace) -> int:
    """Run one workload command under the requested telemetry stack.

    ``--trace`` enables the span tracer and metrics registry around the
    command (root span ``cli.<command>``) and writes the merged JSONL
    trace afterwards; ``--profile`` / ``--resources`` additionally run
    the sampling profiler and resource monitor (mirrored into workers);
    ``--metrics-out`` streams registry snapshots while the command runs.
    """
    import repro.obs as obs

    trace_path = args.trace
    profile_hz = getattr(args, "profile_hz", None)
    want_profile = bool(getattr(args, "profile", False) or profile_hz)
    want_resources = bool(getattr(args, "resources", False))
    metrics_out = getattr(args, "metrics_out", None)

    obs.enable()
    stream = None
    try:
        if want_profile:
            obs.profile.start(hz=profile_hz or obs.profile.DEFAULT_HZ)
        if want_resources:
            obs.resources.start()
        if metrics_out is not None:
            stream = obs.export.MetricsStream(
                metrics_out, interval_s=args.metrics_interval
            )
            stream.start()
        with obs.span(f"cli.{args.command}"):
            rc = args.func(args)
        obs.profile.PROFILER.stop()
        obs.resources.MONITOR.stop()
        if trace_path is not None:
            extra = obs.metric_events() + obs.profile.profile_events()
            n = obs.flush_jsonl(trace_path, extra_events=extra)
            log.status(f"trace: {n} events written to {trace_path} "
                       f"(render with `repro trace-summary {trace_path}`)")
    finally:
        if stream is not None:
            stream.stop()
            log.status(f"metrics: {stream.lines_written} snapshots "
                       f"streamed to {metrics_out}")
        obs.disable()
    return rc


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Handles the cross-cutting flags: the telemetry family (``--trace``,
    ``--profile``, ``--resources``, ``--metrics-out`` — see
    :func:`_run_with_telemetry`), the executor fault knobs, and
    ``--quiet`` (silences stderr status lines).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    log.set_quiet(getattr(args, "quiet", False))
    if (getattr(args, "profile", False) or getattr(args, "profile_hz", None)
            or getattr(args, "resources", False)) \
            and getattr(args, "trace", None) is None:
        parser.error("--profile/--resources require --trace (their output "
                     "rides the trace file)")
    if getattr(args, "max_retries", None) is not None \
            or getattr(args, "task_timeout", None) is not None:
        from repro.parallel import executor as campaign_executor

        kwargs = {}
        if args.max_retries is not None:
            kwargs["max_retries"] = args.max_retries
        if args.task_timeout is not None:
            kwargs["task_timeout"] = args.task_timeout
        campaign_executor.configure(**kwargs)
    try:
        if getattr(args, "trace", None) is None \
                and getattr(args, "metrics_out", None) is None:
            return args.func(args)
        return _run_with_telemetry(args)
    except BrokenPipeError:
        # The stdout consumer went away (`repro trace-summary ... | head`).
        # Point stdout at devnull so interpreter shutdown doesn't complain,
        # and exit with the conventional SIGPIPE-ish success for filters.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
