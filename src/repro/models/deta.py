"""The dEta regression network (paper Section III, Fig. 5).

Predicts the *natural log* of a ring's true ``eta`` uncertainty from the
same 13 features as the background network; the log keeps the target's
several-orders-of-magnitude range tractable for an L2 loss.  The tuned
architecture mirrors the paper: four FC layers with a maximum width of 16
in the middle and narrower ends, batch size 256, learning rate 4.375e-3.

Background rings are removed from the training set (the paper does the
same — a background ring has no meaningful ``eta`` error w.r.t. the GRB).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.data import StandardScaler, train_val_test_split
from repro.nn.layers import BatchNorm1d, Linear, Module, ReLU, Sequential
from repro.nn.losses import MSELoss
from repro.nn.optim import SGD
from repro.nn.train import Trainer, TrainingHistory
from repro.models.features import NUM_FEATURES
from repro.rng import require_rng

#: Paper's tuned hyperparameters for the dEta network.
PAPER_BATCH_SIZE: int = 256
PAPER_LEARNING_RATE: float = 4.375e-3
#: Four FC layers: 8 -> 16 -> 8 -> 1 ("maximum width of 16 in the middle
#: and shorter widths at the beginning and end").
PAPER_HIDDEN_WIDTHS: tuple[int, ...] = (8, 16, 8)

#: Predicted ln(d eta) is clipped into this range before exponentiation —
#: wider than any physical ring width, purely a numerical guard.
LOG_DETA_MIN: float = -9.0
LOG_DETA_MAX: float = 1.0


def build_deta_net(
    num_features: int = NUM_FEATURES,
    hidden_widths: tuple[int, ...] = PAPER_HIDDEN_WIDTHS,
    rng: np.random.Generator | None = None,
    swapped: bool = False,
) -> Sequential:
    """Construct the regressor network (linear output = predicted ln d eta).

    Args:
        num_features: Input width.
        hidden_widths: Hidden FC widths (one BN->FC->ReLU block each).
        rng: Weight-init generator.
        swapped: Use the fusion-friendly ``Linear -> BatchNorm -> ReLU``
            block order.

    Returns:
        A :class:`Sequential` producing ``(batch, 1)`` outputs.
    """
    rng = require_rng(rng, "models.build_deta_net")
    modules: list[Module] = []
    width_in = num_features
    for width in hidden_widths:
        if swapped:
            modules += [Linear(width_in, width, rng), BatchNorm1d(width), ReLU()]
        else:
            modules += [BatchNorm1d(width_in), Linear(width_in, width, rng), ReLU()]
        width_in = width
    modules.append(Linear(width_in, 1, rng))
    return Sequential(*modules)


@dataclass
class DEtaNet:
    """Trained dEta regressor bundle.

    Attributes:
        model: The trained network (eval mode).
        scaler: Feature standardizer.
        history: Training history.
    """

    model: Sequential
    scaler: StandardScaler
    include_polar: bool = True
    history: TrainingHistory | None = None

    def predict_log_deta(self, features: np.ndarray) -> np.ndarray:
        """Predicted ``ln(d eta)`` per ring. Shape ``(m,)``."""
        x = self.scaler.transform(features)
        self.model.eval()
        out = self.model.forward(x)[:, 0]
        return np.clip(out, LOG_DETA_MIN, LOG_DETA_MAX)

    def deta_from_raw(self, raw: np.ndarray) -> np.ndarray:
        """Raw network outputs -> ``d eta`` (clip then exponentiate).

        The single post-processing source: compiled inference plans call
        this, so the planned path cannot diverge from the eager
        definition.
        """
        return np.exp(np.clip(raw, LOG_DETA_MIN, LOG_DETA_MAX))

    def predict_deta(self, features: np.ndarray) -> np.ndarray:
        """Predicted ``d eta`` per ring. Shape ``(m,)``."""
        x = self.scaler.transform(features)
        self.model.eval()
        return self.deta_from_raw(self.model.forward(x)[:, 0])


@dataclass(frozen=True)
class DEtaTrainConfig:
    """Training configuration (defaults = the paper's tuned values)."""

    hidden_widths: tuple[int, ...] = PAPER_HIDDEN_WIDTHS
    batch_size: int = PAPER_BATCH_SIZE
    learning_rate: float = PAPER_LEARNING_RATE
    momentum: float = 0.9
    max_epochs: int = 120
    patience: int = 10
    swapped: bool = False


def train_deta_net(
    features: np.ndarray,
    true_eta_errors: np.ndarray,
    rng: np.random.Generator,
    config: DEtaTrainConfig | None = None,
    include_polar: bool = True,
) -> DEtaNet:
    """Train the dEta regressor on GRB rings.

    Args:
        features: ``(n, f)`` ring features (GRB rings only).
        true_eta_errors: ``(n,)`` true absolute ``eta`` errors (the
            regression target is their natural log, floored to avoid
            ``log(0)``).
        rng: Random generator.
        config: Training configuration.
        include_polar: Recorded for downstream feature consistency.

    Returns:
        A trained :class:`DEtaNet`.
    """
    cfg = config or DEtaTrainConfig()
    features = np.asarray(features, dtype=np.float64)
    targets = np.log(np.maximum(np.asarray(true_eta_errors, dtype=np.float64), 1e-4))
    n = features.shape[0]
    if targets.shape[0] != n:
        raise ValueError("features and targets must align")

    train_idx, val_idx, _ = train_val_test_split(n, rng)
    scaler = StandardScaler().fit(features[train_idx])
    x_train = scaler.transform(features[train_idx])
    x_val = scaler.transform(features[val_idx])
    y_train = targets[train_idx][:, None]
    y_val = targets[val_idx][:, None]

    model = build_deta_net(
        num_features=features.shape[1],
        hidden_widths=cfg.hidden_widths,
        rng=rng,
        swapped=cfg.swapped,
    )
    trainer = Trainer(
        model=model,
        loss=MSELoss(),
        optimizer=SGD(
            model.parameters(), lr=cfg.learning_rate, momentum=cfg.momentum
        ),
        batch_size=min(cfg.batch_size, max(1, x_train.shape[0])),
        max_epochs=cfg.max_epochs,
        patience=cfg.patience,
    )
    history = trainer.fit(x_train, y_train, x_val, y_val, rng)
    return DEtaNet(
        model=model, scaler=scaler, include_polar=include_polar, history=history
    )
