"""Per-ring input features for the neural networks (paper Section III).

Twelve features of the detection event behind each Compton ring:

0. total deposited energy of the event;
1-4. first hit: x, y, z, deposited energy;
5-8. second hit: x, y, z, deposited energy;
9-11. measurement uncertainties of the three energies (total, first,
   second) — ADAPT's energy uncertainty dwarfs its position uncertainty,
   so only energy sigmas enter.

Feature 12 (optional) is the guess at the source's *polar angle* in
degrees: the true angle (optionally jittered) during training, the
pipeline's current estimate at inference.

**Azimuth canonicalization.**  The networks receive only the source's
polar angle, yet the geometric consistency between a ring and a candidate
source depends on the full direction.  A polar angle alone suffices only
if the hit coordinates are expressed in a frame whose x axis points along
the source's azimuth — so ``extract_features`` accepts the (estimated or
true) azimuth and rotates the lateral hit coordinates into that canonical
frame.  The detector is azimuthally symmetric, so this loses nothing and
lets one network serve every azimuth.
"""

from __future__ import annotations

import numpy as np

from repro.detector.response import EventSet
from repro.reconstruction.rings import RingSet

#: Number of event-derived features (without the polar-angle input).
NUM_BASE_FEATURES: int = 12
#: Number of features including the polar-angle input.
NUM_FEATURES: int = 13


def polar_angle_of(direction: np.ndarray) -> float:
    """Polar angle (degrees from detector zenith, +z) of a unit vector."""
    direction = np.asarray(direction, dtype=np.float64)
    return float(np.degrees(np.arccos(np.clip(direction[2], -1.0, 1.0))))


def azimuth_angle_of(direction: np.ndarray) -> float:
    """Azimuth (degrees, x toward y) of a unit vector; 0 for the zenith."""
    direction = np.asarray(direction, dtype=np.float64)
    return float(np.degrees(np.arctan2(direction[1], direction[0])))


def _rotate_xy(positions: np.ndarray, azimuth_deg: float) -> np.ndarray:
    """Rotate lateral coordinates by ``-azimuth`` about z (canonical frame)."""
    phi = np.deg2rad(azimuth_deg)
    c, s = np.cos(phi), np.sin(phi)
    out = positions.copy()
    out[:, 0] = c * positions[:, 0] + s * positions[:, 1]
    out[:, 1] = -s * positions[:, 0] + c * positions[:, 1]
    return out


def extract_features(
    rings: RingSet,
    events: EventSet,
    polar_guess_deg: float | np.ndarray | None = None,
    include_polar: bool = True,
    azimuth_deg: float = 0.0,
) -> np.ndarray:
    """Build the model input matrix for a ring set.

    Args:
        rings: ``m`` rings.
        events: The EventSet the rings reference.
        polar_guess_deg: Polar-angle input, scalar (broadcast) or ``(m,)``.
            Required when ``include_polar`` is True.
        include_polar: Emit 13 features (with angle) or 12 (the paper's
            Fig. 7 "No Polar" ablation).
        azimuth_deg: Source-azimuth guess; hit coordinates are rotated into
            the azimuth-canonical frame before feature extraction.

    Returns:
        ``(m, 13)`` or ``(m, 12)`` float array.

    Raises:
        ValueError: If the polar input is required but missing, or has a
            wrong shape.
    """
    m = rings.num_rings
    seg = np.repeat(np.arange(events.num_events), events.hits_per_event())
    etot = np.zeros(events.num_events)
    np.add.at(etot, seg, events.energies)
    var_tot = np.zeros(events.num_events)
    np.add.at(var_tot, seg, events.sigma_energy**2)

    first = rings.first_hit
    second = rings.second_hit
    ev = rings.event_index

    positions = (
        _rotate_xy(events.positions, azimuth_deg)
        if azimuth_deg != 0.0
        else events.positions
    )
    cols = [
        etot[ev],
        positions[first, 0],
        positions[first, 1],
        positions[first, 2],
        events.energies[first],
        positions[second, 0],
        positions[second, 1],
        positions[second, 2],
        events.energies[second],
        np.sqrt(var_tot[ev]),  # reprolint: disable=NUM001 -- var_tot is a sum of squared sigmas, nonnegative by construction
        events.sigma_energy[first],
        events.sigma_energy[second],
    ]
    if include_polar:
        if polar_guess_deg is None:
            raise ValueError("polar_guess_deg required when include_polar=True")
        polar = np.asarray(polar_guess_deg, dtype=np.float64)
        if polar.ndim == 0:
            polar = np.full(m, float(polar))
        if polar.shape != (m,):
            raise ValueError(f"polar_guess_deg must be scalar or ({m},)")
        cols.append(polar)
    return np.stack(cols, axis=1)
