"""Random-search hyperparameter tuning (offline WandB substitute).

The paper tunes batch size, learning rate, the number of FC layers, the
maximum layer width, and each layer's width relative to the maximum via
Weights & Biases sweeps.  This harness samples the same space and scores
each configuration by validation loss after a short training run.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType

import numpy as np

from repro.nn.data import StandardScaler, train_val_test_split
from repro.nn.layers import BatchNorm1d, Linear, ReLU, Sequential
from repro.nn.losses import BCEWithLogitsLoss, Loss, MSELoss
from repro.nn.optim import SGD
from repro.nn.train import Trainer


@dataclass(frozen=True)
class HyperParams:
    """One sampled configuration.

    Attributes:
        batch_size: Mini-batch size.
        learning_rate: SGD learning rate.
        hidden_widths: Width of every hidden FC layer.
        val_loss: Validation loss achieved (set after evaluation).
    """

    batch_size: int
    learning_rate: float
    hidden_widths: tuple[int, ...]
    val_loss: float = float("inf")


#: Width profiles: how hidden widths relate to the maximum width, matching
#: the paper's "width of each layer relative to the maximum" search axis.
_PROFILES = MappingProxyType({
    "decreasing": lambda w, n: [max(w // (2**i), 4) for i in range(n)],
    "bulge": lambda w, n: [
        max(w // (2 ** abs(i - n // 2)), 4) for i in range(n)
    ],
    "constant": lambda w, n: [w] * n,
})


def sample_config(rng: np.random.Generator, task: str) -> HyperParams:
    """Draw one configuration from the search space.

    Args:
        rng: Random generator.
        task: ``"classification"`` or ``"regression"`` — regression
            favors the smaller widths the paper found for the dEta net.
    """
    if task not in ("classification", "regression"):
        raise ValueError("task must be 'classification' or 'regression'")
    batch_size = int(rng.choice([256, 1024, 4096]))
    learning_rate = float(10 ** rng.uniform(-4.0, -1.5))
    n_hidden = int(rng.integers(2, 5))  # 3-5 FC layers incl. output
    if task == "classification":
        max_width = int(rng.choice([64, 128, 256]))
    else:
        max_width = int(rng.choice([8, 16, 32]))
    profile = _PROFILES[rng.choice(list(_PROFILES))]
    widths = tuple(profile(max_width, n_hidden))
    return HyperParams(
        batch_size=batch_size, learning_rate=learning_rate, hidden_widths=widths
    )


def _build(widths: tuple[int, ...], num_features: int, rng: np.random.Generator):
    modules = []
    w_in = num_features
    for w in widths:
        modules += [BatchNorm1d(w_in), Linear(w_in, w, rng), ReLU()]
        w_in = w
    modules.append(Linear(w_in, 1, rng))
    return Sequential(*modules)


def random_search(
    features: np.ndarray,
    targets: np.ndarray,
    rng: np.random.Generator,
    task: str = "classification",
    n_trials: int = 10,
    max_epochs: int = 15,
) -> list[HyperParams]:
    """Evaluate ``n_trials`` sampled configurations.

    Args:
        features: ``(n, f)`` inputs.
        targets: ``(n,)`` labels (classification) or values (regression).
        rng: Random generator.
        task: Which loss/search space to use.
        n_trials: Configurations to sample.
        max_epochs: Short-run epoch cap per configuration.

    Returns:
        Configurations sorted best (lowest validation loss) first.
    """
    features = np.asarray(features, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64).ravel()[:, None]
    train_idx, val_idx, _ = train_val_test_split(features.shape[0], rng)
    scaler = StandardScaler().fit(features[train_idx])
    x_train = scaler.transform(features[train_idx])
    x_val = scaler.transform(features[val_idx])
    y_train, y_val = targets[train_idx], targets[val_idx]

    loss: Loss = BCEWithLogitsLoss() if task == "classification" else MSELoss()
    results: list[HyperParams] = []
    for _ in range(n_trials):
        cfg = sample_config(rng, task)
        model = _build(cfg.hidden_widths, features.shape[1], rng)
        trainer = Trainer(
            model=model,
            loss=loss,
            optimizer=SGD(model.parameters(), lr=cfg.learning_rate, momentum=0.9),
            batch_size=min(cfg.batch_size, x_train.shape[0]),
            max_epochs=max_epochs,
            patience=5,
        )
        trainer.fit(x_train, y_train, x_val, y_val, rng)
        val = trainer.evaluate(x_val, y_val)
        results.append(
            HyperParams(
                batch_size=cfg.batch_size,
                learning_rate=cfg.learning_rate,
                hidden_widths=cfg.hidden_widths,
                val_loss=val,
            )
        )
    return sorted(results, key=lambda c: c.val_loss)
