"""The paper's two neural-network models and their feature pipeline.

* :mod:`repro.models.features` — the 12 event features (+ polar-angle
  guess) extracted per Compton ring (paper Section III).
* :mod:`repro.models.background` — the background-rejection classifier.
* :mod:`repro.models.deta` — the ``ln(d eta)`` regressor.
* :mod:`repro.models.thresholds` — per-polar-bin output thresholds.
* :mod:`repro.models.hyperparam` — random-search tuning harness (the
  offline substitute for the paper's WandB sweeps).
"""

from repro.models.features import (
    NUM_BASE_FEATURES,
    NUM_FEATURES,
    extract_features,
    polar_angle_of,
)
from repro.models.background import (
    BackgroundNet,
    build_background_net,
    train_background_net,
)
from repro.models.deta import DEtaNet, build_deta_net, train_deta_net
from repro.models.thresholds import PolarBinnedThresholds
from repro.models.hyperparam import HyperParams, random_search
from repro.models.calibration import (
    TemperatureScaler,
    expected_calibration_error,
    reliability_curve,
)
from repro.models.quantized import Int8BackgroundNet, quantize_background_net

__all__ = [
    "NUM_BASE_FEATURES",
    "NUM_FEATURES",
    "extract_features",
    "polar_angle_of",
    "BackgroundNet",
    "build_background_net",
    "train_background_net",
    "DEtaNet",
    "build_deta_net",
    "train_deta_net",
    "PolarBinnedThresholds",
    "HyperParams",
    "random_search",
    "TemperatureScaler",
    "expected_calibration_error",
    "reliability_curve",
    "Int8BackgroundNet",
    "quantize_background_net",
]
