"""The background-rejection network (paper Section III, Fig. 5).

A feed-forward classifier over the 13 ring features that outputs the
probability a Compton ring originated from a background particle.  The
architecture follows the paper: a stack of blocks, each
``BatchNorm1d -> Linear -> ReLU``, with a final linear output whose logit
is thresholded (sigmoid elided at deployment, Section V).  The selected
hyperparameters mirror the paper's tuned model: four FC layers, first
hidden width 256 with subsequent widths gradually decreasing, batch size
4096, learning rate 5.204e-4.

For quantization-aware training the paper retrains with the BatchNorm and
Linear order *swapped* inside each block (``Linear -> BatchNorm -> ReLU``)
so the three can be fused; ``build_background_net(swapped=True)``
reproduces that variant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.data import StandardScaler, train_val_test_split
from repro.nn.layers import BatchNorm1d, Linear, Module, ReLU, Sequential
from repro.nn.losses import BCEWithLogitsLoss
from repro.nn.optim import SGD
from repro.nn.train import Trainer, TrainingHistory
from repro.models.features import NUM_FEATURES
from repro.models.thresholds import PolarBinnedThresholds
from repro.rng import require_rng

#: Paper's tuned hyperparameters for the background network.
PAPER_BATCH_SIZE: int = 4096
PAPER_LEARNING_RATE: float = 5.204e-4
#: Four FC layers: 256 -> 128 -> 64 -> 1 ("maximum width of 256 in its
#: first FC layer, with subsequent layers gradually decreasing").
PAPER_HIDDEN_WIDTHS: tuple[int, ...] = (256, 128, 64)


def build_background_net(
    num_features: int = NUM_FEATURES,
    hidden_widths: tuple[int, ...] = PAPER_HIDDEN_WIDTHS,
    rng: np.random.Generator | None = None,
    swapped: bool = False,
) -> Sequential:
    """Construct the classifier network (logit output, no sigmoid).

    Args:
        num_features: Input width (13, or 12 for the no-polar ablation).
        hidden_widths: Hidden FC widths; one block per width plus the
            output layer (so ``len + 1`` FC layers total — the paper's
            "four FC layers" is three hidden plus the output).
        rng: Weight-init generator.
        swapped: Use ``Linear -> BatchNorm -> ReLU`` block order (the
            QAT/fusion-friendly variant of paper Section V).

    Returns:
        A :class:`Sequential` producing ``(batch, 1)`` logits.
    """
    rng = require_rng(rng, "models.build_background_net")
    modules: list[Module] = []
    width_in = num_features
    for width in hidden_widths:
        if swapped:
            modules += [Linear(width_in, width, rng), BatchNorm1d(width), ReLU()]
        else:
            modules += [BatchNorm1d(width_in), Linear(width_in, width, rng), ReLU()]
        width_in = width
    modules.append(Linear(width_in, 1, rng))
    return Sequential(*modules)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


@dataclass
class BackgroundNet:
    """Trained background classifier bundle.

    Wraps the network with its feature scaler and the per-polar-bin
    threshold table, exposing the operations the localization pipeline
    needs.

    Attributes:
        model: The trained network (eval mode).
        scaler: Feature standardizer fitted on training data.
        thresholds: Per-polar-bin decision thresholds.
        include_polar: Whether the model consumes the polar-angle feature.
        history: Training history (diagnostics).
    """

    model: Sequential
    scaler: StandardScaler
    thresholds: PolarBinnedThresholds
    include_polar: bool = True
    history: TrainingHistory | None = None

    def predict_logit(self, features: np.ndarray) -> np.ndarray:
        """Raw logits for a feature matrix. Shape ``(m,)``."""
        x = self.scaler.transform(features)
        self.model.eval()
        return self.model.forward(x)[:, 0]

    def proba_from_logit(self, logit: np.ndarray) -> np.ndarray:
        """Logits -> probabilities (the single post-processing source —
        compiled inference plans call this, so the planned path cannot
        diverge from the eager definition)."""
        return _sigmoid(logit)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Background probability per ring. Shape ``(m,)``."""
        return self.proba_from_logit(self.predict_logit(features))

    def is_background(
        self, features: np.ndarray, polar_deg: np.ndarray | float
    ) -> np.ndarray:
        """Thresholded background calls using the per-bin thresholds.

        Args:
            features: ``(m, f)`` ring features.
            polar_deg: Polar angle(s) used to select thresholds.

        Returns:
            ``(m,)`` boolean mask (True = classified background).
        """
        prob = self.predict_proba(features)
        polar = np.asarray(polar_deg, dtype=np.float64)
        if polar.ndim == 0:
            polar = np.full(prob.shape[0], float(polar))
        return self.thresholds.classify(prob, polar)


@dataclass(frozen=True)
class BackgroundTrainConfig:
    """Training configuration.

    The paper's tuned batch size / learning rate (4096 / 5.204e-4,
    exposed as ``PAPER_BATCH_SIZE`` / ``PAPER_LEARNING_RATE``) presume its
    ~640k-ring training set; at this repository's scaled-down statistics
    they yield only a handful of optimizer steps per epoch, so the
    defaults here follow the standard batch-size/learning-rate scaling to
    a smaller batch.  Architecture and protocol are unchanged.
    """

    hidden_widths: tuple[int, ...] = PAPER_HIDDEN_WIDTHS
    batch_size: int = 512
    learning_rate: float = 5e-3
    momentum: float = 0.9
    max_epochs: int = 120
    patience: int = 15
    fn_weight: float = 1.5
    swapped: bool = False


def train_background_net(
    features: np.ndarray,
    labels: np.ndarray,
    polar_deg: np.ndarray,
    rng: np.random.Generator,
    config: BackgroundTrainConfig | None = None,
    include_polar: bool = True,
) -> BackgroundNet:
    """Train the background classifier end to end.

    Applies the paper's split protocol (80/20 train/test with the training
    pool further split 80/20 train/val), standardizes features, trains
    with SGD + BCE + early stopping, then fits the per-polar-bin
    thresholds on the training portion.

    Args:
        features: ``(n, f)`` ring features (13 or 12 columns).
        labels: ``(n,)`` truth labels (1 = background).
        polar_deg: ``(n,)`` polar angles for threshold binning.
        rng: Random generator (split, init, batching).
        config: Training configuration.
        include_polar: Recorded on the bundle for feature-extraction
            consistency downstream.

    Returns:
        A trained :class:`BackgroundNet`.
    """
    cfg = config or BackgroundTrainConfig()
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64).ravel()
    polar_deg = np.asarray(polar_deg, dtype=np.float64).ravel()
    n = features.shape[0]
    if labels.shape[0] != n or polar_deg.shape[0] != n:
        raise ValueError("features, labels, polar_deg must align")

    train_idx, val_idx, _test_idx = train_val_test_split(n, rng)
    scaler = StandardScaler().fit(features[train_idx])
    x_train = scaler.transform(features[train_idx])
    x_val = scaler.transform(features[val_idx])
    y_train = labels[train_idx][:, None]
    y_val = labels[val_idx][:, None]

    model = build_background_net(
        num_features=features.shape[1],
        hidden_widths=cfg.hidden_widths,
        rng=rng,
        swapped=cfg.swapped,
    )
    trainer = Trainer(
        model=model,
        loss=BCEWithLogitsLoss(),
        optimizer=SGD(
            model.parameters(), lr=cfg.learning_rate, momentum=cfg.momentum
        ),
        batch_size=min(cfg.batch_size, max(1, x_train.shape[0])),
        max_epochs=cfg.max_epochs,
        patience=cfg.patience,
    )
    history = trainer.fit(x_train, y_train, x_val, y_val, rng)

    bundle = BackgroundNet(
        model=model,
        scaler=scaler,
        thresholds=PolarBinnedThresholds(),
        include_polar=include_polar,
        history=history,
    )
    prob_train = bundle.predict_proba(features[train_idx])
    bundle.thresholds.fit(
        prob_train,
        labels[train_idx],
        polar_deg[train_idx],
        fn_weight=cfg.fn_weight,
    )
    return bundle
