"""Per-polar-angle-bin output thresholds for the background classifier.

The paper divides the polar-angle range into ten-degree bins and, for each
bin, chooses the output threshold that minimizes training loss; inference
selects the threshold dynamically from the input polar angle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class PolarBinnedThresholds:
    """Threshold table over ten-degree polar-angle bins.

    Attributes:
        bin_edges: ``(n_bins + 1,)`` bin boundaries in degrees.
        thresholds: ``(n_bins,)`` probability thresholds; a ring is called
            *background* when its predicted background probability is >=
            the threshold of its polar bin.
    """

    bin_edges: np.ndarray = field(
        default_factory=lambda: np.arange(0.0, 100.0, 10.0)
    )
    thresholds: np.ndarray | None = None

    @property
    def num_bins(self) -> int:
        return int(self.bin_edges.shape[0] - 1)

    def bin_of(self, polar_deg: np.ndarray) -> np.ndarray:
        """Bin index of each polar angle (clipped into range)."""
        polar = np.asarray(polar_deg, dtype=np.float64)
        idx = np.digitize(polar, self.bin_edges) - 1
        return np.clip(idx, 0, self.num_bins - 1)

    def fit(
        self,
        probabilities: np.ndarray,
        labels: np.ndarray,
        polar_deg: np.ndarray,
        grid: np.ndarray | None = None,
        fn_weight: float = 1.0,
    ) -> "PolarBinnedThresholds":
        """Choose per-bin thresholds minimizing weighted classification loss.

        The loss in each bin is ``fp + fn_weight * fn`` over a threshold
        grid — ``fn`` (a GRB ring wrongly discarded) may be weighted more
        heavily than ``fp`` (a background ring kept), since refinement can
        still down-weight survivors but can never recover a dropped ring.
        Bins with no training rings inherit the global best threshold.

        Args:
            probabilities: ``(n,)`` predicted background probabilities.
            labels: ``(n,)`` truth (1 = background).
            polar_deg: ``(n,)`` training polar angles.
            grid: Candidate thresholds (default 0.05..0.95 step 0.025).
            fn_weight: Relative cost of a false negative.

        Returns:
            self (fitted).
        """
        probabilities = np.asarray(probabilities, dtype=np.float64).ravel()
        labels = np.asarray(labels).ravel() > 0.5
        polar = np.asarray(polar_deg, dtype=np.float64).ravel()
        if grid is None:
            grid = np.arange(0.05, 0.951, 0.025)

        def best_threshold(p: np.ndarray, y: np.ndarray) -> float:
            # Vectorized loss over the grid: (n, g) comparisons.
            calls = p[:, None] >= grid[None, :]
            fp = np.sum(calls & ~y[:, None], axis=0)
            fn = np.sum(~calls & y[:, None], axis=0)
            loss = fp + fn_weight * fn
            return float(grid[int(np.argmin(loss))])

        global_best = best_threshold(probabilities, labels)
        thresholds = np.full(self.num_bins, global_best)
        bins = self.bin_of(polar)
        for b in range(self.num_bins):
            sel = bins == b
            if sel.sum() >= 20 and labels[sel].any() and (~labels[sel]).any():
                thresholds[b] = best_threshold(probabilities[sel], labels[sel])
        self.thresholds = thresholds
        return self

    def threshold_for(self, polar_deg: np.ndarray) -> np.ndarray:
        """Thresholds applicable to the given polar angles."""
        if self.thresholds is None:
            raise RuntimeError("thresholds are not fitted")
        return self.thresholds[self.bin_of(polar_deg)]

    def classify(
        self, probabilities: np.ndarray, polar_deg: np.ndarray
    ) -> np.ndarray:
        """Boolean background calls using the per-bin thresholds."""
        probabilities = np.asarray(probabilities, dtype=np.float64).ravel()
        return probabilities >= self.threshold_for(polar_deg)
