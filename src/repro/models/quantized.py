"""INT8 background classifier: drop-in replacement for the FP32 bundle.

Reproduces the paper's Section V flow: the background network is
*retrained* with the swapped (fusion-friendly) block order, fused, fine-
tuned with fake quantization (QAT), and converted to a true-integer INT8
model.  The resulting :class:`Int8BackgroundNet` exposes the same
interface as :class:`~repro.models.background.BackgroundNet`, so the ML
pipeline (and the Fig. 11 experiment) can swap it in directly — still "in
conjunction with the FP32 version of the dEta model", as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.background import BackgroundNet, _sigmoid
from repro.models.thresholds import PolarBinnedThresholds
from repro.nn.data import StandardScaler, train_val_test_split
from repro.nn.losses import BCEWithLogitsLoss
from repro.nn.optim import SGD
from repro.nn.train import Trainer
from repro.quantization.fuse import fuse_linear_bn_relu
from repro.quantization.int8 import QuantizedMLP
from repro.quantization.qat import convert_to_int8, prepare_qat


@dataclass
class Int8BackgroundNet:
    """Quantized background classifier bundle.

    Attributes:
        model: The integer inference engine.
        scaler: Feature standardizer (shared with the FP32 parent).
        thresholds: Per-polar-bin thresholds (refit on INT8 outputs).
        include_polar: Whether the polar feature is consumed.
    """

    model: QuantizedMLP
    scaler: StandardScaler
    thresholds: PolarBinnedThresholds
    include_polar: bool = True

    def predict_logit(self, features: np.ndarray) -> np.ndarray:
        """Raw logits (integer path inside). Shape ``(m,)``."""
        x = self.scaler.transform(features)
        return self.model.predict_logit(x)

    def proba_from_logit(self, logit: np.ndarray) -> np.ndarray:
        """Logits -> probabilities (single post-processing source; the
        INT8 path clips first because dequantized logits can reach
        magnitudes where ``exp`` over/underflows)."""
        return _sigmoid(np.clip(logit, -60.0, 60.0))

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Background probabilities. Shape ``(m,)``.

        On the FPGA the sigmoid is elided and the threshold applied to the
        logit; applying the (bijective) sigmoid here keeps the threshold
        table in probability units for interface parity.
        """
        return self.proba_from_logit(self.predict_logit(features))

    def is_background(
        self, features: np.ndarray, polar_deg: np.ndarray | float
    ) -> np.ndarray:
        """Thresholded background calls (same semantics as the FP32 net)."""
        prob = self.predict_proba(features)
        polar = np.asarray(polar_deg, dtype=np.float64)
        if polar.ndim == 0:
            polar = np.full(prob.shape[0], float(polar))
        return self.thresholds.classify(prob, polar)


def quantize_background_net(
    swapped_net: BackgroundNet,
    features: np.ndarray,
    labels: np.ndarray,
    polar_deg: np.ndarray,
    rng: np.random.Generator,
    qat_epochs: int = 10,
    qat_lr: float = 1e-4,
    fn_weight: float = 1.5,
) -> Int8BackgroundNet:
    """Fuse, QAT-fine-tune, and convert a swapped-order background net.

    Args:
        swapped_net: A bundle trained with ``swapped=True`` blocks (the
            non-swapped order cannot be fused; a ValueError results).
        features: Calibration/fine-tuning features (raw, unscaled).
        labels: Binary labels (1 = background).
        polar_deg: Polar angles for threshold refitting.
        rng: Random generator.
        qat_epochs: Fine-tuning epochs with fake quantization.
        qat_lr: Fine-tuning learning rate (small — QAT only nudges).
        fn_weight: False-negative weight for threshold refitting.

    Returns:
        An :class:`Int8BackgroundNet`.
    """
    model = swapped_net.model
    model.eval()
    fused = fuse_linear_bn_relu(model)
    qat = prepare_qat(fused)

    x = swapped_net.scaler.transform(np.asarray(features, dtype=np.float64))
    y = np.asarray(labels, dtype=np.float64).ravel()[:, None]
    train_idx, val_idx, _ = train_val_test_split(x.shape[0], rng)
    trainer = Trainer(
        model=qat,
        loss=BCEWithLogitsLoss(),
        optimizer=SGD(qat.parameters(), lr=qat_lr, momentum=0.9),
        batch_size=512,
        max_epochs=qat_epochs,
        patience=max(2, qat_epochs // 2),
    )
    trainer.fit(x[train_idx], y[train_idx], x[val_idx], y[val_idx], rng)
    qat.eval()
    # One calibration pass in training mode refreshes observer ranges with
    # the final weights, then freeze.
    qat.train()
    qat.forward(x[train_idx][: min(8192, train_idx.size)])
    qat.eval()
    int8_model = convert_to_int8(qat)

    bundle = Int8BackgroundNet(
        model=int8_model,
        scaler=swapped_net.scaler,
        thresholds=PolarBinnedThresholds(),
        include_polar=swapped_net.include_polar,
    )
    prob = bundle.predict_proba(np.asarray(features)[train_idx])
    bundle.thresholds.fit(
        prob,
        y[train_idx, 0],
        np.asarray(polar_deg, dtype=np.float64)[train_idx],
        fn_weight=fn_weight,
    )
    return bundle
