"""Classifier probability calibration.

The per-polar-bin threshold table consumes the background network's
probabilities; thresholds transfer between datasets (and between FP32 and
INT8 variants) only when those probabilities are *calibrated* — a ring
scored 0.7 should be background ~70% of the time.  This module provides
the standard diagnostics (reliability curve, expected calibration error)
and temperature scaling, the single-parameter logit correction that fixes
most neural-network miscalibration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def reliability_curve(
    probabilities: np.ndarray,
    labels: np.ndarray,
    n_bins: int = 10,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Observed frequency vs predicted probability per confidence bin.

    Args:
        probabilities: ``(n,)`` predicted probabilities.
        labels: ``(n,)`` binary truth.
        n_bins: Equal-width probability bins over [0, 1].

    Returns:
        ``(bin_centers, observed_fraction, counts)``; bins with no
        samples report NaN observed fraction.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64).ravel()
    labels = np.asarray(labels).ravel() > 0.5
    if probabilities.shape != labels.shape:
        raise ValueError("shape mismatch")
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    idx = np.clip(np.digitize(probabilities, edges) - 1, 0, n_bins - 1)
    counts = np.bincount(idx, minlength=n_bins).astype(np.float64)
    hits = np.bincount(idx, weights=labels.astype(np.float64), minlength=n_bins)
    with np.errstate(invalid="ignore"):
        observed = hits / counts
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, observed, counts.astype(np.int64)


def expected_calibration_error(
    probabilities: np.ndarray,
    labels: np.ndarray,
    n_bins: int = 10,
) -> float:
    """ECE: count-weighted mean |observed - predicted| over bins."""
    probabilities = np.asarray(probabilities, dtype=np.float64).ravel()
    labels = np.asarray(labels).ravel() > 0.5
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    idx = np.clip(np.digitize(probabilities, edges) - 1, 0, n_bins - 1)
    counts = np.bincount(idx, minlength=n_bins).astype(np.float64)
    hits = np.bincount(idx, weights=labels.astype(np.float64), minlength=n_bins)
    mean_p = np.bincount(idx, weights=probabilities, minlength=n_bins)
    nonzero = counts > 0
    gap = np.abs(hits[nonzero] / counts[nonzero] - mean_p[nonzero] / counts[nonzero])
    return float(np.sum(gap * counts[nonzero]) / counts.sum())


@dataclass
class TemperatureScaler:
    """Single-parameter logit calibration: ``p' = sigmoid(logit / T)``.

    ``T > 1`` softens over-confident networks; ``T < 1`` sharpens
    under-confident ones.  Fit by minimizing the negative log-likelihood
    on held-out data via golden-section search (the objective is
    unimodal in ``log T``).

    Attributes:
        temperature: The fitted ``T`` (1.0 before fitting).
    """

    temperature: float = 1.0

    @staticmethod
    def _nll(logits: np.ndarray, labels: np.ndarray, t: float) -> float:
        z = logits / t
        # Stable log-sigmoid formulations.
        return float(
            np.mean(np.maximum(z, 0.0) - z * labels + np.log1p(np.exp(-np.abs(z))))
        )

    def fit(
        self,
        logits: np.ndarray,
        labels: np.ndarray,
        t_range: tuple[float, float] = (0.05, 20.0),
        tol: float = 1e-4,
    ) -> "TemperatureScaler":
        """Fit ``T`` on validation logits/labels.

        Args:
            logits: ``(n,)`` raw network logits.
            labels: ``(n,)`` binary truth.
            t_range: Search bracket for ``T``.
            tol: Convergence tolerance in ``log T``.

        Returns:
            self (fitted).
        """
        logits = np.asarray(logits, dtype=np.float64).ravel()
        labels = np.asarray(labels, dtype=np.float64).ravel()
        if logits.shape != labels.shape:
            raise ValueError("shape mismatch")
        if not 0.0 < t_range[0] < t_range[1]:
            raise ValueError("t_range must satisfy 0 < lo < hi")
        lo, hi = np.log(t_range[0]), np.log(t_range[1])
        golden = (np.sqrt(5.0) - 1.0) / 2.0
        a, b = lo, hi
        c = b - golden * (b - a)
        d = a + golden * (b - a)
        fc = self._nll(logits, labels, float(np.exp(c)))
        fd = self._nll(logits, labels, float(np.exp(d)))
        while abs(b - a) > tol:
            if fc < fd:
                b, d, fd = d, c, fc
                c = b - golden * (b - a)
                fc = self._nll(logits, labels, float(np.exp(c)))
            else:
                a, c, fc = c, d, fd
                d = a + golden * (b - a)
                fd = self._nll(logits, labels, float(np.exp(d)))
        self.temperature = float(np.exp(0.5 * (a + b)))
        return self

    def transform(self, logits: np.ndarray) -> np.ndarray:
        """Calibrated probabilities from raw logits."""
        z = np.asarray(logits, dtype=np.float64) / self.temperature
        out = np.empty_like(z)
        pos = z >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        out[~pos] = ez / (1.0 + ez)
        return out
