"""Structured experiment records.

Benches and campaigns can persist their results as JSON records so runs
are comparable across machines and code versions — the lightweight,
dependency-free equivalent of an experiment tracker.
"""

from __future__ import annotations

import json
import platform as _platform
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np


def _jsonable(value):
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


@dataclass
class ExperimentRecord:
    """One experiment's identity, parameters, and results.

    Attributes:
        experiment: Identifier, e.g. ``"fig8"`` or ``"ext_pileup"``.
        parameters: The knobs that produced the results (trial counts,
            fluences, seeds, ...).
        results: Arbitrary (JSON-able) result payload.
        environment: Interpreter/platform stamp (filled automatically).
    """

    experiment: str
    parameters: dict = field(default_factory=dict)
    results: dict = field(default_factory=dict)
    environment: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.experiment:
            raise ValueError("experiment id must be non-empty")
        if not self.environment:
            self.environment = {
                "python": _platform.python_version(),
                "machine": _platform.machine(),
                "numpy": np.__version__,
            }

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(_jsonable(asdict(self)), indent=2, sort_keys=True)

    def save(self, path: str | Path) -> Path:
        """Write the record to ``path`` (parent directories created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @staticmethod
    def load(path: str | Path) -> "ExperimentRecord":
        """Load a record saved by :meth:`save`.

        Raises:
            ValueError: If required fields are missing.
        """
        data = json.loads(Path(path).read_text())
        if "experiment" not in data:
            raise ValueError("not an experiment record: missing 'experiment'")
        return ExperimentRecord(
            experiment=data["experiment"],
            parameters=data.get("parameters", {}),
            results=data.get("results", {}),
            environment=data.get("environment", {}),
        )


def merge_records(records: list[ExperimentRecord]) -> dict:
    """Index records by experiment id (later records win ties)."""
    return {r.experiment: r for r in records}
