"""Module-level worker functions for multiprocessing campaigns.

Workers must be importable (picklable by reference) for
``multiprocessing``; lambdas/closures inside the campaign functions would
fail under the spawn start method.
"""

from __future__ import annotations

import numpy as np


def collect_worker(args: tuple) -> "object":
    """Unpack one training-campaign task and run it."""
    from repro.experiments.datasets import collect_exposure_rings

    geometry, response, seed_seq, polar, fluence, background, jitter = args
    rng = np.random.default_rng(seed_seq)
    return collect_exposure_rings(
        geometry,
        response,
        rng,
        polar_deg=polar,
        fluence_mev_cm2=fluence,
        background=background,
        polar_jitter_deg=jitter,
    )
