"""Module-level worker functions for multiprocessing campaigns.

Workers must be importable (picklable by reference) for
``multiprocessing``; lambdas/closures inside the campaign functions would
fail under the spawn start method.

Every worker takes ``(common, task)``: the campaign-constant context
(geometry, response, models, ...) arrives via the executor's broadcast
channel once per campaign, and only the tiny per-task payload (seed,
angle) crosses the pipe per task.
"""

from __future__ import annotations

import numpy as np

from repro.obs import trace as obs_trace


def _annotate(exc: BaseException, context: str) -> None:
    """Attach task context to an exception about to cross the process
    boundary, so the remote traceback in ``CampaignWorkerError`` names
    the exact campaign point that failed."""
    if hasattr(exc, "add_note"):  # Python >= 3.11
        exc.add_note(context)


def collect_worker(common: tuple, task: tuple) -> "object":
    """Run one training-campaign exposure.

    Args:
        common: ``(geometry, response, fluence, background, jitter)``.
        task: ``(polar_deg, seed_sequence)``.
    """
    from repro.experiments.datasets import collect_exposure_rings

    geometry, response, fluence, background, jitter = common
    polar, seed_seq = task
    rng = np.random.default_rng(seed_seq)
    try:
        with obs_trace.span("datasets.exposure"):
            return collect_exposure_rings(
                geometry,
                response,
                rng,
                polar_deg=polar,
                fluence_mev_cm2=fluence,
                background=background,
                polar_jitter_deg=jitter,
            )
    except Exception as exc:
        _annotate(exc, f"campaign task: exposure at polar={polar} deg, "
                       f"fluence={fluence} MeV/cm^2")
        raise


def trial_worker(common: tuple, seed_seq) -> float:
    """Run one localization trial.

    Args:
        common: ``(geometry, response, config, ml_pipeline, engine)`` —
            ``engine`` is a pre-compiled inference engine (or None for
            the eager reference path); its plans ship pickled without
            arenas, which are rebuilt lazily in this process.
        seed_seq: The trial's ``SeedSequence``.
    """
    from repro.experiments.trials import trial_error

    geometry, response, config, ml_pipeline, engine = common
    try:
        with obs_trace.span("trials.trial"):
            return trial_error(
                geometry,
                response,
                np.random.default_rng(seed_seq),
                config,
                ml_pipeline,
                engine=engine,
            )
    except Exception as exc:
        _annotate(exc, f"campaign task: trial with config={config!r}")
        raise


def calibration_worker(common: tuple, seed_seq) -> np.ndarray:
    """Run one containment-calibration trial.

    Args:
        common: ``(geometry, response, config, skymap, ml_pipeline,
            engine)`` — see :func:`repro.experiments.calibration.run_calibration`.
        seed_seq: The trial's ``SeedSequence``.

    Returns:
        One ``(5,)`` row in ``calibration.TRIAL_FIELDS`` order.
    """
    from repro.experiments.calibration import calibration_trial

    geometry, response, config, skymap, ml_pipeline, engine = common
    try:
        with obs_trace.span("calibration.trial"):
            return calibration_trial(
                geometry,
                response,
                np.random.default_rng(seed_seq),
                config,
                skymap,
                ml_pipeline,
                engine=engine,
            )
    except Exception as exc:
        _annotate(exc, f"campaign task: calibration trial with config={config!r}")
        raise


def trial_block_worker(common: tuple, seed_block: tuple) -> list[float]:
    """Run a block of localization trials with lock-step batched inference.

    Simulates every trial in the block first (each from its own spawned
    generator, in the same order as the per-trial path), then localizes
    them together via :func:`repro.infer.localize_many`, which gathers
    feature blocks across events into one planned forward pass per
    localization round.

    Args:
        common: ``(geometry, response, config, ml_pipeline, engine)``.
        seed_block: Tuple of per-trial ``SeedSequence`` objects.

    Returns:
        Angular errors in degrees, one per seed in order.
    """
    from repro.experiments.trials import _simulate_trial
    from repro.infer import localize_many

    geometry, response, config, ml_pipeline, engine = common
    if ml_pipeline is None:
        raise ValueError("ml condition requires a trained MLPipeline")
    try:
        with obs_trace.span("trials.block"):
            rngs = [np.random.default_rng(s) for s in seed_block]
            event_sets = []
            grbs = []
            for rng in rngs:
                events, grb = _simulate_trial(geometry, response, rng, config)
                event_sets.append(events)
                grbs.append(grb)
            outcomes = localize_many(
                ml_pipeline,
                event_sets,
                rngs,
                engine=engine,
                halt_after=config.halt_after,
            )
            return [
                outcome.error_degrees(grb.source_direction)
                for outcome, grb in zip(outcomes, grbs)
            ]
    except Exception as exc:
        _annotate(
            exc,
            f"campaign task: trial block of {len(seed_block)} "
            f"with config={config!r}",
        )
        raise
