"""Reproduction drivers: one function per paper figure/table.

Every driver returns structured results and has a ``print_*`` companion
emitting the same rows/series the paper reports.  Scale (trial counts,
meta-trials, angle grids) is configurable; defaults are sized for a
single-core machine (the paper's 1000 x 10 trials would take hours).

Set the environment variable ``REPRO_BENCH_SCALE`` (float, default 1.0)
to proportionally scale trial counts in the benchmark suite.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.detector.response import DetectorResponse
from repro.experiments.containment import containment_with_errorbars
from repro.experiments.modelzoo import TrainedModels, get_or_train_pipeline
from repro.experiments.trials import TrialConfig, run_meta_trials
from repro.fpga.hls_model import (
    PAPER_NUM_RINGS,
    KernelReport,
    synthesize_kernel,
)
from repro.geometry.tiles import DetectorGeometry, adapt_geometry
from repro.models.quantized import quantize_background_net
from repro.pipeline.ml_pipeline import MLPipeline
from repro.platforms.platforms import ATOM, RPI3B_PLUS, PlatformModel, STAGE_NAMES
from repro.sources.grb import LABEL_BACKGROUND


def bench_scale() -> float:
    """Trial-count multiplier from ``REPRO_BENCH_SCALE`` (default 1)."""
    try:
        return max(0.05, float(os.environ.get("REPRO_BENCH_SCALE", "1.0")))
    except ValueError:
        return 1.0


@dataclass
class ExperimentScale:
    """Trial sizing for one experiment run.

    Attributes:
        n_trials: Trials per experimental point (paper: 1000).
        n_meta: Meta-trials for error bars (paper: 10).
        polar_angles: Polar-angle grid for angle sweeps (paper: 0..80
            step 10; default here is a coarser grid for runtime).
        fluences: Fluence grid for Fig. 9.
        seed: Master seed.
        n_workers: Process fan-out for trials; every figure point shares
            one persistent pool per worker count.
        cache: Deterministic stage cache for trial sets (True uses the
            repo-local ``.campaign_cache/``; results are bit-identical
            hit or miss, so figures can be re-rendered for free).
        infer_backend: Inference backend for ML-condition points
            ("reference", "planned", or "int8" — see repro.infer);
            ignored by non-ML conditions.
        infer_dtype: Float-plan compute dtype for ML-condition points
            when infer_backend is not "reference" ("float64" keeps
            bit-parity with eager; "float32" is the faster deployment
            dtype); ignored otherwise.
    """

    n_trials: int = 30
    n_meta: int = 2
    polar_angles: tuple[float, ...] = (0.0, 20.0, 40.0, 60.0, 80.0)
    fluences: tuple[float, ...] = (0.5, 0.75, 1.0, 2.0, 4.0)
    seed: int = 7
    n_workers: int = 1
    cache: object = None
    infer_backend: str = "reference"
    infer_dtype: str = "float64"

    @staticmethod
    def from_env() -> "ExperimentScale":
        s = bench_scale()
        return ExperimentScale(
            n_trials=max(10, int(round(30 * s))),
            n_meta=2 if s < 3 else 3,
        )


@dataclass
class ContainmentPoint:
    """68%/95% containment with error bars at one experimental point."""

    mean68: float
    std68: float
    mean95: float
    std95: float

    @staticmethod
    def from_error_sets(error_sets: list[np.ndarray]) -> "ContainmentPoint":
        m68, s68 = containment_with_errorbars(error_sets, 0.68)
        m95, s95 = containment_with_errorbars(error_sets, 0.95)
        return ContainmentPoint(mean68=m68, std68=s68, mean95=m95, std95=s95)

    def row(self) -> str:
        """One formatted 68%/95% containment line."""
        return (
            f"68%: {self.mean68:6.2f} +- {self.std68:4.2f} deg   "
            f"95%: {self.mean95:6.2f} +- {self.std95:4.2f} deg"
        )


def _point(
    geometry: DetectorGeometry,
    response: DetectorResponse,
    config: TrialConfig,
    scale: ExperimentScale,
    ml_pipeline: MLPipeline | None = None,
    seed_offset: int = 0,
) -> ContainmentPoint:
    if config.condition == "ml" and scale.infer_backend != "reference":
        import dataclasses

        config = dataclasses.replace(
            config,
            infer_backend=scale.infer_backend,
            infer_dtype=scale.infer_dtype,
        )
    sets = run_meta_trials(
        geometry,
        response,
        scale.seed + seed_offset,
        scale.n_trials,
        scale.n_meta,
        config,
        ml_pipeline,
        scale.n_workers,
        cache=scale.cache,
    )
    return ContainmentPoint.from_error_sets(sets)


# --------------------------------------------------------------------------
# Figure 4: baseline limits
# --------------------------------------------------------------------------


def figure4(
    scale: ExperimentScale | None = None,
    fluence: float = 1.0,
) -> dict[str, ContainmentPoint]:
    """Fig. 4 — impact of background and ``d eta`` error on the baseline.

    Conditions: the full baseline pipeline, the background-removal oracle,
    and the true-``d eta`` oracle, all at a normally incident burst.
    """
    scale = scale or ExperimentScale.from_env()
    geometry = adapt_geometry()
    response = DetectorResponse(geometry)
    out: dict[str, ContainmentPoint] = {}
    for i, condition in enumerate(("baseline", "no_background", "true_deta")):
        cfg = TrialConfig(
            fluence_mev_cm2=fluence, polar_angle_deg=0.0, condition=condition
        )
        out[condition] = _point(geometry, response, cfg, scale, seed_offset=i)
    return out


def print_figure4(results: dict[str, ContainmentPoint]) -> None:
    """Print the Fig. 4 condition rows."""
    names = {
        "baseline": "Background + estimated dEta (full)",
        "no_background": "Background removed (oracle)",
        "true_deta": "True dEta substituted (oracle)",
    }
    print("\nFigure 4 — baseline localization limits (1 MeV/cm^2, polar 0)")
    for key, point in results.items():
        print(f"  {names[key]:38s} {point.row()}")


# --------------------------------------------------------------------------
# Figures 8 & 9: ML pipeline vs baseline
# --------------------------------------------------------------------------


def figure8(
    scale: ExperimentScale | None = None,
    models: TrainedModels | None = None,
    fluence: float = 1.0,
) -> dict[float, dict[str, ContainmentPoint]]:
    """Fig. 8 — accuracy vs polar angle, baseline vs NN pipeline."""
    scale = scale or ExperimentScale.from_env()
    models = models or get_or_train_pipeline()
    geometry = adapt_geometry()
    response = DetectorResponse(geometry)
    out: dict[float, dict[str, ContainmentPoint]] = {}
    for i, polar in enumerate(scale.polar_angles):
        base_cfg = TrialConfig(
            fluence_mev_cm2=fluence, polar_angle_deg=polar, condition="baseline"
        )
        ml_cfg = TrialConfig(
            fluence_mev_cm2=fluence, polar_angle_deg=polar, condition="ml"
        )
        out[polar] = {
            "baseline": _point(
                geometry, response, base_cfg, scale, seed_offset=10 + i
            ),
            "ml": _point(
                geometry,
                response,
                ml_cfg,
                scale,
                ml_pipeline=models.pipeline,
                seed_offset=10 + i,
            ),
        }
    return out


def print_figure8(results: dict[float, dict[str, ContainmentPoint]]) -> None:
    """Print the Fig. 8 polar-angle series."""
    print("\nFigure 8 — accuracy vs polar angle (1 MeV/cm^2)")
    for polar, conditions in results.items():
        print(f"  polar {polar:4.0f} deg:")
        print(f"    without NN: {conditions['baseline'].row()}")
        print(f"    with NN:    {conditions['ml'].row()}")


def figure9(
    scale: ExperimentScale | None = None,
    models: TrainedModels | None = None,
) -> dict[float, dict[str, ContainmentPoint]]:
    """Fig. 9 — accuracy vs fluence (normal incidence)."""
    scale = scale or ExperimentScale.from_env()
    models = models or get_or_train_pipeline()
    geometry = adapt_geometry()
    response = DetectorResponse(geometry)
    out: dict[float, dict[str, ContainmentPoint]] = {}
    for i, fluence in enumerate(scale.fluences):
        base_cfg = TrialConfig(
            fluence_mev_cm2=fluence, polar_angle_deg=0.0, condition="baseline"
        )
        ml_cfg = TrialConfig(
            fluence_mev_cm2=fluence, polar_angle_deg=0.0, condition="ml"
        )
        out[fluence] = {
            "baseline": _point(
                geometry, response, base_cfg, scale, seed_offset=30 + i
            ),
            "ml": _point(
                geometry,
                response,
                ml_cfg,
                scale,
                ml_pipeline=models.pipeline,
                seed_offset=30 + i,
            ),
        }
    return out


def print_figure9(results: dict[float, dict[str, ContainmentPoint]]) -> None:
    """Print the Fig. 9 fluence series."""
    print("\nFigure 9 — accuracy vs fluence (polar 0)")
    for fluence, conditions in results.items():
        print(f"  fluence {fluence:4.2f} MeV/cm^2:")
        print(f"    without NN: {conditions['baseline'].row()}")
        print(f"    with NN:    {conditions['ml'].row()}")


# --------------------------------------------------------------------------
# Figure 7: polar-angle input ablation
# --------------------------------------------------------------------------


def figure7(
    scale: ExperimentScale | None = None,
) -> dict[float, dict[str, ContainmentPoint]]:
    """Fig. 7 — NN pipeline with vs without the polar-angle input."""
    scale = scale or ExperimentScale.from_env()
    with_polar = get_or_train_pipeline(include_polar=True)
    no_polar = get_or_train_pipeline(include_polar=False)
    geometry = adapt_geometry()
    response = DetectorResponse(geometry)
    out: dict[float, dict[str, ContainmentPoint]] = {}
    for i, polar in enumerate(scale.polar_angles):
        cfg = TrialConfig(
            fluence_mev_cm2=1.0, polar_angle_deg=polar, condition="ml"
        )
        out[polar] = {
            "polar": _point(
                geometry,
                response,
                cfg,
                scale,
                ml_pipeline=with_polar.pipeline,
                seed_offset=50 + i,
            ),
            "no_polar": _point(
                geometry,
                response,
                cfg,
                scale,
                ml_pipeline=no_polar.pipeline,
                seed_offset=50 + i,
            ),
        }
    return out


def print_figure7(results: dict[float, dict[str, ContainmentPoint]]) -> None:
    """Print the Fig. 7 polar-input comparison."""
    print("\nFigure 7 — impact of the polar-angle input (1 MeV/cm^2)")
    for polar, conditions in results.items():
        print(f"  polar {polar:4.0f} deg:")
        print(f"    Polar:    {conditions['polar'].row()}")
        print(f"    No Polar: {conditions['no_polar'].row()}")


# --------------------------------------------------------------------------
# Figure 10: perturbation robustness
# --------------------------------------------------------------------------


def figure10(
    scale: ExperimentScale | None = None,
    models: TrainedModels | None = None,
    epsilons: tuple[float, ...] = (0.0, 1.0, 5.0, 10.0),
) -> dict[float, dict[str, ContainmentPoint]]:
    """Fig. 10 — accuracy under Gaussian input perturbation."""
    scale = scale or ExperimentScale.from_env()
    models = models or get_or_train_pipeline()
    geometry = adapt_geometry()
    response = DetectorResponse(geometry)
    out: dict[float, dict[str, ContainmentPoint]] = {}
    for i, eps in enumerate(epsilons):
        base_cfg = TrialConfig(
            fluence_mev_cm2=1.0,
            polar_angle_deg=0.0,
            condition="baseline",
            epsilon_percent=eps,
        )
        ml_cfg = TrialConfig(
            fluence_mev_cm2=1.0,
            polar_angle_deg=0.0,
            condition="ml",
            epsilon_percent=eps,
        )
        out[eps] = {
            "baseline": _point(
                geometry, response, base_cfg, scale, seed_offset=70 + i
            ),
            "ml": _point(
                geometry,
                response,
                ml_cfg,
                scale,
                ml_pipeline=models.pipeline,
                seed_offset=70 + i,
            ),
        }
    return out


def print_figure10(results: dict[float, dict[str, ContainmentPoint]]) -> None:
    """Print the Fig. 10 perturbation series."""
    print("\nFigure 10 — accuracy with perturbed inputs (1 MeV/cm^2, polar 0)")
    for eps, conditions in results.items():
        print(f"  epsilon {eps:4.1f}%:")
        print(f"    without NN: {conditions['baseline'].row()}")
        print(f"    with NN:    {conditions['ml'].row()}")


# --------------------------------------------------------------------------
# Figure 11: quantized background model
# --------------------------------------------------------------------------


def build_int8_pipeline(
    seed: int = 2024, exposures_per_angle: int = 20
) -> tuple[MLPipeline, MLPipeline]:
    """Train the swapped model, quantize it, and build both pipelines.

    Returns:
        ``(fp32_pipeline, int8_pipeline)`` sharing the same dEta model,
        mirroring the paper's Fig. 11 setup.
    """
    swapped = get_or_train_pipeline(seed=seed, swapped=True,
                                    exposures_per_angle=exposures_per_angle)
    rng = np.random.default_rng(seed + 99)
    data = swapped.data
    int8_net = quantize_background_net(
        swapped.background_net,
        data.features,
        (data.labels == LABEL_BACKGROUND).astype(np.float64),
        data.polar_true,
        rng,
    )
    fp32_pipeline = swapped.pipeline
    int8_pipeline = MLPipeline(
        background_net=int8_net,  # type: ignore[arg-type]
        deta_net=swapped.deta_net,
        config=swapped.pipeline.config,
    )
    return fp32_pipeline, int8_pipeline


def figure11(
    scale: ExperimentScale | None = None,
) -> dict[float, dict[str, ContainmentPoint]]:
    """Fig. 11 — INT8-quantized vs FP32 background model across angles."""
    scale = scale or ExperimentScale.from_env()
    fp32_pipeline, int8_pipeline = build_int8_pipeline()
    geometry = adapt_geometry()
    response = DetectorResponse(geometry)
    out: dict[float, dict[str, ContainmentPoint]] = {}
    for i, polar in enumerate(scale.polar_angles):
        cfg = TrialConfig(
            fluence_mev_cm2=1.0, polar_angle_deg=polar, condition="ml"
        )
        out[polar] = {
            "fp32": _point(
                geometry,
                response,
                cfg,
                scale,
                ml_pipeline=fp32_pipeline,
                seed_offset=90 + i,
            ),
            "int8": _point(
                geometry,
                response,
                cfg,
                scale,
                ml_pipeline=int8_pipeline,
                seed_offset=90 + i,
            ),
        }
    return out


def print_figure11(results: dict[float, dict[str, ContainmentPoint]]) -> None:
    """Print the Fig. 11 INT8-vs-FP32 series."""
    print("\nFigure 11 — quantized background model (1 MeV/cm^2)")
    for polar, conditions in results.items():
        print(f"  polar {polar:4.0f} deg:")
        print(f"    FP32: {conditions['fp32'].row()}")
        print(f"    INT8: {conditions['int8'].row()}")


# --------------------------------------------------------------------------
# Tables I & II: platform timing
# --------------------------------------------------------------------------


def timing_table(platform: PlatformModel) -> list[tuple[str, float, float, float]]:
    """One platform's Table I/II rows at the paper-nominal workload.

    Returns:
        Rows of ``(stage, mean_ms, min_ms, max_ms)`` plus the 5-iteration
        total as the final row.
    """
    times = platform.predict()
    rows = [
        (stage, times.mean_ms[stage], *times.range_ms[stage])
        for stage in STAGE_NAMES
    ]
    lo, hi = times.total_range()
    rows.append(("Total (Max 5 iter)", times.total_mean(), lo, hi))
    return rows


def print_timing_table(platform: PlatformModel) -> None:
    """Print one platform's Table I/II rows."""
    print(f"\nTiming results on {platform.name}")
    print(f"  {'Stage':22s} {'Mean (ms)':>10s} {'Range (ms)':>14s}")
    for stage, mean, lo, hi in timing_table(platform):
        print(f"  {stage:22s} {mean:10.1f} {lo:6.0f}-{hi:.0f}")


def table1() -> list[tuple[str, float, float, float]]:
    """Table I — RPi 3B+ stage timings."""
    return timing_table(RPI3B_PLUS)


def table2() -> list[tuple[str, float, float, float]]:
    """Table II — Atom stage timings."""
    return timing_table(ATOM)


# --------------------------------------------------------------------------
# Table III: FPGA synthesis
# --------------------------------------------------------------------------


def table3() -> dict[str, KernelReport]:
    """Table III — INT8 vs FP32 kernel synthesis estimates."""
    return {
        "int8": synthesize_kernel(dtype="int8"),
        "fp32": synthesize_kernel(dtype="fp32"),
    }


def print_table3(reports: dict[str, KernelReport] | None = None) -> None:
    """Print the Table III statistic rows."""
    reports = reports or table3()
    r8, r32 = reports["int8"], reports["fp32"]
    print("\nTable III — quantization results on FPGA (model estimates)")
    rows = [
        ("Latency (cycles)", r8.latency_cycles, r32.latency_cycles),
        ("Initiation Interval (cycles)", r8.ii_cycles, r32.ii_cycles),
        ("BRAM Blocks", r8.bram, r32.bram),
        ("DSP Slices", r8.dsp, r32.dsp),
        ("Flip-Flops", r8.ff, r32.ff),
        ("Lookup Tables", r8.lut, r32.lut),
        (
            f"Latency (ms) for {PAPER_NUM_RINGS} rings",
            round(r8.batch_latency_ms(PAPER_NUM_RINGS), 2),
            round(r32.batch_latency_ms(PAPER_NUM_RINGS), 2),
        ),
    ]
    print(f"  {'Statistic':32s} {'INT8':>12s} {'FP32':>12s}")
    for name, a, b in rows:
        print(f"  {name:32s} {a:>12} {b:>12}")
