"""Containment-calibration campaigns for sky-map credible regions.

A credible region is only useful if it is *calibrated*: over many
bursts, the 90% region should contain the true origin ~90% of the time.
This module measures that directly — simulate N independent trials,
localize each with the hierarchical sky search attached, and record for
every trial whether the true origin's pixel fell inside the 68% and 90%
regions (plus the region areas and the point-estimate error).

Calibration holds exactly when the ring noise model holds, i.e. when
``d eta`` is the true per-ring error scale — the paper's ``true_deta``
oracle condition (the regime the dEta network approaches).  The default
campaign therefore runs that condition; running ``condition="baseline"``
instead measures how badly the *propagated* widths miscalibrate the
regions, which is the paper's motivating gap in region form.  See
``docs/localization.md`` for the methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.detector.response import DetectorResponse
from repro.experiments.report import ExperimentRecord
from repro.experiments.trials import TrialConfig, _simulate_trial
from repro.geometry.tiles import DetectorGeometry
from repro.localization.hierarchy import SkymapConfig
from repro.localization.pipeline import localize_baseline
from repro.pipeline.ml_pipeline import MLPipeline

#: Columns of one calibration-trial row, in order (see
#: :func:`calibration_trial`).
TRIAL_FIELDS = (
    "error_deg",
    "area68_deg2",
    "area90_deg2",
    "contained68",
    "contained90",
)


def calibration_trial(
    geometry: DetectorGeometry,
    response: DetectorResponse,
    rng: np.random.Generator,
    config: TrialConfig,
    skymap: SkymapConfig,
    ml_pipeline: MLPipeline | None = None,
    engine=None,
) -> np.ndarray:
    """Run one trial and score its credible regions against the truth.

    Args:
        geometry: Detector geometry.
        response: Detector response.
        rng: Trial generator.
        config: Experimental point (any :data:`~repro.experiments.trials.CONDITIONS`).
        skymap: Hierarchical search parameters.
        ml_pipeline: Required for the ``"ml"`` condition.
        engine: Optional pre-built inference engine for the ML condition.

    Returns:
        ``(5,)`` float array in :data:`TRIAL_FIELDS` order.  Failed
        localizations (no usable rings) score 180 degrees, NaN areas,
        and non-containment at both levels.

    Raises:
        ValueError: If the ML condition is requested without a pipeline.
    """
    events, grb = _simulate_trial(geometry, response, rng, config)
    truth = grb.source_direction
    if config.condition == "ml":
        if ml_pipeline is None:
            raise ValueError("ml condition requires a trained MLPipeline")
        pipeline = MLPipeline(
            background_net=ml_pipeline.background_net,
            deta_net=ml_pipeline.deta_net,
            config=replace(ml_pipeline.config, skymap=skymap),
        )
        outcome = pipeline.localize(
            events, rng, halt_after=config.halt_after, engine=engine
        )
    else:
        outcome = localize_baseline(
            events,
            rng,
            drop_background=(config.condition == "no_background"),
            true_deta=(config.condition == "true_deta"),
            skymap=skymap,
        )
    error = outcome.error_degrees(truth)
    sky = outcome.sky
    if sky is None:
        return np.array([error, np.nan, np.nan, 0.0, 0.0])
    return np.array(
        [
            error,
            sky.credible_region_area_deg2(0.68),
            sky.credible_region_area_deg2(0.90),
            float(sky.contains(truth, 0.68)),
            float(sky.contains(truth, 0.90)),
        ]
    )


@dataclass
class CalibrationReport:
    """Campaign-level containment-calibration statistics.

    Attributes:
        errors_deg: ``(n,)`` per-trial point-estimate errors.
        area68_deg2: ``(n,)`` 68% credible-region areas (NaN on failure).
        area90_deg2: ``(n,)`` 90% credible-region areas (NaN on failure).
        contained68: ``(n,)`` truth-in-68%-region flags.
        contained90: ``(n,)`` truth-in-90%-region flags.
    """

    errors_deg: np.ndarray
    area68_deg2: np.ndarray
    area90_deg2: np.ndarray
    contained68: np.ndarray
    contained90: np.ndarray

    @property
    def n_trials(self) -> int:
        """Trials in the campaign."""
        return int(self.errors_deg.shape[0])

    def fraction(self, level: float) -> float:
        """Observed containment fraction at a supported level (0.68/0.9).

        A calibrated map returns ~``level``.  Failed localizations count
        as non-contained, so the statistic penalizes rather than drops
        them.

        Raises:
            ValueError: For levels other than 0.68 and 0.9.
        """
        if abs(level - 0.68) < 1e-9:
            flags = self.contained68
        elif abs(level - 0.9) < 1e-9:
            flags = self.contained90
        else:
            raise ValueError("calibration campaigns record levels 0.68 and 0.9")
        return float(np.mean(flags)) if flags.size else float("nan")

    def summary(self) -> dict:
        """JSON-able summary (the shape embedded in ``BENCH_pr10.json``)."""
        ok = np.isfinite(self.area90_deg2)
        return {
            "n_trials": self.n_trials,
            "n_localized": int(ok.sum()),
            "fraction68": self.fraction(0.68),
            "fraction90": self.fraction(0.9),
            "median_area68_deg2": float(np.median(self.area68_deg2[ok]))
            if ok.any()
            else float("nan"),
            "median_area90_deg2": float(np.median(self.area90_deg2[ok]))
            if ok.any()
            else float("nan"),
            "median_error_deg": float(np.median(self.errors_deg)),
        }

    def to_record(self, parameters: dict | None = None) -> ExperimentRecord:
        """Package the campaign as a persistable experiment record."""
        return ExperimentRecord(
            experiment="skymap_calibration",
            parameters=dict(parameters or {}),
            results={
                **self.summary(),
                "errors_deg": self.errors_deg,
                "area90_deg2": self.area90_deg2,
                "contained90": self.contained90,
            },
        )


#: Candidate likelihood temperatures tried by :func:`fit_temperature`,
#: coldest first.
DEFAULT_TEMPERATURES = (1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0)


def fit_temperature(
    geometry: DetectorGeometry,
    response: DetectorResponse,
    seed: int,
    n_trials: int,
    config: TrialConfig | None = None,
    skymap: SkymapConfig | None = None,
    ml_pipeline: MLPipeline | None = None,
    level: float = 0.9,
    temperatures: tuple[float, ...] = DEFAULT_TEMPERATURES,
    n_workers: int = 1,
    executor=None,
) -> tuple[float, "CalibrationReport"]:
    """Fit the likelihood temperature on a seeded calibration campaign.

    Classic temperature scaling, adapted to regions: run the campaign at
    each candidate temperature (coldest first) and keep the first whose
    observed containment fraction reaches ``level`` — the least
    smoothing that makes the ``level`` region honest.  Evaluate the
    fitted temperature on a *held-out* seed to quote unbiased coverage
    (``scripts/bench_report.py --skymap`` does exactly that).

    Args:
        geometry: Detector geometry.
        response: Detector response.
        seed: Master seed of the fitting campaign.
        n_trials: Trials per candidate temperature.
        config: Experimental point (``true_deta`` condition by default).
        skymap: Search parameters; each candidate overrides only
            ``temperature``.
        ml_pipeline: Required for the ``"ml"`` condition.
        level: Credible level to calibrate (0.68 or 0.9).
        temperatures: Candidate grid, tried in ascending order.
        n_workers: Executor fan-out.
        executor: Explicit executor (overrides ``n_workers``).

    Returns:
        ``(temperature, report)`` — the fitted temperature and the
        fitting-campaign report at that temperature.  Falls back to the
        hottest candidate when none reaches ``level``.

    Raises:
        ValueError: For an empty candidate grid.
    """
    if not temperatures:
        raise ValueError("need at least one candidate temperature")
    base = skymap or SkymapConfig()
    picked: tuple[float, CalibrationReport] | None = None
    for temperature in sorted(temperatures):
        report = run_calibration(
            geometry,
            response,
            seed,
            n_trials,
            config=config,
            skymap=replace(base, temperature=temperature),
            ml_pipeline=ml_pipeline,
            n_workers=n_workers,
            executor=executor,
        )
        picked = (float(temperature), report)
        if report.fraction(level) >= level:
            break
    assert picked is not None
    return picked


def run_calibration(
    geometry: DetectorGeometry,
    response: DetectorResponse,
    seed: int,
    n_trials: int,
    config: TrialConfig | None = None,
    skymap: SkymapConfig | None = None,
    ml_pipeline: MLPipeline | None = None,
    n_workers: int = 1,
    executor=None,
) -> CalibrationReport:
    """Run a containment-calibration campaign.

    Trials are seeded by ``SeedSequence.spawn`` exactly like
    :func:`~repro.experiments.trials.run_trials`, so the report is
    bit-identical at every worker count.

    Args:
        geometry: Detector geometry.
        response: Detector response.
        seed: Master seed.
        n_trials: Independent trials.
        config: Experimental point; defaults to the ``true_deta``
            condition, the regime where the ring noise model (and thus
            calibration) holds — see the module docstring.
        skymap: Hierarchical search parameters (defaults).
        ml_pipeline: Required for the ``"ml"`` condition.
        n_workers: Fan-out over the persistent campaign executor.
        executor: Explicit executor (overrides ``n_workers``).

    Returns:
        A :class:`CalibrationReport`.

    Raises:
        ValueError: For a non-positive trial count.
    """
    from repro.experiments._campaign_worker import calibration_worker
    from repro.obs import trace as obs_trace
    from repro.parallel import get_executor

    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    config = config or TrialConfig(condition="true_deta")
    skymap = skymap or SkymapConfig()
    with obs_trace.span("calibration.run_calibration"):
        engine = None
        if config.condition == "ml" and ml_pipeline is not None:
            if config.infer_backend != "reference":
                from repro.infer import build_engine

                engine = build_engine(
                    ml_pipeline, config.infer_backend, dtype=config.infer_dtype
                )
        seeds = np.random.SeedSequence(seed).spawn(n_trials)
        ex = executor if executor is not None else get_executor(n_workers)
        common = (geometry, response, config, skymap, ml_pipeline, engine)
        rows = np.array(ex.map(calibration_worker, seeds, common=common))
        return CalibrationReport(
            errors_deg=rows[:, 0],
            area68_deg2=rows[:, 1],
            area90_deg2=rows[:, 2],
            contained68=rows[:, 3].astype(bool),
            contained90=rows[:, 4].astype(bool),
        )
