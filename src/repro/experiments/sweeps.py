"""Grid sweeps over trial configurations.

A thin harness for running the trial machinery over a Cartesian grid of
:class:`~repro.experiments.trials.TrialConfig` fields and collecting
containment statistics per point — the pattern every figure driver
repeats, exposed for ad-hoc studies (e.g. fluence x polar-angle maps).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import product

import numpy as np

from repro.detector.response import DetectorResponse
from repro.experiments.containment import containment
from repro.experiments.trials import TrialConfig, run_trials
from repro.geometry.tiles import DetectorGeometry
from repro.pipeline.ml_pipeline import MLPipeline


@dataclass
class SweepPoint:
    """One grid point's settings and results.

    Attributes:
        overrides: The TrialConfig field values of this point.
        errors: Per-trial localization errors, degrees.
    """

    overrides: dict
    errors: np.ndarray

    def containment(self, level: float) -> float:
        """Containment radius of this point's errors at ``level``."""
        return containment(self.errors, level)


def sweep(
    geometry: DetectorGeometry,
    response: DetectorResponse,
    base_config: TrialConfig,
    grid: dict[str, list],
    seed: int,
    n_trials: int,
    ml_pipeline: MLPipeline | None = None,
    n_workers: int = 1,
    executor=None,
    cache=None,
) -> list[SweepPoint]:
    """Run trials over the Cartesian product of ``grid`` values.

    All points share one persistent executor, so the pool is started (and
    the campaign context broadcast) once for the whole sweep rather than
    once per grid point.

    Args:
        geometry: Detector geometry.
        response: Detector response.
        base_config: Config providing every non-swept field.
        grid: Mapping of TrialConfig field name -> list of values.
        seed: Master seed (each point gets an independent spawn).
        n_trials: Trials per point.
        ml_pipeline: Required if any point uses the "ml" condition.
        n_workers: Trial fan-out per point.
        executor: Explicit :class:`~repro.parallel.CampaignExecutor`
            (overrides ``n_workers``).
        cache: Deterministic stage cache forwarded to every point's
            :func:`~repro.experiments.trials.run_trials`.

    Returns:
        One :class:`SweepPoint` per grid combination, in ``product``
        order.

    Raises:
        ValueError: For an empty grid or unknown field names.
        CampaignWorkerError: A point's trials failed (task exception or a
            chunk past the executor's crash-retry budget).  The shared
            pool survives either way, so a caller may catch this, drop
            the point, and continue the sweep on the same executor.
    """
    from repro.obs import trace as obs_trace
    from repro.parallel import get_executor

    if not grid:
        raise ValueError("grid must be non-empty")
    valid_fields = set(TrialConfig.__dataclass_fields__)
    unknown = set(grid) - valid_fields
    if unknown:
        raise ValueError(f"unknown TrialConfig fields: {sorted(unknown)}")

    names = sorted(grid)
    combos = list(product(*(grid[name] for name in names)))
    seeds = np.random.SeedSequence(seed).spawn(len(combos))
    ex = executor if executor is not None else get_executor(n_workers)
    points: list[SweepPoint] = []
    with obs_trace.span("sweeps.sweep"):
        for combo, point_seed in zip(combos, seeds):
            overrides = dict(zip(names, combo))
            config = replace(base_config, **overrides)
            with obs_trace.span("sweeps.point"):
                errors = run_trials(
                    geometry,
                    response,
                    int(point_seed.generate_state(1)[0]),
                    n_trials,
                    config,
                    ml_pipeline,
                    executor=ex,
                    cache=cache,
                )
            points.append(SweepPoint(overrides=overrides, errors=errors))
    return points
