"""Experiment harness: training campaigns, trials, containment statistics,
and per-figure/table reproduction drivers."""

from repro.experiments.calibration import (
    CalibrationReport,
    calibration_trial,
    fit_temperature,
    run_calibration,
)
from repro.experiments.containment import containment, containment_with_errorbars
from repro.experiments.datasets import TrainingData, generate_training_rings
from repro.experiments.report import ExperimentRecord
from repro.experiments.sweeps import SweepPoint, sweep
from repro.experiments.trials import (
    TrialConfig,
    run_meta_trials,
    run_trials,
    trial_error,
)

__all__ = [
    "CalibrationReport",
    "calibration_trial",
    "fit_temperature",
    "run_calibration",
    "containment",
    "containment_with_errorbars",
    "TrainingData",
    "generate_training_rings",
    "TrialConfig",
    "run_trials",
    "run_meta_trials",
    "trial_error",
    "ExperimentRecord",
    "sweep",
    "SweepPoint",
]
