"""Trained-model cache shared by benchmarks and examples.

Training the two networks takes a minute or two at the default scaled-down
statistics; every figure bench needs them.  ``get_or_train_pipeline``
trains once per (seed, scale, variant) and caches the result on disk so
the full benchmark suite trains models a single time.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.detector.response import DetectorResponse
from repro.experiments.datasets import TrainingData, generate_training_rings
from repro.geometry.tiles import DetectorGeometry, adapt_geometry
from repro.models.background import (
    BackgroundNet,
    BackgroundTrainConfig,
    train_background_net,
)
from repro.models.deta import DEtaNet, train_deta_net
from repro.models.features import NUM_BASE_FEATURES
from repro.pipeline.ml_pipeline import MLPipeline
from repro.sources.grb import LABEL_BACKGROUND

#: Default on-disk cache location (repo-local, git-ignorable).
DEFAULT_CACHE_DIR = Path(__file__).resolve().parents[3] / ".model_cache"


@dataclass
class TrainedModels:
    """Everything the experiment drivers need.

    Attributes:
        pipeline: The ML localization pipeline (polar-aware models).
        background_net: The background classifier (same object as in
            ``pipeline``).
        deta_net: The dEta regressor (same object as in ``pipeline``).
        data: The training data used (for model-quality diagnostics).
    """

    pipeline: MLPipeline
    background_net: BackgroundNet
    deta_net: DEtaNet
    data: TrainingData


def train_models(
    geometry: DetectorGeometry | None = None,
    response: DetectorResponse | None = None,
    seed: int = 2024,
    exposures_per_angle: int = 20,
    include_polar: bool = True,
    swapped: bool = False,
    data: TrainingData | None = None,
) -> TrainedModels:
    """Run the training campaign and fit both networks.

    Args:
        geometry: Detector geometry (ADAPT default if None).
        response: Detector response (default config if None).
        seed: Master seed for data generation and training.
        exposures_per_angle: Campaign size knob (paper-scale would be
            thousands; 20 gives ~40k rings and trains in ~1 minute).
        include_polar: Train with the polar-angle feature (False gives the
            Fig. 7 "No Polar" ablation models).
        swapped: Use the fusion-friendly layer order (QAT variant).
        data: Pre-generated training data (skips the campaign).

    Returns:
        A :class:`TrainedModels` bundle.
    """
    geometry = geometry or adapt_geometry()
    response = response or DetectorResponse(geometry)
    if data is None:
        data = generate_training_rings(
            geometry, response, seed=seed, exposures_per_angle=exposures_per_angle
        )
    features = data.features if include_polar else data.features[:, :NUM_BASE_FEATURES]
    labels = (data.labels == LABEL_BACKGROUND).astype(np.float64)

    rng = np.random.default_rng(seed + 1)
    background_net = train_background_net(
        features,
        labels,
        data.polar_true,
        rng,
        config=BackgroundTrainConfig(swapped=swapped),
        include_polar=include_polar,
    )
    grb = data.grb_only()
    grb_features = (
        grb.features if include_polar else grb.features[:, :NUM_BASE_FEATURES]
    )
    deta_net = train_deta_net(
        grb_features,
        grb.true_eta_errors,
        rng,
        include_polar=include_polar,
    )
    pipeline = MLPipeline(background_net=background_net, deta_net=deta_net)
    return TrainedModels(
        pipeline=pipeline,
        background_net=background_net,
        deta_net=deta_net,
        data=data,
    )


def get_or_train_pipeline(
    seed: int = 2024,
    exposures_per_angle: int = 20,
    include_polar: bool = True,
    swapped: bool = False,
    cache_dir: str | Path | None = None,
) -> TrainedModels:
    """Load the cached trained bundle, training (and caching) on a miss.

    The cache key includes every argument that changes the result.
    """
    import pickle

    cache_dir = Path(cache_dir) if cache_dir is not None else DEFAULT_CACHE_DIR
    cache_dir.mkdir(parents=True, exist_ok=True)
    key = (
        f"models_s{seed}_e{exposures_per_angle}"
        f"_p{int(include_polar)}_w{int(swapped)}.pkl"
    )
    path = cache_dir / key
    if path.exists():
        with open(path, "rb") as f:
            cached = pickle.load(f)
        if isinstance(cached, TrainedModels):
            return cached
    models = train_models(
        seed=seed,
        exposures_per_angle=exposures_per_angle,
        include_polar=include_polar,
        swapped=swapped,
    )
    with open(path, "wb") as f:
        pickle.dump(models, f)
    return models
