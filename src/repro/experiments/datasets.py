"""Training-data generation campaigns.

The paper trains on rings from 270M simulated photons spread over nine
polar angles (0..80 degrees in ten-degree steps) plus background, keeping
the ~1M rings that pass reconstruction quality filters (~60/40
GRB/background).  This module reproduces that protocol at configurable
(scaled-down) statistics: simulate exposures per angle, reconstruct,
filter, and collect per-ring features, truth labels, and true ``eta``
errors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detector.response import DetectorResponse
from repro.experiments import _campaign_worker  # noqa: F401  (re-export hook)
from repro.geometry.tiles import DetectorGeometry
from repro.localization.pipeline import BaselineConfig, prepare_rings
from repro.models.features import extract_features
from repro.sources.background import BackgroundModel
from repro.sources.exposure import simulate_exposure
from repro.sources.grb import GRBSource, LABEL_GRB


@dataclass
class TrainingData:
    """Collected training rings.

    Attributes:
        features: ``(n, 13)`` model inputs (final column = polar angle,
            jittered truth).
        labels: ``(n,)`` 1 = background, 0 = GRB.
        true_eta_errors: ``(n,)`` |true eta error| (meaningful for GRB
            rings; background rings carry the residual w.r.t. their
            exposure's GRB direction and are excluded from dEta training).
        polar_true: ``(n,)`` true source polar angle of the ring's
            exposure, degrees.
        prop_deta: ``(n,)`` the propagation-of-error ``d eta`` (for
            diagnostics and ablations).
    """

    features: np.ndarray
    labels: np.ndarray
    true_eta_errors: np.ndarray
    polar_true: np.ndarray
    prop_deta: np.ndarray

    @property
    def num_rings(self) -> int:
        return int(self.labels.shape[0])

    def grb_only(self) -> "TrainingData":
        """Subset of GRB-origin rings (the dEta training population)."""
        sel = self.labels == LABEL_GRB
        return TrainingData(
            features=self.features[sel],
            labels=self.labels[sel],
            true_eta_errors=self.true_eta_errors[sel],
            polar_true=self.polar_true[sel],
            prop_deta=self.prop_deta[sel],
        )

    @staticmethod
    def concatenate(parts: list["TrainingData"]) -> "TrainingData":
        if not parts:
            raise ValueError("no parts to concatenate")
        return TrainingData(
            features=np.concatenate([p.features for p in parts], axis=0),
            labels=np.concatenate([p.labels for p in parts]),
            true_eta_errors=np.concatenate([p.true_eta_errors for p in parts]),
            polar_true=np.concatenate([p.polar_true for p in parts]),
            prop_deta=np.concatenate([p.prop_deta for p in parts]),
        )


def collect_exposure_rings(
    geometry: DetectorGeometry,
    response: DetectorResponse,
    rng: np.random.Generator,
    polar_deg: float,
    fluence_mev_cm2: float = 1.0,
    background: BackgroundModel | None = None,
    polar_jitter_deg: float = 5.0,
    config: BaselineConfig | None = None,
) -> TrainingData:
    """Simulate one exposure and extract its training rings.

    The polar-angle feature is the *true* angle plus uniform jitter of
    ``+- polar_jitter_deg`` — during flight the networks see the
    pipeline's estimate, which the paper observes only needs to be correct
    to within about ten degrees, so training with jittered truth makes the
    models robust to estimate error.

    Args:
        geometry: Detector geometry.
        response: Detector response model.
        rng: Random generator.
        polar_deg: True GRB polar angle for this exposure.
        fluence_mev_cm2: GRB fluence.
        background: Background model (default model if None).
        polar_jitter_deg: Polar-feature jitter amplitude.
        config: Filter configuration.

    Returns:
        A :class:`TrainingData` fragment.
    """
    azimuth_deg = float(rng.uniform(0.0, 360.0))
    grb = GRBSource(
        fluence_mev_cm2=fluence_mev_cm2,
        polar_angle_deg=polar_deg,
        azimuth_deg=azimuth_deg,
    )
    bkg = background or BackgroundModel()
    exposure = simulate_exposure(geometry, rng, grb, bkg)
    events = response.digitize(exposure.transport, exposure.batch, rng, min_hits=2)
    rings = prepare_rings(events, config)
    m = rings.num_rings
    if m == 0:
        return TrainingData(
            features=np.empty((0, 13)),
            labels=np.empty(0, dtype=np.int64),
            true_eta_errors=np.empty(0),
            polar_true=np.empty(0),
            prop_deta=np.empty(0),
        )
    jitter = rng.uniform(-polar_jitter_deg, polar_jitter_deg, size=m)
    polar_feature = np.clip(polar_deg + jitter, 0.0, 90.0)
    # During flight the networks see the pipeline's *estimated* direction;
    # jittering the true azimuth the same way trains in that tolerance.
    azimuth_feature = azimuth_deg + float(
        rng.uniform(-polar_jitter_deg, polar_jitter_deg)
    )
    features = extract_features(
        rings,
        events,
        polar_guess_deg=polar_feature,
        azimuth_deg=azimuth_feature,
    )
    return TrainingData(
        features=features,
        labels=rings.labels.copy(),
        true_eta_errors=rings.true_eta_errors(),
        polar_true=np.full(m, polar_deg),
        prop_deta=rings.deta.copy(),
    )


def generate_training_rings(
    geometry: DetectorGeometry,
    response: DetectorResponse,
    seed: int,
    polar_angles_deg: np.ndarray | None = None,
    exposures_per_angle: int = 10,
    fluence_mev_cm2: float = 1.0,
    background: BackgroundModel | None = None,
    polar_jitter_deg: float = 5.0,
    n_workers: int = 1,
    background_fraction: float | None = 0.4,
    executor=None,
    cache=None,
) -> TrainingData:
    """Run the full training campaign over all polar angles.

    Args:
        geometry: Detector geometry.
        response: Detector response model.
        seed: Master seed; per-exposure generators are spawned from it so
            results are reproducible regardless of ``n_workers``.
        polar_angles_deg: Source angles (paper: 0..80 step 10).
        exposures_per_angle: Independent exposures per angle.
        fluence_mev_cm2: GRB fluence for training exposures.
        background: Background model.
        polar_jitter_deg: Polar-feature jitter.
        n_workers: Fan-out over the persistent campaign executor; ring
            arrays return to the parent via shared memory.
        background_fraction: Target background share of the final dataset
            (paper: ~40%), achieved by subsampling background rings; None
            keeps the raw composition.
        executor: Explicit :class:`~repro.parallel.CampaignExecutor`
            (overrides ``n_workers``).
        cache: Deterministic stage cache — True for the default
            ``.campaign_cache/``, a path/:class:`StageCache` for a custom
            one, None to disable.  The campaign is pure in (seed, config),
            so a hit is bit-identical to a recompute.

    Returns:
        The concatenated :class:`TrainingData`.

    Raises:
        CampaignWorkerError: An exposure raised (same exception at every
            worker count), or repeatedly crashed its workers past the
            executor's retry budget.  Crashes within budget are recovered
            by respawn + redispatch without changing the dataset; the
            stage cache is only written on full success.
    """
    from repro.obs import trace as obs_trace
    from repro.parallel import config_token, get_executor, resolve_cache

    if polar_angles_deg is None:
        polar_angles_deg = np.arange(0.0, 81.0, 10.0)
    with obs_trace.span("datasets.generate_training_rings"):
        stage_cache = resolve_cache(cache)
        token = None
        if stage_cache is not None:
            token = config_token(
                seed,
                np.asarray(polar_angles_deg, dtype=np.float64),
                exposures_per_angle,
                fluence_mev_cm2,
                background,
                polar_jitter_deg,
                background_fraction,
                geometry,
                response,
            )
            hit = stage_cache.load("training_rings", token)
            if hit is not None:
                return hit
        tasks = [
            (float(polar), i)
            for polar in polar_angles_deg
            for i in range(exposures_per_angle)
        ]
        seeds = np.random.SeedSequence(seed).spawn(len(tasks))
        ex = executor if executor is not None else get_executor(n_workers)
        parts = ex.map(
            _campaign_worker.collect_worker,
            [(polar, ss) for (polar, _), ss in zip(tasks, seeds)],
            common=(
                geometry, response, fluence_mev_cm2, background,
                polar_jitter_deg,
            ),
        )
        data = TrainingData.concatenate(parts)
        if background_fraction is not None:
            data = _rebalance(
                data, background_fraction, np.random.default_rng(seed)
            )
        if stage_cache is not None:
            stage_cache.store("training_rings", token, data)
        return data


def _rebalance(
    data: TrainingData, background_fraction: float, rng: np.random.Generator
) -> TrainingData:
    """Subsample background rings to hit the target class composition.

    If the raw data is already at or below the target background share,
    it is returned unchanged (GRB rings are never discarded).
    """
    if not (0.0 < background_fraction < 1.0):
        raise ValueError("background_fraction must be in (0, 1)")
    is_bkg = data.labels == 1
    n_bkg = int(is_bkg.sum())
    n_grb = data.num_rings - n_bkg
    target_bkg = int(round(n_grb * background_fraction / (1.0 - background_fraction)))
    if n_bkg <= target_bkg or n_grb == 0:
        return data
    bkg_idx = np.nonzero(is_bkg)[0]
    keep_bkg = rng.choice(bkg_idx, size=target_bkg, replace=False)
    keep = np.zeros(data.num_rings, dtype=bool)
    keep[~is_bkg] = True
    keep[keep_bkg] = True
    return TrainingData(
        features=data.features[keep],
        labels=data.labels[keep],
        true_eta_errors=data.true_eta_errors[keep],
        polar_true=data.polar_true[keep],
        prop_deta=data.prop_deta[keep],
    )
