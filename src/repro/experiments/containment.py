"""Containment statistics.

The paper reports *68% and 95% containment*: the largest localization
error observed in at most 68% / 95% of the trials, with error bars over
meta-trials (independent repetitions of the whole trial set).
"""

from __future__ import annotations

import numpy as np


def containment(errors: np.ndarray, level: float) -> float:
    """Containment radius: the error not exceeded by ``level`` of trials.

    Uses the order statistic at ``ceil(level * n)`` ("the largest error
    observed in at most level*n trials"), matching the paper's phrasing
    rather than an interpolated percentile.

    Args:
        errors: ``(n,)`` per-trial localization errors (degrees).
        level: Containment fraction in (0, 1], e.g. 0.68 or 0.95.

    Returns:
        The containment radius in the same units as ``errors``.

    Raises:
        ValueError: On empty input or a level outside (0, 1].
    """
    errors = np.asarray(errors, dtype=np.float64).ravel()
    if errors.size == 0:
        raise ValueError("containment of empty error set")
    if not (0.0 < level <= 1.0):
        raise ValueError("level must be in (0, 1]")
    k = int(np.ceil(level * errors.size))
    k = min(max(k, 1), errors.size)
    return float(np.sort(errors)[k - 1])


def containment_with_errorbars(
    error_sets: list[np.ndarray], level: float
) -> tuple[float, float]:
    """Mean and standard deviation of containment over meta-trials.

    Args:
        error_sets: One error array per meta-trial.
        level: Containment fraction.

    Returns:
        ``(mean, std)`` of the per-meta-trial containment radii; ``std``
        is 0 for a single meta-trial.
    """
    if not error_sets:
        raise ValueError("no meta-trials provided")
    values = np.array([containment(e, level) for e in error_sets])
    return float(values.mean()), float(values.std())
