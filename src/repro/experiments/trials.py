"""Localization-trial runner.

One *trial* = simulate an exposure (GRB + background), digitize, localize
with a chosen pipeline condition, and record the angular error.  The paper
runs 1000 trials x 10 meta-trials per experimental point; the runner
exposes those counts as parameters and can fan trials out over processes.

Conditions:

* ``"baseline"`` — the pre-ML pipeline.
* ``"no_background"`` — oracle removal of background rings (Fig. 4).
* ``"true_deta"`` — oracle true ``eta`` errors as ``d eta`` (Fig. 4).
* ``"ml"`` — the full Fig. 6 neural-network pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detector.perturb import perturb_events
from repro.detector.response import DetectorResponse
from repro.geometry.tiles import DetectorGeometry
from repro.localization.pipeline import localize_baseline
from repro.pipeline.ml_pipeline import MLPipeline
from repro.sources.background import BackgroundModel
from repro.sources.exposure import simulate_exposure
from repro.sources.grb import GRBSource

CONDITIONS = ("baseline", "no_background", "true_deta", "ml")
#: Inference backends accepted by :class:`TrialConfig.infer_backend`
#: (mirrors ``repro.infer.INFER_BACKENDS`` without importing it here —
#: the infer runtime is only loaded when an ML campaign asks for it).
INFER_BACKENDS = ("reference", "planned", "int8")
#: Plan compute dtypes accepted by :class:`TrialConfig.infer_dtype`
#: (mirrors ``repro.infer.PLANNED_DTYPES``, same lazy-import rationale).
INFER_DTYPES = ("float32", "float64")


@dataclass(frozen=True)
class TrialConfig:
    """Parameters of one experimental point.

    Attributes:
        fluence_mev_cm2: GRB fluence.
        polar_angle_deg: GRB polar angle.
        condition: One of :data:`CONDITIONS`.
        background: Background model (default model if None).
        epsilon_percent: Fig. 10 input-perturbation level.
        min_hits: Event-multiplicity cut at digitization.
        halt_after: Anytime knob forwarded to the ML pipeline.
    """

    fluence_mev_cm2: float = 1.0
    polar_angle_deg: float = 0.0
    condition: str = "baseline"
    background: BackgroundModel | None = None
    epsilon_percent: float = 0.0
    min_hits: int = 2
    halt_after: int | None = None
    #: Optional event-builder coincidence window (None = perfect photon
    #: separation; see repro.detector.coincidence).
    coincidence_window_s: float | None = None
    #: Inference backend for the ML condition: "reference" (eager
    #: bundles), "planned" (compiled plans + arenas; bit-identical to
    #: reference per event), or "int8" (requires a quantized pipeline).
    #: The engine is compiled once in the parent and shipped to workers
    #: via the executor's common payload.
    infer_backend: str = "reference"
    #: Events localized per lock-step batched inference group
    #: (repro.infer.localize_many).  1 = per-event inference (the
    #: bit-identical default); >1 gathers ring blocks across events into
    #: one planned pass per round (ulp-level deviations possible — see
    #: docs/inference.md).
    event_batch: int = 1
    #: Compute dtype of the compiled float plans when infer_backend is
    #: not "reference".  Campaigns default to "float64" so planned runs
    #: stay bit-identical to the eager reference; "float32" is the
    #: runtime-default deployment dtype (sgemm, half the arena bytes)
    #: with ulp-level deviations.
    infer_dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.condition not in CONDITIONS:
            raise ValueError(f"condition must be one of {CONDITIONS}")
        if self.infer_backend not in INFER_BACKENDS:
            raise ValueError(
                f"infer_backend must be one of {INFER_BACKENDS}"
            )
        if self.infer_dtype not in INFER_DTYPES:
            raise ValueError(
                f"infer_dtype must be one of {INFER_DTYPES}"
            )
        if self.event_batch < 1:
            raise ValueError("event_batch must be >= 1")
        if self.condition != "ml":
            if self.infer_backend != "reference":
                raise ValueError(
                    "infer_backend only applies to the 'ml' condition"
                )
            if self.infer_dtype != "float64":
                raise ValueError(
                    "infer_dtype only applies to the 'ml' condition"
                )
            if self.event_batch != 1:
                raise ValueError(
                    "event_batch only applies to the 'ml' condition"
                )


def _simulate_trial(
    geometry: DetectorGeometry,
    response: DetectorResponse,
    rng: np.random.Generator,
    config: TrialConfig,
):
    """Simulate + digitize one trial; returns ``(events, grb)``.

    Factored out of :func:`trial_error` so the batched-inference path can
    simulate several trials before localizing them as one lock-step group
    — the simulation consumes ``rng`` in exactly the same order either
    way.
    """
    grb = GRBSource(
        fluence_mev_cm2=config.fluence_mev_cm2,
        polar_angle_deg=config.polar_angle_deg,
        # The source azimuth is arbitrary in flight; randomizing it per
        # trial keeps the evaluation honest about the azimuth-canonical
        # feature frame.
        azimuth_deg=float(rng.uniform(0.0, 360.0)),
    )
    background = config.background or BackgroundModel()
    exposure = simulate_exposure(geometry, rng, grb, background)
    transport, batch = exposure.transport, exposure.batch
    if config.coincidence_window_s is not None:
        from repro.detector.coincidence import (
            CoincidenceConfig,
            build_events_with_pileup,
        )

        rebuilt = build_events_with_pileup(
            transport, batch, CoincidenceConfig(config.coincidence_window_s)
        )
        transport, batch = rebuilt.transport, rebuilt.batch
    events = response.digitize(
        transport, batch, rng, min_hits=config.min_hits
    )
    if config.epsilon_percent > 0:
        events = perturb_events(events, config.epsilon_percent, rng)
    return events, grb


def trial_error(
    geometry: DetectorGeometry,
    response: DetectorResponse,
    rng: np.random.Generator,
    config: TrialConfig,
    ml_pipeline: MLPipeline | None = None,
    engine=None,
) -> float:
    """Run one trial and return the localization error in degrees.

    Args:
        geometry: Detector geometry.
        response: Detector response.
        rng: Trial generator.
        config: Experimental point.
        ml_pipeline: Required when ``config.condition == "ml"``.
        engine: Optional pre-built inference engine (see
            ``repro.infer.build_engine``); None = the pipeline's eager
            bundles.

    Returns:
        Angular error in degrees (180 on localization failure).

    Raises:
        ValueError: If the ML condition is requested without a pipeline.
    """
    events, grb = _simulate_trial(geometry, response, rng, config)

    if config.condition == "ml":
        if ml_pipeline is None:
            raise ValueError("ml condition requires a trained MLPipeline")
        outcome = ml_pipeline.localize(
            events, rng, halt_after=config.halt_after, engine=engine
        )
        return outcome.error_degrees(grb.source_direction)

    outcome = localize_baseline(
        events,
        rng,
        drop_background=(config.condition == "no_background"),
        true_deta=(config.condition == "true_deta"),
    )
    return outcome.error_degrees(grb.source_direction)


def run_trials(
    geometry: DetectorGeometry,
    response: DetectorResponse,
    seed: int,
    n_trials: int,
    config: TrialConfig,
    ml_pipeline: MLPipeline | None = None,
    n_workers: int = 1,
    executor=None,
    cache=None,
) -> np.ndarray:
    """Run ``n_trials`` independent trials of one experimental point.

    Per-trial generators are spawned from ``seed`` so results do not
    depend on ``n_workers`` (or on executor chunking).

    Args:
        geometry: Detector geometry.
        response: Detector response.
        seed: Master seed for this trial set.
        n_trials: Number of independent trials.
        config: Experimental point.
        ml_pipeline: Required when ``config.condition == "ml"``.
        n_workers: Fan-out over the persistent campaign executor (the
            process-wide pool for this worker count is created on first
            use and reused by every later campaign stage).
        executor: Explicit :class:`~repro.parallel.CampaignExecutor` to
            run on (overrides ``n_workers``); lets sweeps share one pool.
        cache: Deterministic stage cache — True for the default
            ``.campaign_cache/``, a path or :class:`StageCache` for a
            custom location, None to disable.  Keyed by seed and every
            result-affecting input, never by ``n_workers``.

    Returns:
        ``(n_trials,)`` array of angular errors, degrees.

    Raises:
        CampaignWorkerError: A trial raised (same exception at every
            worker count), or a chunk of trials repeatedly crashed its
            workers.  Worker crashes below the executor's retry budget
            are recovered transparently — the chunk is redispatched and
            the returned errors stay bit-identical to a serial run.
            Nothing is cached on failure.
    """
    from repro.obs import trace as obs_trace
    from repro.parallel import get_executor, resolve_cache
    from repro.experiments._campaign_worker import (
        trial_block_worker,
        trial_worker,
    )

    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    with obs_trace.span("trials.run_trials"):
        stage_cache = resolve_cache(cache)
        token = None
        if stage_cache is not None:
            from repro.parallel import config_token

            # Telemetry never feeds the token: keys stay a pure function
            # of the experiment inputs, so traced and untraced runs share
            # cache entries bit-for-bit.
            token = config_token(
                seed, n_trials, config, geometry, response, ml_pipeline
            )
            hit = stage_cache.load("trials", token)
            if hit is not None:
                return hit
        # The inference plan is compiled once here in the parent and
        # rides the executor's broadcast-once common payload; workers
        # rebuild only the (cheap) activation arenas locally.
        engine = None
        if config.condition == "ml" and ml_pipeline is not None:
            if config.infer_backend != "reference":
                from repro.infer import build_engine

                engine = build_engine(
                    ml_pipeline,
                    config.infer_backend,
                    dtype=config.infer_dtype,
                )
            elif config.event_batch > 1:
                from repro.infer import build_engine

                engine = build_engine(ml_pipeline, "reference")
        seeds = np.random.SeedSequence(seed).spawn(n_trials)
        ex = executor if executor is not None else get_executor(n_workers)
        common = (geometry, response, config, ml_pipeline, engine)
        if config.event_batch > 1:
            blocks = [
                tuple(seeds[i : i + config.event_batch])
                for i in range(0, n_trials, config.event_batch)
            ]
            errors = np.array(
                [
                    e
                    for block in ex.map(trial_block_worker, blocks, common=common)
                    for e in block
                ]
            )
        else:
            errors = np.array(ex.map(trial_worker, seeds, common=common))
        if stage_cache is not None:
            stage_cache.store("trials", token, errors)
        return errors


def run_meta_trials(
    geometry: DetectorGeometry,
    response: DetectorResponse,
    seed: int,
    n_trials: int,
    n_meta: int,
    config: TrialConfig,
    ml_pipeline: MLPipeline | None = None,
    n_workers: int = 1,
    executor=None,
    cache=None,
) -> list[np.ndarray]:
    """Run ``n_meta`` independent trial sets (for containment error bars)."""
    if n_meta < 1:
        raise ValueError("n_meta must be >= 1")
    meta_seeds = np.random.SeedSequence(seed).spawn(n_meta)
    out = []
    for ms in meta_seeds:
        sub_seed = int(ms.generate_state(1)[0])
        out.append(
            run_trials(
                geometry,
                response,
                sub_seed,
                n_trials,
                config,
                ml_pipeline,
                n_workers,
                executor=executor,
                cache=cache,
            )
        )
    return out
