"""Analytical FPGA/HLS cost model for the background-network kernel."""

from repro.fpga.hls_model import (
    DTYPE_SPECS,
    HLSDtypeSpec,
    KernelReport,
    LayerReport,
    batch_latency_cycles,
    synthesize_kernel,
)

__all__ = [
    "synthesize_kernel",
    "KernelReport",
    "LayerReport",
    "HLSDtypeSpec",
    "DTYPE_SPECS",
    "batch_latency_cycles",
]
