"""Analytical dataflow model of the paper's Vitis HLS MLP kernel.

The paper implements the (layer-swapped, fused) background network as a
deeply pipelined HLS dataflow kernel: one stage per fused FC layer,
multiple inputs in flight across stages, sigmoid elided (threshold on the
logit).  Timing follows the standard pipelined-kernel law the paper cites:
for ``n`` inputs, total latency is ``n * II + (L - II)`` with ``II`` the
initiation interval and ``L`` the single-input latency.

**Model.**  Each stage streams its ``in_l`` inputs to a bank of parallel
output-neuron units:

* Layers are unrolled fully over outputs when small, capped at the
  dtype's ``max_unroll`` for the big middle layers (resource limits);
  serialized output groups multiply the streaming time.
* ``stage II = ceil(out_l / unroll_l) * (in_l + beat_overhead)``;
* ``kernel II = max stage II``; single-input stage latency is the larger
  of the stage II (serialized groups hold the item) and the stream+drain
  time; kernel L is their sum.

**Calibration.**  ``beat_overhead``, ``max_unroll``, pipeline depth, and
the per-weight resource densities are calibrated against the paper's
Vitis HLS 2021.1 synthesis (Table III) for the 13-256-128-64-1 kernel at
a 10 ns clock; with them the model reproduces the paper's INT8 and FP32
II exactly, the batch latency for 597 rings to < 1%, and the resource
counts to within ~10%, and extrapolates to other layer widths and batch
sizes for design-space exploration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Paper network: 13 features -> 256 -> 128 -> 64 -> 1.
PAPER_WIDTHS: tuple[int, ...] = (13, 256, 128, 64, 1)
#: Conservative clock period used by the paper's co-simulation, ns.
PAPER_CLOCK_NS: float = 10.0
#: Rings processed by the first background-net iteration (paper Sec. V).
PAPER_NUM_RINGS: int = 597

#: Usable bytes per BRAM36 block.
_BRAM_BYTES: int = 4608


@dataclass(frozen=True)
class HLSDtypeSpec:
    """Per-datatype cost constants (calibrated to Table III).

    Attributes:
        name: ``"int8"`` or ``"fp32"``.
        bytes_per_weight: Weight storage width.
        max_unroll: Parallel output-neuron units available to one stage.
        beat_overhead: Extra cycles per streamed output group (control,
            accumulation drain, AXI beats).
        pipeline_depth: Arithmetic pipeline depth of one MAC chain.
        dsp_per_weight: DSP slices per network weight (density folded
            over the unroll structure).
        ff_per_weight: Flip-flops per weight.
        lut_per_weight: LUTs per weight.
        weights_in_bram: Whether weights live in BRAM (FP32) or LUTRAM
            (INT8 — Vitis maps small int8 arrays to LUTs, which is why
            the paper's INT8 kernel uses 15 BRAM but more LUT-heavy
            storage).
        bram_replication: Weight-array replication for read bandwidth
            (only meaningful when ``weights_in_bram``).
        fixed_bram: Stream FIFOs and I/O buffers.
    """

    name: str
    bytes_per_weight: int
    max_unroll: int
    beat_overhead: int
    pipeline_depth: int
    dsp_per_weight: float
    ff_per_weight: float
    lut_per_weight: float
    weights_in_bram: bool
    bram_replication: int
    fixed_bram: int


DTYPE_SPECS: dict[str, HLSDtypeSpec] = {
    "int8": HLSDtypeSpec(
        name="int8",
        bytes_per_weight=1,
        max_unroll=64,
        beat_overhead=90,
        pipeline_depth=8,
        dsp_per_weight=0.0970,
        ff_per_weight=8.265,
        lut_per_weight=17.50,
        weights_in_bram=False,
        bram_replication=1,
        fixed_bram=15,
    ),
    "fp32": HLSDtypeSpec(
        name="fp32",
        bytes_per_weight=4,
        max_unroll=32,
        beat_overhead=46,
        pipeline_depth=12,
        dsp_per_weight=0.1684,
        ff_per_weight=14.68,
        lut_per_weight=18.42,
        weights_in_bram=True,
        bram_replication=4,
        fixed_bram=2,
    ),
}

#: Layers with at most this many MACs are fully unrolled over outputs.
_FULL_UNROLL_MACS: int = 16384


@dataclass(frozen=True)
class LayerReport:
    """Per-stage synthesis estimates.

    Attributes:
        in_width: Input features of the stage.
        out_width: Output neurons.
        unroll: Parallel output units.
        ii_cycles: Stage initiation interval.
        latency_cycles: Single-input latency through the stage.
    """

    in_width: int
    out_width: int
    unroll: int
    ii_cycles: int
    latency_cycles: int

    @property
    def macs(self) -> int:
        return self.in_width * self.out_width


@dataclass(frozen=True)
class KernelReport:
    """Whole-kernel synthesis estimates (one row pair of Table III).

    Attributes:
        dtype: Datatype name.
        clock_ns: Clock period.
        layers: Per-stage reports.
        latency_cycles: Single-input latency ``L``.
        ii_cycles: Kernel initiation interval ``II``.
        bram: BRAM36 blocks.
        dsp: DSP slices.
        ff: Flip-flops.
        lut: Lookup tables.
    """

    dtype: str
    clock_ns: float
    layers: tuple[LayerReport, ...]
    latency_cycles: int
    ii_cycles: int
    bram: int
    dsp: int
    ff: int
    lut: int

    @property
    def num_weights(self) -> int:
        return sum(layer.macs for layer in self.layers)

    def batch_latency_cycles(self, n_inputs: int) -> int:
        """Pipelined batch latency: ``n * II + (L - II)``."""
        return batch_latency_cycles(n_inputs, self.ii_cycles, self.latency_cycles)

    def batch_latency_ms(self, n_inputs: int) -> float:
        """Batch latency in milliseconds at the configured clock."""
        return self.batch_latency_cycles(n_inputs) * self.clock_ns * 1e-6

    def throughput_per_second(self) -> float:
        """Steady-state inferences per second (1 / (II * clock))."""
        return 1.0 / (self.ii_cycles * self.clock_ns * 1e-9)


def batch_latency_cycles(n_inputs: int, ii: int, latency: int) -> int:
    """``n * II + (L - II)`` (paper Section V, ref. [37]).

    Raises:
        ValueError: For non-positive inputs or ``latency < ii``.
    """
    if n_inputs < 1:
        raise ValueError("n_inputs must be >= 1")
    if ii < 1 or latency < ii:
        raise ValueError("require latency >= ii >= 1")
    return n_inputs * ii + (latency - ii)


def synthesize_kernel(
    widths: tuple[int, ...] = PAPER_WIDTHS,
    dtype: str = "int8",
    clock_ns: float = PAPER_CLOCK_NS,
) -> KernelReport:
    """Estimate II, latency, and resources of the MLP dataflow kernel.

    Args:
        widths: Layer widths, input first (paper: 13-256-128-64-1).
        dtype: ``"int8"`` or ``"fp32"``.
        clock_ns: Clock period in nanoseconds.

    Returns:
        A :class:`KernelReport`.

    Raises:
        ValueError: On unknown dtype or fewer than two widths.
    """
    if dtype not in DTYPE_SPECS:
        raise ValueError(f"unknown dtype {dtype!r}; options: {list(DTYPE_SPECS)}")
    if len(widths) < 2:
        raise ValueError("need at least input and output widths")
    if any(w < 1 for w in widths):
        raise ValueError("layer widths must be positive")
    if clock_ns <= 0:
        raise ValueError("clock period must be positive")
    spec = DTYPE_SPECS[dtype]

    layers: list[LayerReport] = []
    for in_w, out_w in zip(widths[:-1], widths[1:]):
        macs = in_w * out_w
        if macs <= _FULL_UNROLL_MACS:
            unroll = out_w
        else:
            unroll = min(out_w, spec.max_unroll)
        groups = int(np.ceil(out_w / unroll))
        ii = groups * (in_w + spec.beat_overhead)
        stream = in_w + spec.beat_overhead + spec.pipeline_depth
        latency = max(ii, stream)
        layers.append(
            LayerReport(
                in_width=in_w,
                out_width=out_w,
                unroll=unroll,
                ii_cycles=ii,
                latency_cycles=latency,
            )
        )

    kernel_ii = max(layer.ii_cycles for layer in layers)
    kernel_latency = sum(layer.latency_cycles for layer in layers)
    n_weights = sum(layer.macs for layer in layers)

    if spec.weights_in_bram:
        weight_bytes = n_weights * spec.bytes_per_weight * spec.bram_replication
        bram = int(np.ceil(weight_bytes / _BRAM_BYTES)) + spec.fixed_bram
    else:
        bram = spec.fixed_bram

    return KernelReport(
        dtype=dtype,
        clock_ns=clock_ns,
        layers=tuple(layers),
        latency_cycles=kernel_latency,
        ii_cycles=kernel_ii,
        bram=bram,
        dsp=int(round(n_weights * spec.dsp_per_weight)),
        ff=int(round(n_weights * spec.ff_per_weight)),
        lut=int(round(n_weights * spec.lut_per_weight)),
    )


def synthesize_from_plan(
    plan,
    dtype: str | None = None,
    clock_ns: float = PAPER_CLOCK_NS,
) -> KernelReport:
    """Estimate the HLS kernel for a compiled inference plan.

    The plan's fused layer chain *is* the dataflow stage sequence the
    paper synthesizes — one stage per (folded) linear layer — so its
    ``layer_widths`` feed :func:`synthesize_kernel` directly.  The plan
    is duck-typed (``layer_widths`` + ``quantized``) so this module does
    not import the inference runtime.

    Args:
        plan: A ``repro.infer.InferencePlan`` (or anything exposing
            ``layer_widths`` and ``quantized``).
        dtype: ``"int8"``/``"fp32"``; None picks ``"int8"`` for
            quantized plans and ``"fp32"`` otherwise.
        clock_ns: Clock period in nanoseconds.

    Returns:
        A :class:`KernelReport` for the plan's exact layer widths.
    """
    widths = tuple(int(w) for w in plan.layer_widths)
    if dtype is None:
        dtype = "int8" if plan.quantized else "fp32"
    return synthesize_kernel(widths=widths, dtype=dtype, clock_ns=clock_ns)
