"""Dataset and model persistence."""

from repro.io.datasets import (
    load_training_data,
    save_training_data,
    load_pipeline,
    save_pipeline,
)

__all__ = [
    "save_training_data",
    "load_training_data",
    "save_pipeline",
    "load_pipeline",
]
