"""Persistence for training data and trained pipelines.

Training data is stored as compressed ``.npz`` (portable, inspectable);
trained pipelines (networks + scalers + thresholds) use pickle, which is
appropriate for same-trust-domain caching of experiment artifacts.
"""

from __future__ import annotations

import pickle
from pathlib import Path

import numpy as np

from repro.experiments.datasets import TrainingData
from repro.pipeline.ml_pipeline import MLPipeline


def save_training_data(data: TrainingData, path: str | Path) -> None:
    """Write a :class:`TrainingData` to a compressed npz file."""
    np.savez_compressed(
        Path(path),
        features=data.features,
        labels=data.labels,
        true_eta_errors=data.true_eta_errors,
        polar_true=data.polar_true,
        prop_deta=data.prop_deta,
    )


def load_training_data(path: str | Path) -> TrainingData:
    """Load a :class:`TrainingData` saved by :func:`save_training_data`."""
    with np.load(Path(path)) as f:
        return TrainingData(
            features=f["features"],
            labels=f["labels"],
            true_eta_errors=f["true_eta_errors"],
            polar_true=f["polar_true"],
            prop_deta=f["prop_deta"],
        )


def save_pipeline(pipeline: MLPipeline, path: str | Path) -> None:
    """Pickle a trained :class:`MLPipeline`."""
    with open(Path(path), "wb") as f:
        pickle.dump(pipeline, f)


def load_pipeline(path: str | Path) -> MLPipeline:
    """Load a pipeline saved by :func:`save_pipeline`.

    Only load files you created yourself — pickle executes code on load.
    """
    with open(Path(path), "rb") as f:
        obj = pickle.load(f)
    if not isinstance(obj, MLPipeline):
        raise TypeError(f"expected MLPipeline, found {type(obj).__name__}")
    return obj
