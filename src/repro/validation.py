"""Physics self-validation suite.

Users who modify materials, geometry, or spectra need a fast way to check
the Monte Carlo still agrees with analytic expectations.  Each check here
compares a simulated quantity against its closed-form prediction and
returns a :class:`CheckResult`; :func:`run_all` bundles the standard
battery.  The same comparisons run (with assertions) in the test suite;
this module exposes them as a library so validation can run on *modified*
configurations, not just the defaults.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import CSI, Material
from repro.geometry.tiles import DetectorGeometry, adapt_geometry
from repro.physics.compton import klein_nishina_differential, sample_klein_nishina
from repro.physics.crosssections import total_mu
from repro.physics.transport import transport_photons


@dataclass
class CheckResult:
    """Outcome of one validation check.

    Attributes:
        name: Check identifier.
        measured: Simulated value.
        expected: Analytic prediction.
        tolerance: Allowed relative deviation.
        passed: Whether ``|measured - expected| <= tolerance * |expected|``.
    """

    name: str
    measured: float
    expected: float
    tolerance: float

    @property
    def passed(self) -> bool:
        return abs(self.measured - self.expected) <= self.tolerance * abs(
            self.expected
        )

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"[{status}] {self.name}: measured={self.measured:.4g} "
            f"expected={self.expected:.4g} (tol {self.tolerance:.0%})"
        )


def check_attenuation(
    geometry: DetectorGeometry | None = None,
    material: Material = CSI,
    energy_mev: float = 0.5,
    n_photons: int = 40_000,
    seed: int = 0,
    tolerance: float = 0.05,
) -> CheckResult:
    """Interaction probability of a normal beam vs Beer--Lambert.

    The fraction of photons interacting anywhere in the stack must match
    ``1 - exp(-mu * total_thickness)``.
    """
    geometry = geometry or adapt_geometry()
    rng = np.random.default_rng(seed)
    half = geometry.half_size * 0.5
    origins = np.stack(
        [
            rng.uniform(-half, half, n_photons),
            rng.uniform(-half, half, n_photons),
            np.full(n_photons, 1.0),
        ],
        axis=1,
    )
    directions = np.tile([0.0, 0.0, -1.0], (n_photons, 1))
    result = transport_photons(
        geometry, origins, directions, np.full(n_photons, energy_mev), rng,
        material=material,
    )
    measured = float((result.num_interactions > 0).mean())
    depth = sum(layer.thickness for layer in geometry.layers)
    expected = float(1.0 - np.exp(-total_mu(energy_mev, material) * depth))
    return CheckResult(
        name=f"attenuation@{energy_mev}MeV",
        measured=measured,
        expected=expected,
        tolerance=tolerance,
    )


def check_energy_conservation(
    geometry: DetectorGeometry | None = None,
    n_photons: int = 20_000,
    seed: int = 1,
) -> CheckResult:
    """Deposited + escaped energy must equal the injected energy exactly."""
    geometry = geometry or adapt_geometry()
    rng = np.random.default_rng(seed)
    energies = rng.uniform(0.05, 5.0, n_photons)
    origins = np.tile([0.0, 0.0, 1.0], (n_photons, 1))
    directions = np.tile([0.0, 0.0, -1.0], (n_photons, 1))
    result = transport_photons(geometry, origins, directions, energies, rng)
    sums = np.zeros(n_photons)
    np.add.at(sums, result.photon_index, result.energies)
    residual = float(np.abs(sums + result.escaped_energy - energies).max())
    return CheckResult(
        name="energy-conservation",
        measured=residual,
        expected=0.0,
        tolerance=0.0,
    )


def check_klein_nishina(
    energy_mev: float = 2.0,
    n_samples: int = 100_000,
    seed: int = 2,
    tolerance: float = 0.05,
) -> CheckResult:
    """Sampled scattering-cosine mean vs the analytic distribution mean."""
    rng = np.random.default_rng(seed)
    samples = sample_klein_nishina(np.full(n_samples, energy_mev), rng)
    grid = np.linspace(-1.0, 1.0, 20001)
    pdf = klein_nishina_differential(np.full_like(grid, energy_mev), grid)
    norm = np.trapezoid(pdf, grid)
    expected = float(np.trapezoid(grid * pdf, grid) / norm)
    return CheckResult(
        name=f"klein-nishina-mean@{energy_mev}MeV",
        measured=float(samples.mean()),
        expected=expected,
        tolerance=tolerance,
    )


def run_all(
    geometry: DetectorGeometry | None = None,
    material: Material = CSI,
) -> list[CheckResult]:
    """Run the standard validation battery.

    Energy conservation is exact (machine precision); a residual above
    1e-9 reports as failed via a special-case comparison.

    Args:
        geometry: Geometry under test (ADAPT default if omitted).
        material: Scintillator under test.

    Returns:
        One :class:`CheckResult` per check.
    """
    results = [
        check_attenuation(geometry, material, energy_mev=0.2),
        check_attenuation(geometry, material, energy_mev=1.0),
        check_energy_conservation(geometry),
        check_klein_nishina(energy_mev=0.5),
        check_klein_nishina(energy_mev=5.0),
    ]
    return results


def passed(results: list[CheckResult]) -> bool:
    """True when every check passed (the conservation check passes when
    its residual is below 1e-9 MeV)."""
    ok = True
    for r in results:
        if r.name == "energy-conservation":
            ok &= r.measured < 1e-9
        else:
            ok &= r.passed
    return ok
