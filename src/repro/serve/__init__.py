"""Streaming localization service: asyncio front-end over ``repro.infer``.

The "millions of users" layer: a long-lived server that accepts a
continuous stream of digitized event sets from many concurrent clients,
coalesces their inference requests into fused engine calls through a
micro-batch scheduler (deadline- or size-triggered flush), bounds
in-flight work with admission control (shed or backpressure), and drains
gracefully on shutdown.  See ``docs/serving.md``.

Modules:
    server: :class:`LocalizationServer`, :class:`ServeConfig`,
        :func:`serve_events` (sync convenience, bit-identical to
        ``localize_many`` groupings).
    scheduler: :class:`MicroBatchScheduler`, :class:`BatchPolicy`,
        :class:`ServeJob` (asyncio-free, unit-testable core).
    admission: :class:`AdmissionController`, :class:`ServerOverloaded`
        (shed / 429), :class:`ServerClosed`.
    load: :func:`run_load` closed-loop load generator +
        :class:`LoadReport` (feeds ``BENCH_serve.json``).
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionError,
    ServerClosed,
    ServerOverloaded,
)
from repro.serve.load import LoadReport, run_load, synthetic_event_pool
from repro.serve.scheduler import BatchPolicy, MicroBatchScheduler, ServeJob
from repro.serve.server import LocalizationServer, ServeConfig, serve_events

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "BatchPolicy",
    "LoadReport",
    "LocalizationServer",
    "MicroBatchScheduler",
    "ServeConfig",
    "ServeJob",
    "ServerClosed",
    "ServerOverloaded",
    "run_load",
    "serve_events",
    "synthetic_event_pool",
]
