"""Micro-batch scheduler: coalesce requests across clients, flush in rounds.

The serving counterpart of :func:`repro.infer.batch.localize_many`.  Each
admitted localization is a :class:`ServeJob` wrapping the event's
``localize_requests`` generator.  Jobs file :class:`InferRequest`\\ s into
a pending set; a *flush* runs one lock-step round over the whole set —
for each request kind, gather every pending feature block (reusing
:class:`~repro.infer.batch.GatherScratch`), evaluate the fused engine
once, scatter the row slices back, and advance each generator to its
next request or its outcome.  Jobs are processed in ascending ``job_id``
(submission) order within a round, so batching is FIFO-fair and the
groupings match ``localize_many`` exactly when clients submit together —
served outcomes are then bit-identical to the batch path.

Flush *triggers* (checked by :meth:`MicroBatchScheduler.due`):

* **size** — pending requests reach ``BatchPolicy.max_requests`` or
  pending feature rows reach ``BatchPolicy.max_rows``; flush now, the
  batch is as big as we allow.
* **deadline** — the oldest pending request has waited
  ``BatchPolicy.deadline_s``; flush what we have.  The deadline is the
  coalescing window: raising it trades single-request latency for bigger
  fused batches.

The scheduler is deliberately synchronous and asyncio-free — the server
owns the event loop and calls :meth:`add`/:meth:`due`/:meth:`flush`; a
fake ``clock`` makes trigger semantics unit-testable without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.infer.batch import _REQUEST_KINDS, GatherScratch
from repro.infer.engine import InferRequest, evaluate_request
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


@dataclass(frozen=True)
class BatchPolicy:
    """Flush-trigger knobs for the micro-batch scheduler.

    Attributes:
        max_rows: Flush when pending feature rows reach this many.
        max_requests: Flush when this many requests are pending.
        deadline_s: Flush when the oldest pending request has waited
            this long (seconds); ``0`` flushes on every scheduler pass.
    """

    max_rows: int = 65536
    max_requests: int = 64
    deadline_s: float = 0.002

    def __post_init__(self) -> None:
        if self.max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {self.max_rows}")
        if self.max_requests < 1:
            raise ValueError(
                f"max_requests must be >= 1, got {self.max_requests}"
            )
        if self.deadline_s < 0:
            raise ValueError(
                f"deadline_s must be >= 0, got {self.deadline_s}"
            )


class ServeJob:
    """One in-flight localization: a request generator plus bookkeeping.

    Attributes:
        job_id: Monotonic submission id (defines FIFO order in a round).
        gen: The event's ``localize_requests`` generator.
        request: The currently pending :class:`InferRequest` (None while
            being evaluated or after completion).
        outcome: The ``MLPipelineOutcome`` once the generator returns.
        error: The exception if the generator raised instead.
        done: True once ``outcome`` or ``error`` is set.
        t_submit: Clock reading at submission (latency measurement).
        t_enqueue: Clock reading when ``request`` was filed (deadline
            trigger input).
        rounds: Fused rounds this job has participated in.
        future: Slot for the server's completion future (opaque here —
            the scheduler never touches asyncio).
    """

    __slots__ = ("job_id", "gen", "request", "outcome", "error", "done",
                 "t_submit", "t_enqueue", "rounds", "future")

    def __init__(self, job_id: int, gen, t_submit: float) -> None:
        self.job_id = job_id
        self.gen = gen
        self.request: InferRequest | None = None
        self.outcome = None
        self.error: BaseException | None = None
        self.done = False
        self.t_submit = t_submit
        self.t_enqueue = t_submit
        self.rounds = 0
        self.future = None


class MicroBatchScheduler:
    """Lock-step micro-batcher over many clients' request generators.

    Attributes:
        engine: The fused inference engine answering gathered requests.
        policy: The :class:`BatchPolicy` flush triggers.
        live: Jobs added and not yet completed.
        rounds: Total flush rounds executed.
        flush_reasons: ``reason -> count`` over all flushes.
    """

    def __init__(self, engine, policy: BatchPolicy | None = None,
                 clock=time.monotonic) -> None:
        self.engine = engine
        self.policy = policy if policy is not None else BatchPolicy()
        self.live = 0
        self.rounds = 0
        self.rows_flushed = 0
        self.flush_reasons: dict[str, int] = {}
        self._clock = clock
        self._pending: dict[int, ServeJob] = {}
        self._scratch = {kind: GatherScratch() for kind in _REQUEST_KINDS}

    @property
    def pending_requests(self) -> int:
        """Number of requests currently awaiting a flush."""
        return len(self._pending)

    def pending_rows(self) -> int:
        """Total feature rows across the pending requests."""
        return sum(
            int(job.request.features.shape[0])
            for job in self._pending.values()
        )

    def add(self, job: ServeJob) -> list[ServeJob]:
        """Register a job and advance it to its first request.

        Returns:
            The jobs completed by the add — ``[job]`` when the generator
            finished without ever needing the engine, else ``[]``.
        """
        self.live += 1
        completed: list[ServeJob] = []
        self._advance(job, None, completed)
        return completed

    def due(self, now: float | None = None) -> str | None:
        """The trigger name if a flush should fire now, else None."""
        if not self._pending:
            return None
        if len(self._pending) >= self.policy.max_requests:
            return "size"
        if self.pending_rows() >= self.policy.max_rows:
            return "size"
        if now is None:
            now = self._clock()
        oldest = min(job.t_enqueue for job in self._pending.values())
        if now - oldest >= self.policy.deadline_s:
            return "deadline"
        return None

    def next_deadline(self) -> float | None:
        """Clock time when the deadline trigger fires (None when idle)."""
        if not self._pending:
            return None
        oldest = min(job.t_enqueue for job in self._pending.values())
        return oldest + self.policy.deadline_s

    def flush(self, reason: str = "deadline") -> list[ServeJob]:
        """Run one fused round over every pending request.

        Requests are snapshot at entry; generators advanced by the round
        file their *next* request into a fresh pending set (evaluated by
        a later flush, exactly as ``localize_many`` rounds work).

        Args:
            reason: The trigger that fired (recorded in
                :attr:`flush_reasons` and the flush counters).

        Returns:
            Jobs completed during this round, in FIFO (job id) order.
        """
        ready, self._pending = self._pending, {}
        completed: list[ServeJob] = []
        rows = 0
        with obs_trace.span("serve.flush"):
            for kind in _REQUEST_KINDS:
                ids = [j for j in sorted(ready) if ready[j].request.kind == kind]
                if not ids:
                    continue
                blocks = [ready[j].request.features for j in ids]
                lengths = [int(b.shape[0]) for b in blocks]
                merged = evaluate_request(
                    self.engine,
                    InferRequest(kind, self._scratch[kind].gather(blocks)),
                )
                offset = 0
                for j, n in zip(ids, lengths):
                    job = ready.pop(j)
                    job.request = None
                    job.rounds += 1
                    self._advance(job, merged[offset : offset + n], completed)
                    offset += n
                rows += sum(lengths)
            for job in ready.values():  # unhandled kinds: fail, don't hang
                job.request = None
                job.error = ValueError(
                    f"unknown request kind from job {job.job_id}"
                )
                job.done = True
                self.live -= 1
                completed.append(job)
        self.rounds += 1
        self.rows_flushed += rows
        self.flush_reasons[reason] = self.flush_reasons.get(reason, 0) + 1
        obs_metrics.inc("serve.rounds")
        obs_metrics.inc(f"serve.flush.{reason}")
        obs_metrics.observe("serve.batch_rows", float(rows))
        return sorted(completed, key=lambda job: job.job_id)

    def _advance(self, job: ServeJob, payload, completed: list[ServeJob]) -> None:
        """Step a job's generator; file its next request or finish it."""
        try:
            if payload is None:
                request = next(job.gen)
            else:
                request = job.gen.send(payload)
        except StopIteration as stop:
            job.outcome = stop.value
            job.done = True
            self.live -= 1
            completed.append(job)
            if obs_trace.is_enabled():
                obs_metrics.observe(
                    "serve.request_ms", (self._clock() - job.t_submit) * 1e3
                )
        except Exception as exc:  # surface in the job, keep the batch alive
            job.error = exc
            job.done = True
            self.live -= 1
            completed.append(job)
            obs_metrics.inc("serve.job_errors")
        else:
            job.request = request
            job.t_enqueue = self._clock()
            self._pending[job.job_id] = job
