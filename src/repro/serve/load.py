"""Closed-loop load generator for the localization service.

The serve deliverable is a throughput/latency curve, not just unit
tests: :func:`run_load` drives a fresh :class:`LocalizationServer` with
``n_clients`` concurrent closed-loop clients — each client submits a
localization, awaits the outcome, and immediately submits the next —
and reports sustained request rate plus exact (nearest-rank) latency
percentiles.  ``scripts/bench_report.py --serve`` sweeps client counts
and writes the table to ``BENCH_serve.json``; the CLI ``serve-load``
subcommand prints it.

Event sets come from a pre-simulated pool (:func:`synthetic_event_pool`)
so the measured path is pure serving + inference, not simulation.  Each
request gets its own spawned RNG, so outcomes are deterministic per
request regardless of how requests interleave or batch.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.obs.slo import exact_percentile
from repro.serve.scheduler import BatchPolicy
from repro.serve.server import LocalizationServer, ServeConfig


def synthetic_event_pool(n: int, seed: int, fluence: float = 0.6,
                         polar_deg: float = 30.0, geometry=None,
                         response=None) -> list:
    """Simulate ``n`` digitized event sets to serve as request payloads.

    Args:
        n: Pool size; requests cycle through the pool round-robin.
        seed: Root seed; each pool entry gets its own spawned stream.
        fluence: GRB fluence (MeV/cm^2) for every simulated exposure.
        polar_deg: GRB polar angle (degrees).
        geometry: Detector geometry; built fresh when None.
        response: Detector response; built fresh when None.

    Returns:
        List of ``n`` digitized ``EventSet`` objects.
    """
    from repro.detector.response import DetectorResponse
    from repro.experiments.trials import TrialConfig, _simulate_trial
    from repro.geometry.tiles import adapt_geometry

    if n < 1:
        raise ValueError(f"pool size must be >= 1, got {n}")
    if geometry is None:
        geometry = adapt_geometry()
    if response is None:
        response = DetectorResponse(geometry)
    config = TrialConfig(fluence_mev_cm2=fluence, polar_angle_deg=polar_deg)
    pool = []
    for seq in np.random.SeedSequence(seed).spawn(n):
        events, _ = _simulate_trial(
            geometry, response, np.random.default_rng(seq), config
        )
        pool.append(events)
    return pool


@dataclass(frozen=True)
class LoadReport:
    """One load run's throughput/latency summary.

    Attributes:
        n_clients: Concurrent closed-loop clients.
        requests_per_client: Sequential requests each client issued.
        completed: Requests that returned an outcome.
        rejected: Requests shed at admission (0 in cooperative mode).
        wall_s: Wall-clock seconds for the whole run.
        req_per_s: Sustained completed-requests per second.
        p50_ms: Median per-request latency (exact nearest-rank).
        p95_ms: 95th-percentile latency.
        p99_ms: 99th-percentile latency.
        max_ms: Worst per-request latency.
        rounds: Fused scheduler rounds executed.
        mean_batch_rows: Mean gathered feature rows per round.
        flush_reasons: ``reason -> count`` over all flushes.
    """

    n_clients: int
    requests_per_client: int
    completed: int
    rejected: int
    wall_s: float
    req_per_s: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    rounds: int
    mean_batch_rows: float
    flush_reasons: dict

    def to_dict(self) -> dict:
        """The report as a JSON-ready dict."""
        return asdict(self)


def run_load(pipeline, event_pool: list, *, seed: int, n_clients: int,
             requests_per_client: int, engine=None,
             config: ServeConfig | None = None,
             halt_after: int | None = None) -> LoadReport:
    """Drive a fresh server with concurrent closed-loop clients.

    Args:
        pipeline: A trained ``MLPipeline``.
        event_pool: Pre-simulated event sets (requests cycle round-robin).
        seed: Root seed; request ``k`` of the run draws from its own
            spawned stream, so results are deterministic per request.
        n_clients: Concurrent clients.
        requests_per_client: Sequential requests per client.
        engine: Inference engine; None builds the default planned engine.
        config: Server config; None uses ``queue_limit=n_clients`` and a
            ``max_requests=n_clients`` / 1 ms-deadline batch policy.
        halt_after: Anytime knob forwarded to every localization.

    Returns:
        A :class:`LoadReport`.
    """
    if n_clients < 1 or requests_per_client < 1:
        raise ValueError("need n_clients >= 1 and requests_per_client >= 1")
    if not event_pool:
        raise ValueError("event_pool must not be empty")
    if config is None:
        config = ServeConfig(
            queue_limit=n_clients,
            policy=BatchPolicy(max_requests=n_clients, deadline_s=0.001),
        )
    n_requests = n_clients * requests_per_client
    seeds = np.random.SeedSequence(seed).spawn(n_requests)
    latencies_ms: list[float] = []

    async def _client(server: LocalizationServer, client: int) -> int:
        done = 0
        for r in range(requests_per_client):
            k = client * requests_per_client + r
            events = event_pool[k % len(event_pool)]
            rng = np.random.default_rng(seeds[k])
            t0 = time.monotonic()
            await server.submit(events, rng, halt_after=halt_after, wait=True)
            latencies_ms.append((time.monotonic() - t0) * 1e3)
            done += 1
        return done

    async def _drive() -> tuple[int, float, dict]:
        server = LocalizationServer(pipeline, engine=engine, config=config)
        async with server:
            t0 = time.monotonic()
            counts = await asyncio.gather(
                *(_client(server, c) for c in range(n_clients))
            )
            wall = time.monotonic() - t0
        return sum(counts), wall, server.stats()

    completed, wall_s, stats = asyncio.run(_drive())
    rounds = stats["rounds"]
    return LoadReport(
        n_clients=n_clients,
        requests_per_client=requests_per_client,
        completed=completed,
        rejected=stats["admission"]["rejected"],
        wall_s=round(wall_s, 6),
        req_per_s=round(completed / wall_s, 3) if wall_s > 0 else 0.0,
        p50_ms=round(exact_percentile(latencies_ms, 0.50), 3),
        p95_ms=round(exact_percentile(latencies_ms, 0.95), 3),
        p99_ms=round(exact_percentile(latencies_ms, 0.99), 3),
        max_ms=round(max(latencies_ms), 3) if latencies_ms else 0.0,
        rounds=rounds,
        mean_batch_rows=round(stats["rows_flushed"] / rounds, 2)
        if rounds else 0.0,
        flush_reasons=stats["flush_reasons"],
    )
