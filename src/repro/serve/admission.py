"""Admission control for the localization service: bounded in-flight work.

A long-lived server must not accept unbounded work: every admitted
localization holds a generator, pending feature blocks, and a slot in
the micro-batch scheduler until it completes.  :class:`AdmissionController`
caps the number of in-flight requests and offers the two standard
responses to a full queue:

* **Shed** (:meth:`try_acquire`) — refuse immediately with
  :class:`ServerOverloaded`, the HTTP-429 analogue.  The caller is told
  "come back later" while admitted work keeps its latency SLO.
* **Backpressure** (:meth:`acquire`) — cooperatively wait for a slot.
  This is the right mode for trusted in-process clients such as
  ``localize_stream``, where slowing the producer beats dropping work.

The controller is single-event-loop state: all mutation happens on the
server's asyncio loop, so plain attributes suffice and the only
synchronization is the capacity event used to park waiting acquirers.
"""

from __future__ import annotations

import asyncio

from repro.obs import metrics as obs_metrics


class AdmissionError(RuntimeError):
    """Base class for requests refused at the admission boundary."""


class ServerOverloaded(AdmissionError):
    """Queue full: the request was shed (HTTP-429 analogue)."""


class ServerClosed(AdmissionError):
    """The server is draining or stopped and accepts no new work."""


class AdmissionController:
    """Bounded counter of in-flight requests with shed and wait paths.

    Attributes:
        limit: Maximum concurrently admitted requests.
        in_flight: Currently admitted, not yet released.
        accepted: Total admitted over the controller's lifetime.
        rejected: Total shed with :class:`ServerOverloaded`.
        peak_in_flight: High-water mark of ``in_flight``.
    """

    def __init__(self, limit: int) -> None:
        if int(limit) < 1:
            raise ValueError(f"admission limit must be >= 1, got {limit!r}")
        self.limit = int(limit)
        self.in_flight = 0
        self.accepted = 0
        self.rejected = 0
        self.peak_in_flight = 0
        self._capacity = asyncio.Event()
        self._capacity.set()

    def try_acquire(self) -> None:
        """Admit one request or shed it with :class:`ServerOverloaded`."""
        if self.in_flight >= self.limit:
            self.rejected += 1
            obs_metrics.inc("serve.rejected")
            raise ServerOverloaded(
                f"server at capacity ({self.in_flight}/{self.limit} in flight)"
            )
        self._take()

    async def acquire(self) -> None:
        """Admit one request, waiting for capacity (backpressure path)."""
        while self.in_flight >= self.limit:
            self._capacity.clear()
            await self._capacity.wait()
        self._take()

    def release(self) -> None:
        """Return one admitted request's slot and wake any waiter."""
        if self.in_flight <= 0:
            raise RuntimeError("release() without a matching acquire")
        self.in_flight -= 1
        self._capacity.set()

    def _take(self) -> None:
        self.in_flight += 1
        self.accepted += 1
        if self.in_flight > self.peak_in_flight:
            self.peak_in_flight = self.in_flight
        obs_metrics.inc("serve.accepted")

    def stats(self) -> dict:
        """Counter snapshot: limit/in_flight/accepted/rejected/peak."""
        return {
            "limit": self.limit,
            "in_flight": self.in_flight,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "peak_in_flight": self.peak_in_flight,
        }
