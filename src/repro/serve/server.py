"""Asyncio localization service: many clients, one fused engine.

:class:`LocalizationServer` is a long-lived front-end over the
engine-agnostic localization machinery from ``repro.infer``: concurrent
clients :meth:`~LocalizationServer.submit` digitized event sets, a
background scheduler task coalesces their ``InferRequest`` streams into
fused :class:`~repro.infer.engine.PlannedEngine` calls (see
:mod:`repro.serve.scheduler`), and each client awaits its own
``MLPipelineOutcome`` future.  Admission control
(:mod:`repro.serve.admission`) bounds in-flight work: untrusted callers
are shed with :class:`~repro.serve.admission.ServerOverloaded` when the
queue is full, cooperative callers opt into backpressure with
``wait=True``.

Lifecycle: ``await server.start()`` spawns the scheduler task;
``await server.drain()`` refuses new work and waits for in-flight jobs;
``await server.close()`` drains then stops the task.  ``async with
server`` does start/close.  :func:`serve_events` is the synchronous
convenience wrapper (own event loop, all exposures submitted together);
:meth:`~LocalizationServer.localize_stream` is the iterator-of-chunks
streaming shape from SNIPPETS.md snippet 3.

Per-request latency lands in the ``serve.request_ms`` histogram and
batching behavior in the ``serve.*`` counters when ``repro.obs`` is
enabled; the default SLO spec's ``"serve"`` section puts ceilings on the
percentiles (see ``docs/serving.md``).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.infer.engine import build_engine
from repro.serve.admission import AdmissionController, ServerClosed
from repro.serve.scheduler import BatchPolicy, MicroBatchScheduler, ServeJob

#: Deadline used by :func:`serve_events` between lock-step rounds: long
#: enough that every straggler generator refiles first, short enough to
#: add negligible wall time (~0.5 ms x rounds).
_LOCKSTEP_DEADLINE_S = 0.0005


@dataclass(frozen=True)
class ServeConfig:
    """Server-level knobs: admission bound plus the batch policy.

    Attributes:
        queue_limit: Maximum concurrently admitted localizations
            (admission control bound).
        policy: Micro-batch flush triggers (:class:`BatchPolicy`).
    """

    queue_limit: int = 256
    policy: BatchPolicy = field(default_factory=BatchPolicy)

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )


class LocalizationServer:
    """Long-lived micro-batching localization service (single loop).

    Attributes:
        pipeline: The trained ``MLPipeline`` whose ``localize_requests``
            generators the scheduler drives.
        engine: The fused inference engine (built from ``pipeline`` when
            not supplied).
        config: The :class:`ServeConfig` in force.
        admission: The :class:`AdmissionController` (live stats).
        scheduler: The :class:`MicroBatchScheduler` (live stats).
    """

    def __init__(self, pipeline, engine=None, config: ServeConfig | None = None,
                 clock=time.monotonic) -> None:
        self.pipeline = pipeline
        self.config = config if config is not None else ServeConfig()
        self.engine = engine if engine is not None else build_engine(
            pipeline, "planned"
        )
        self.admission = AdmissionController(self.config.queue_limit)
        self.scheduler = MicroBatchScheduler(
            self.engine, self.config.policy, clock=clock
        )
        self._clock = clock
        self._next_job_id = 0
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._task: asyncio.Task | None = None
        self._draining = False
        self._stopped = False

    @property
    def running(self) -> bool:
        """True between :meth:`start` and the scheduler task exiting."""
        return self._task is not None and not self._task.done()

    async def start(self) -> None:
        """Spawn the scheduler task on the running event loop."""
        if self._task is not None:
            raise RuntimeError("server already started")
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="repro-serve-scheduler"
        )

    async def submit(self, events, rng, *, halt_after: int | None = None,
                     wait: bool = False):
        """Localize one exposure; resolves when its fused rounds finish.

        Args:
            events: Digitized ``EventSet`` for the exposure.
            rng: The exposure's own ``numpy.random.Generator`` (never
                shared across submissions).
            halt_after: Anytime knob forwarded to the localization loop.
            wait: False sheds with ``ServerOverloaded`` when the queue is
                full; True waits for a slot (cooperative backpressure).

        Returns:
            The exposure's ``MLPipelineOutcome``.

        Raises:
            ServerOverloaded: Queue full and ``wait=False``.
            ServerClosed: Server draining or stopped.
            RuntimeError: Server never started.
        """
        self._check_open()
        if wait:
            await self.admission.acquire()
            if self._draining or self._stopped:  # drain began while waiting
                self.admission.release()
                raise ServerClosed("server drained while waiting for a slot")
        else:
            self.admission.try_acquire()
        try:
            job = ServeJob(
                self._next_job_id,
                self.pipeline.localize_requests(
                    events, rng, halt_after=halt_after
                ),
                self._clock(),
            )
            self._next_job_id += 1
            job.future = asyncio.get_running_loop().create_future()
            self._idle.clear()
            for done in self.scheduler.add(job):
                self._resolve(done)
            self._wake.set()
            return await job.future
        finally:
            self.admission.release()

    async def localize_stream(self, blocks, *, halt_after: int | None = None):
        """Serve an iterator of event-block chunks, yielding chunk results.

        The streaming shape: each element of ``blocks`` (a sync or async
        iterable) is one chunk — a sequence of ``(events, rng)`` pairs —
        and one list of outcomes is yielded per chunk, in order.  All
        requests within a chunk are submitted concurrently with
        cooperative backpressure (``wait=True``), so a chunk wider than
        ``queue_limit`` throttles instead of shedding.

        Args:
            blocks: Iterable (or async iterable) of chunks of
                ``(events, rng)`` pairs.
            halt_after: Anytime knob forwarded to every localization.

        Yields:
            ``list[MLPipelineOutcome]`` per input chunk, in chunk order.
        """
        async for chunk in _as_async_iter(blocks):
            tasks = [
                asyncio.ensure_future(
                    self.submit(events, rng, halt_after=halt_after, wait=True)
                )
                for events, rng in chunk
            ]
            yield list(await asyncio.gather(*tasks))

    async def drain(self) -> None:
        """Refuse new work and wait until every in-flight job completes."""
        self._draining = True
        self._wake.set()
        await self._idle.wait()

    async def close(self) -> None:
        """Drain, then stop the scheduler task."""
        await self.drain()
        self._stopped = True
        self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None

    async def __aenter__(self) -> "LocalizationServer":
        """Start the server on entry."""
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        """Gracefully drain and stop on exit."""
        await self.close()

    def stats(self) -> dict:
        """Live admission + scheduler counters (for logs and benches)."""
        return {
            "admission": self.admission.stats(),
            "rounds": self.scheduler.rounds,
            "rows_flushed": self.scheduler.rows_flushed,
            "flush_reasons": dict(self.scheduler.flush_reasons),
            "live": self.scheduler.live,
        }

    def _check_open(self) -> None:
        if self._task is None:
            raise RuntimeError("server not started (use 'async with' or start())")
        if self._draining or self._stopped:
            raise ServerClosed("server is draining and accepts no new work")

    def _resolve(self, job: ServeJob) -> None:
        """Complete a job's future from its outcome or error."""
        fut = job.future
        if fut is None or fut.done():
            return
        if job.error is not None:
            fut.set_exception(job.error)
        else:
            fut.set_result(job.outcome)

    async def _run(self) -> None:
        """Scheduler loop: flush when due, otherwise sleep until wake."""
        while True:
            reason = self.scheduler.due(self._clock())
            if reason is None and self._draining and self.scheduler.live:
                # No new work can arrive, so waiting out the deadline
                # only delays the remaining jobs: flush eagerly.
                reason = "drain"
            if reason is not None:
                for job in self.scheduler.flush(reason):
                    self._resolve(job)
                if self.scheduler.live == 0:
                    self._idle.set()
                await asyncio.sleep(0)  # let resolved clients run
                continue
            if self.scheduler.live == 0:
                self._idle.set()
                if self._stopped:
                    return
            deadline = self.scheduler.next_deadline()
            timeout = (
                None if deadline is None
                else max(0.0, deadline - self._clock())
            )
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except TimeoutError:
                pass


def serve_events(pipeline, event_sets, rngs, engine=None,
                 config: ServeConfig | None = None,
                 halt_after: int | None = None) -> list:
    """Serve many exposures through a fresh server (sync convenience).

    Spins up a :class:`LocalizationServer` on its own event loop, submits
    every exposure concurrently with cooperative backpressure, drains,
    and returns the outcomes in input order.  The default config sizes
    the first fused round to the full submission set
    (``max_requests=len(event_sets)``), which makes the round groupings —
    and therefore the outcomes — bit-identical to
    :func:`repro.infer.batch.localize_many` on the same inputs.

    Args:
        pipeline: A trained ``MLPipeline``.
        event_sets: One digitized ``EventSet`` per exposure.
        rngs: One ``numpy.random.Generator`` per exposure.
        engine: Inference engine; None builds the default planned engine.
        config: Server config; None uses the lock-step default above.
        halt_after: Anytime knob forwarded to every localization.

    Returns:
        One ``MLPipelineOutcome`` per exposure, in input order.
    """
    event_sets = list(event_sets)
    rngs = list(rngs)
    if len(event_sets) != len(rngs):
        raise ValueError("need exactly one rng per event set")
    if not event_sets:
        return []
    if config is None:
        n = len(event_sets)
        config = ServeConfig(
            queue_limit=n,
            policy=BatchPolicy(
                max_requests=n, deadline_s=_LOCKSTEP_DEADLINE_S
            ),
        )

    async def _serve() -> list:
        server = LocalizationServer(pipeline, engine=engine, config=config)
        async with server:
            return list(
                await asyncio.gather(
                    *(
                        server.submit(ev, rng, halt_after=halt_after, wait=True)
                        for ev, rng in zip(event_sets, rngs)
                    )
                )
            )

    return asyncio.run(_serve())


async def _as_async_iter(blocks):
    """Adapt a sync or async iterable of chunks to an async iterator."""
    if hasattr(blocks, "__aiter__"):
        async for chunk in blocks:
            yield chunk
    else:
        for chunk in blocks:
            yield chunk
