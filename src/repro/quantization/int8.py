"""True-integer INT8 inference engine.

Each layer stores int8 weights and an int32 bias; inference quantizes the
input once, then every layer computes

``acc = (x_q - zx) @ W_q + b_q``              (int32 accumulators)
``y_q = clamp(round(acc * M) + zy)``          (requantization)

with ``M = s_x s_w / s_y`` the requantization multiplier.  ReLU in the
quantized domain is ``max(y_q, zy)``.  The final layer's output is
dequantized to a float logit — the sigmoid is elided and the decision
threshold applied to the logit, exactly as the paper does on the FPGA.

Kernel strategy
---------------

The naive realization (kept verbatim as
:meth:`QuantizedLinear._reference_forward_int`) widens both operands to
int64 **per call** and multiplies them with NumPy's integer ``@`` — which
has no BLAS backing and runs an order of magnitude slower than the float
path it is supposed to beat.  The production kernel instead exploits two
exactness facts, both checked at construction time:

* **GEMM.**  A float matmul of integer-valued operands is *exact* (no
  rounding anywhere, regardless of summation order or SIMD blocking) as
  long as every partial sum stays below the mantissa capacity — ``2**24``
  for float32, ``2**53`` for float64.  The worst-case accumulator bound
  ``in_width * max|x - zx| * max|W|`` is computed once per layer and the
  narrowest sufficient dtype chosen, so the int32 GEMM runs on BLAS
  (sgemm/dgemm) over weights pre-transposed, pre-typed, and made
  contiguous at construction — no per-call ``astype`` on the hot path.

* **Requantization.**  The float multiplier decomposes exactly into a
  fixed-point **multiplier/shift** pair ``M = m * 2**-s`` with ``m`` the
  53-bit integer significand (``np.frexp``).  Because scaling by a power
  of two is exact in binary floating point and commutes with round-to-
  nearest, ``round((acc * m) * 2**-s)`` is *bitwise identical* to the
  reference ``round(acc * M)`` for every int32 accumulator value — the
  fused requantization pass (multiply, shift, round, zero-point add,
  clip, ReLU) therefore reproduces the reference path bit for bit while
  touching the accumulator matrix a constant number of times with no
  Python-level per-element work.

``tests/quantization/test_int8_fast.py`` pins both facts: bitwise parity
of ``forward_int`` against the retained reference, and an accumulator
sweep of the requantization semantics (round/clip/zero-point/ReLU).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.quantization.fake_quant import (
    INT8_MAX,
    INT8_MIN,
    UINT8_MAX,
    UINT8_MIN,
    quantize,
)

#: Range of the FPGA's 32-bit MAC accumulator; biases saturate to it.
INT32_MIN = -(2 ** 31)
INT32_MAX = 2 ** 31 - 1

#: Largest integer a float32 partial sum can hold exactly.
_F32_EXACT = 2 ** 24
#: Largest integer a float64 partial sum can hold exactly.
_F64_EXACT = 2 ** 53

#: Construction-time cache attributes (rebuilt on unpickle, never
#: serialized — engines broadcast to workers stay weight-sized).
_CACHE_ATTRS = (
    "_weight_f",
    "_bias_f",
    "_requant_mult",
    "_requant_scale",
    "_zero_f",
    "_gemm_dtype",
    "_exact_gemm",
)


def _fixed_point_requant_params(
    multiplier: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decompose float multipliers into exact ``(m, s, 2**-s)`` arrays.

    ``np.frexp`` writes each multiplier as ``mant * 2**e`` with
    ``|mant|`` in ``[0.5, 1)``; scaling the mantissa by ``2**53`` yields
    the integer significand ``m`` (a float64-held integer, the value an
    FPGA would load into a 54-bit multiplier) and the right-shift
    ``s = 53 - e``, with ``M = m * 2**-s`` holding *exactly* — no
    rounding is involved in the decomposition.  Degenerate multipliers
    whose shift would leave the normal float64 range (``|M|`` below
    ``~2**-900``; never produced by calibration) fall back to
    ``(M, 0, 1.0)``, which is trivially exact too.

    Returns:
        ``(m, s, 2**-s)`` float64 arrays shaped like ``multiplier``.
    """
    mult = np.asarray(multiplier, dtype=np.float64)
    mant, exp = np.frexp(mult)
    m = mant * np.float64(2.0 ** 53)
    s = 53 - exp
    scale = np.ldexp(np.ones_like(m), -s)
    degenerate = s > 900
    if np.any(degenerate):
        m = np.where(degenerate, mult, m)
        s = np.where(degenerate, 0, s)
        scale = np.where(degenerate, 1.0, scale)
    return m, s.astype(np.int64), scale


@dataclass
class QuantizedLinear:
    """One integer linear stage.

    Attributes:
        weight_q: ``(in, out)`` int8 weights.
        bias_q: ``(out,)`` int32 bias in accumulator units
            (``bias / (s_x s_w)``), saturated to the int32 accumulator
            range exactly as the FPGA's fixed-width adder would hold it.
        in_zero_point: Zero point of the incoming activation.
        requant_multiplier: ``s_x s_w / s_y``.
        out_zero_point: Zero point of the outgoing activation.
        relu: Apply quantized ReLU after requantization.
        out_float_scale: Scale to dequantize this layer's output (used for
            the final logit).

    The constructor freezes kernel caches (typed weight copy, float
    bias, fixed-point requant arrays); treat a constructed layer as
    immutable — mutate fields only through ``from_float`` rebuilding.
    """

    weight_q: np.ndarray
    bias_q: np.ndarray
    in_zero_point: int
    #: Scalar (per-tensor) or ``(out,)`` vector (per-channel) multiplier.
    requant_multiplier: float | np.ndarray
    out_zero_point: int
    relu: bool
    out_float_scale: float

    def __post_init__(self) -> None:
        """Precompute the hot-path caches once, at construction."""
        self._build_caches()

    def _build_caches(self) -> None:
        """Freeze pre-typed weights and fixed-point requant parameters.

        * ``_weight_f`` — the int8 weight matrix widened **once** to the
          narrowest float dtype whose mantissa provably holds every
          partial sum of the integer GEMM exactly, stored C-contiguous
          so BLAS consumes it without an internal copy.
        * ``_bias_f`` / ``_zero_f`` — float64 copies of the int32 bias
          and output zero point (exact: both are < 2**53).
        * ``_requant_mult`` / ``_requant_scale`` — the exact fixed-point
          multiplier/shift decomposition of ``requant_multiplier``.
        """
        w = np.ascontiguousarray(self.weight_q)
        max_w = float(np.max(np.abs(w), initial=0.0))
        zx = float(self.in_zero_point)
        max_xc = max(abs(UINT8_MIN - zx), abs(UINT8_MAX - zx))
        bound = w.shape[0] * max_xc * max_w
        self._exact_gemm = bound < _F64_EXACT
        self._gemm_dtype = np.float32 if bound < _F32_EXACT else np.float64
        self._weight_f = np.ascontiguousarray(w, dtype=self._gemm_dtype)
        self._bias_f = np.asarray(self.bias_q, dtype=np.float64)
        self._zero_f = np.float64(self.out_zero_point)
        mult, _, scale = _fixed_point_requant_params(
            np.asarray(self.requant_multiplier, dtype=np.float64)
        )
        self._requant_mult = mult
        self._requant_scale = scale

    def __getstate__(self) -> dict:
        """Pickle without the caches (rebuilt on load; keeps engine
        broadcasts weight-sized)."""
        return {
            k: v for k, v in self.__dict__.items() if k not in _CACHE_ATTRS
        }

    def __setstate__(self, state: dict) -> None:
        """Restore fields and rebuild the kernel caches."""
        self.__dict__.update(state)
        self._build_caches()

    @property
    def requant_shift(self) -> np.ndarray:
        """Fixed-point right-shift(s) ``s`` with ``M = m * 2**-s``."""
        _, shift, _ = _fixed_point_requant_params(
            np.asarray(self.requant_multiplier, dtype=np.float64)
        )
        return shift

    @staticmethod
    def from_float(
        weight: np.ndarray,
        bias: np.ndarray,
        weight_scale: float | np.ndarray,
        in_scale: float,
        in_zero_point: int,
        out_scale: float,
        out_zero_point: int,
        relu: bool,
        weight_qmin: int = INT8_MIN,
        weight_qmax: int = INT8_MAX,
    ) -> "QuantizedLinear":
        """Quantize a float layer given its observed scales.

        ``weight_scale`` may be a scalar (per-tensor) or an ``(out,)``
        vector (per-channel symmetric quantization); the requantization
        multiplier inherits the same shape.  ``weight_qmin/qmax`` allow
        narrower weight grids (e.g. INT4) while keeping the activation
        path 8-bit.
        """
        weight_scale = np.asarray(weight_scale, dtype=np.float64)
        if weight_scale.ndim == 0:
            w_q = quantize(
                weight, float(weight_scale), 0, weight_qmin, weight_qmax
            )
        else:
            if weight_scale.shape != (weight.shape[1],):
                raise ValueError("per-channel scale must have one entry per "
                                 "output feature")
            q = np.round(weight / weight_scale[None, :])
            w_q = np.clip(q, weight_qmin, weight_qmax).astype(np.int32)
        acc_scale = in_scale * weight_scale  # scalar or (out,)
        # The docs promised int32 but this stored int64 — wider than the
        # FPGA's 32-bit accumulator, so a bias outside int32 would behave
        # differently on hardware than in this reference.  Saturate
        # explicitly and warn, matching fixed-width adder semantics.
        b_real = np.round(bias / acc_scale)
        overflow = (b_real < INT32_MIN) | (b_real > INT32_MAX)
        if np.any(overflow):
            warnings.warn(
                f"{int(np.count_nonzero(overflow))} bias value(s) exceed "
                "the int32 accumulator range and were saturated; the "
                "quantization scales are likely miscalibrated",
                RuntimeWarning,
                stacklevel=2,
            )
        b_q = np.clip(b_real, INT32_MIN, INT32_MAX).astype(np.int32)
        multiplier = acc_scale / out_scale
        return QuantizedLinear(
            weight_q=w_q.astype(np.int8),
            bias_q=b_q,
            in_zero_point=in_zero_point,
            requant_multiplier=(
                float(multiplier) if np.ndim(multiplier) == 0 else multiplier
            ),
            out_zero_point=out_zero_point,
            relu=relu,
            out_float_scale=out_scale,
        )

    def forward_int(self, x_q: np.ndarray) -> np.ndarray:
        """Integer forward: uint8-domain activations in, uint8 out.

        The fast kernel: BLAS GEMM over the construction-time typed
        weight copy, then one fused fixed-point requantization pass —
        bitwise identical to :meth:`_reference_forward_int` for
        activations in the uint8 grid (the only values the quantize/clip
        chain can produce; the exactness precondition is checked at
        construction and falls back to the reference otherwise).

        Args:
            x_q: ``(batch, in)`` int32-held quantized activations.

        Returns:
            ``(batch, out)`` int32-held quantized activations.
        """
        if not self._exact_gemm:
            return self._reference_forward_int(x_q)
        # Center in the GEMM dtype directly (exact: |x - zx| <= 255) so
        # no intermediate integer array is materialized.
        xc = np.subtract(x_q, self.in_zero_point, dtype=self._gemm_dtype)
        acc = xc @ self._weight_f
        # From here on float64, exact: |acc + b| < 2**53.  The bias add
        # reuses the accumulator buffer when the GEMM already ran in
        # float64.
        if acc.dtype == np.float64:
            y = np.add(acc, self._bias_f, out=acc)
        else:
            y = np.add(acc, self._bias_f, dtype=np.float64)
        # Fixed-point requantization, fused in place: multiply by the
        # integer significand, apply the exact power-of-two shift, round
        # to nearest-even, shift to the output zero point, saturate, and
        # apply quantized ReLU.
        np.multiply(y, self._requant_mult, out=y)
        np.multiply(y, self._requant_scale, out=y)
        np.rint(y, out=y)
        np.add(y, self._zero_f, out=y)
        y = np.clip(y, UINT8_MIN, UINT8_MAX, out=y)
        if self.relu:
            np.maximum(y, self._zero_f, out=y)
        return y.astype(np.int32)

    def _reference_forward_int(self, x_q: np.ndarray) -> np.ndarray:
        """The original int64 kernel, retained as the parity reference.

        Widens per call and multiplies with NumPy's (BLAS-less) integer
        ``@`` — an order of magnitude slower than :meth:`forward_int`,
        but the simplest possible statement of the layer semantics.
        Every change to the fast kernel must stay bitwise identical to
        this (``tests/quantization/test_int8_fast.py``).
        """
        acc = (x_q - self.in_zero_point).astype(np.int64) @ self.weight_q.astype(
            np.int64
        )
        acc += self.bias_q
        y = np.round(acc * self.requant_multiplier) + self.out_zero_point
        y = np.clip(y, UINT8_MIN, UINT8_MAX).astype(np.int32)
        if self.relu:
            y = np.maximum(y, self.out_zero_point)
        return y

    def dequantize_output(self, y_q: np.ndarray) -> np.ndarray:
        """Quantized activations -> float."""
        return (y_q.astype(np.float64) - self.out_zero_point) * self.out_float_scale


@dataclass
class QuantizedMLP:
    """A stack of :class:`QuantizedLinear` stages with one input quantizer.

    Attributes:
        input_scale: Input activation scale.
        input_zero_point: Input activation zero point.
        layers: The integer stages, in order.
    """

    input_scale: float
    input_zero_point: int
    layers: list[QuantizedLinear]

    def _quantize_input(self, x: np.ndarray) -> np.ndarray:
        """Float features -> uint8-domain int32 grid."""
        return quantize(
            np.asarray(x, dtype=np.float64),
            self.input_scale,
            self.input_zero_point,
            UINT8_MIN,
            UINT8_MAX,
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Float features in, float logits out (integer path inside)."""
        x_q = self._quantize_input(x)
        for layer in self.layers:
            x_q = layer.forward_int(x_q)
        return self.layers[-1].dequantize_output(x_q)

    def forward_reference(self, x: np.ndarray) -> np.ndarray:
        """The same chain through the retained reference kernels.

        Exists so campaign-scale parity assertions can compare the
        production path against the original int64 implementation
        end to end (quantize included) without touching private
        methods.
        """
        x_q = self._quantize_input(x)
        for layer in self.layers:
            x_q = layer._reference_forward_int(x_q)
        return self.layers[-1].dequantize_output(x_q)

    def predict_logit(self, x: np.ndarray) -> np.ndarray:
        """Alias returning ``(batch,)`` logits for a 1-output head."""
        out = self.forward(x)
        return out[:, 0]

    @property
    def weight_bytes(self) -> int:
        """Total int8 weight storage, bytes."""
        return int(sum(layer.weight_q.size for layer in self.layers))
