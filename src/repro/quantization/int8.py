"""True-integer INT8 inference engine.

Each layer stores int8 weights and an int32 bias; inference quantizes the
input once, then every layer computes

``acc = (x_q - zx) @ W_q + b_q``              (int32 accumulators)
``y_q = clamp(round(acc * M) + zy)``          (requantization)

with ``M = s_x s_w / s_y`` the floating requantization multiplier (real
deployments use a fixed-point M; float M is numerically identical at these
sizes).  ReLU in the quantized domain is ``max(y_q, zy)``.  The final
layer's output is dequantized to a float logit — the sigmoid is elided and
the decision threshold applied to the logit, exactly as the paper does on
the FPGA.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.quantization.fake_quant import (
    INT8_MAX,
    INT8_MIN,
    UINT8_MAX,
    UINT8_MIN,
    quantize,
)

#: Range of the FPGA's 32-bit MAC accumulator; biases saturate to it.
INT32_MIN = -(2 ** 31)
INT32_MAX = 2 ** 31 - 1


@dataclass
class QuantizedLinear:
    """One integer linear stage.

    Attributes:
        weight_q: ``(in, out)`` int8 weights.
        bias_q: ``(out,)`` int32 bias in accumulator units
            (``bias / (s_x s_w)``), saturated to the int32 accumulator
            range exactly as the FPGA's fixed-width adder would hold it.
        in_zero_point: Zero point of the incoming activation.
        requant_multiplier: ``s_x s_w / s_y``.
        out_zero_point: Zero point of the outgoing activation.
        relu: Apply quantized ReLU after requantization.
        out_float_scale: Scale to dequantize this layer's output (used for
            the final logit).
    """

    weight_q: np.ndarray
    bias_q: np.ndarray
    in_zero_point: int
    #: Scalar (per-tensor) or ``(out,)`` vector (per-channel) multiplier.
    requant_multiplier: float | np.ndarray
    out_zero_point: int
    relu: bool
    out_float_scale: float

    @staticmethod
    def from_float(
        weight: np.ndarray,
        bias: np.ndarray,
        weight_scale: float | np.ndarray,
        in_scale: float,
        in_zero_point: int,
        out_scale: float,
        out_zero_point: int,
        relu: bool,
        weight_qmin: int = INT8_MIN,
        weight_qmax: int = INT8_MAX,
    ) -> "QuantizedLinear":
        """Quantize a float layer given its observed scales.

        ``weight_scale`` may be a scalar (per-tensor) or an ``(out,)``
        vector (per-channel symmetric quantization); the requantization
        multiplier inherits the same shape.  ``weight_qmin/qmax`` allow
        narrower weight grids (e.g. INT4) while keeping the activation
        path 8-bit.
        """
        weight_scale = np.asarray(weight_scale, dtype=np.float64)
        if weight_scale.ndim == 0:
            w_q = quantize(
                weight, float(weight_scale), 0, weight_qmin, weight_qmax
            )
        else:
            if weight_scale.shape != (weight.shape[1],):
                raise ValueError("per-channel scale must have one entry per "
                                 "output feature")
            q = np.round(weight / weight_scale[None, :])
            w_q = np.clip(q, weight_qmin, weight_qmax).astype(np.int32)
        acc_scale = in_scale * weight_scale  # scalar or (out,)
        # The docs promised int32 but this stored int64 — wider than the
        # FPGA's 32-bit accumulator, so a bias outside int32 would behave
        # differently on hardware than in this reference.  Saturate
        # explicitly and warn, matching fixed-width adder semantics.
        b_real = np.round(bias / acc_scale)
        overflow = (b_real < INT32_MIN) | (b_real > INT32_MAX)
        if np.any(overflow):
            warnings.warn(
                f"{int(np.count_nonzero(overflow))} bias value(s) exceed "
                "the int32 accumulator range and were saturated; the "
                "quantization scales are likely miscalibrated",
                RuntimeWarning,
                stacklevel=2,
            )
        b_q = np.clip(b_real, INT32_MIN, INT32_MAX).astype(np.int32)
        multiplier = acc_scale / out_scale
        return QuantizedLinear(
            weight_q=w_q.astype(np.int8),
            bias_q=b_q,
            in_zero_point=in_zero_point,
            requant_multiplier=(
                float(multiplier) if np.ndim(multiplier) == 0 else multiplier
            ),
            out_zero_point=out_zero_point,
            relu=relu,
            out_float_scale=out_scale,
        )

    def forward_int(self, x_q: np.ndarray) -> np.ndarray:
        """Integer forward: uint8-domain activations in, uint8 out.

        Args:
            x_q: ``(batch, in)`` int32-held quantized activations.

        Returns:
            ``(batch, out)`` int32-held quantized activations.
        """
        acc = (x_q - self.in_zero_point).astype(np.int64) @ self.weight_q.astype(
            np.int64
        )
        acc += self.bias_q
        y = np.round(acc * self.requant_multiplier) + self.out_zero_point
        y = np.clip(y, UINT8_MIN, UINT8_MAX).astype(np.int32)
        if self.relu:
            y = np.maximum(y, self.out_zero_point)
        return y

    def dequantize_output(self, y_q: np.ndarray) -> np.ndarray:
        """Quantized activations -> float."""
        return (y_q.astype(np.float64) - self.out_zero_point) * self.out_float_scale


@dataclass
class QuantizedMLP:
    """A stack of :class:`QuantizedLinear` stages with one input quantizer.

    Attributes:
        input_scale: Input activation scale.
        input_zero_point: Input activation zero point.
        layers: The integer stages, in order.
    """

    input_scale: float
    input_zero_point: int
    layers: list[QuantizedLinear]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Float features in, float logits out (integer path inside)."""
        x_q = quantize(
            np.asarray(x, dtype=np.float64),
            self.input_scale,
            self.input_zero_point,
            UINT8_MIN,
            UINT8_MAX,
        )
        for layer in self.layers:
            x_q = layer.forward_int(x_q)
        return self.layers[-1].dequantize_output(x_q)

    def predict_logit(self, x: np.ndarray) -> np.ndarray:
        """Alias returning ``(batch,)`` logits for a 1-output head."""
        out = self.forward(x)
        return out[:, 0]

    @property
    def weight_bytes(self) -> int:
        """Total int8 weight storage, bytes."""
        return int(sum(layer.weight_q.size for layer in self.layers))
