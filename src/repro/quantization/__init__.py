"""INT8 quantization: observers, fake-quantization, fusion, QAT, and a
true-integer inference engine (paper Section V).

Mirrors PyTorch's Eager-Mode quantization-aware training: the model is
retrained with the block order swapped to ``Linear -> BatchNorm -> ReLU``
so the three fuse into a single linear stage, fake-quantization modules
simulate INT8 rounding during training (straight-through gradients), and
the converted model runs genuine int8 arithmetic with int32 accumulators.
"""

from repro.quantization.observers import MinMaxObserver, MovingAverageObserver
from repro.quantization.fake_quant import (
    FakeQuantize,
    dequantize,
    quantize,
    quantize_symmetric_params,
    quantize_affine_params,
)
from repro.quantization.fuse import fuse_linear_bn_relu
from repro.quantization.qat import QATLinear, convert_to_int8, prepare_qat
from repro.quantization.int8 import QuantizedLinear, QuantizedMLP
from repro.quantization.strategies import post_training_quantize, weight_storage_bytes

__all__ = [
    "MinMaxObserver",
    "MovingAverageObserver",
    "quantize",
    "dequantize",
    "quantize_symmetric_params",
    "quantize_affine_params",
    "FakeQuantize",
    "fuse_linear_bn_relu",
    "prepare_qat",
    "QATLinear",
    "convert_to_int8",
    "QuantizedLinear",
    "QuantizedMLP",
    "post_training_quantize",
    "weight_storage_bytes",
]
