"""Alternative quantization strategies (paper Section VI future work).

The paper performs per-tensor INT8 quantization-aware training through
PyTorch's Eager Mode and names "a broader range of quantization
strategies" as future work.  This module implements three of them on the
same integer inference engine:

* **Post-training quantization (PTQ)** — calibrate observers on
  representative data with *no* fine-tuning, then convert.  Cheaper than
  QAT; usually slightly less accurate.
* **Per-channel weight quantization** — one symmetric scale per output
  neuron instead of per tensor, recovering accuracy lost to channels with
  very different weight magnitudes.
* **Narrow weight grids (e.g. INT4)** — weights quantized to fewer bits
  while activations stay 8-bit, halving weight storage again at some
  accuracy cost.

All three produce a :class:`~repro.quantization.int8.QuantizedMLP`, so
they drop into the same pipeline and FPGA analyses as the paper's QAT
model.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Linear, ReLU, Sequential
from repro.quantization.fake_quant import quantize_affine_params
from repro.quantization.int8 import QuantizedLinear, QuantizedMLP
from repro.quantization.observers import MinMaxObserver


def _weight_bounds(bits: int) -> tuple[int, int]:
    """Signed integer range for a given weight bit width."""
    if not (2 <= bits <= 8):
        raise ValueError("weight bits must be in [2, 8]")
    return -(2 ** (bits - 1)), 2 ** (bits - 1) - 1


def _per_tensor_weight_scale(w: np.ndarray, qmax: int) -> float:
    bound = max(float(np.abs(w).max()), 1e-12)
    return bound / qmax


def _per_channel_weight_scale(w: np.ndarray, qmax: int) -> np.ndarray:
    bound = np.maximum(np.abs(w).max(axis=0), 1e-12)
    return bound / qmax


def post_training_quantize(
    fused: Sequential,
    calibration_x: np.ndarray,
    per_channel: bool = False,
    weight_bits: int = 8,
) -> QuantizedMLP:
    """Convert a fused Linear/ReLU network to integer inference via PTQ.

    Observers record every activation range over one pass of the
    calibration set; weights are quantized symmetrically (per tensor or
    per channel); no parameters change.

    Args:
        fused: Eval-mode fused network (``Linear``/``ReLU`` only; fuse
            BatchNorm first with
            :func:`~repro.quantization.fuse.fuse_linear_bn_relu`).
        calibration_x: ``(n, d)`` *scaled* representative inputs.
        per_channel: Per-channel symmetric weight scales.
        weight_bits: Weight grid width (activations stay 8-bit).

    Returns:
        A :class:`QuantizedMLP`.

    Raises:
        ValueError: On unsupported module types or empty calibration data.
    """
    if calibration_x.ndim != 2 or calibration_x.shape[0] == 0:
        raise ValueError("calibration data must be a non-empty (n, d) array")
    wq_min, wq_max = _weight_bounds(weight_bits)

    # Calibration pass: record the activation range entering every Linear
    # and leaving the network.
    mods = [m for m in fused]
    for m in mods:
        if not isinstance(m, (Linear, ReLU)):
            raise ValueError(
                f"PTQ expects a fused Linear/ReLU stack, found "
                f"{type(m).__name__}"
            )
    observers: list[MinMaxObserver] = []
    x = calibration_x
    obs_in = MinMaxObserver()
    obs_in.observe(x)
    for m in mods:
        x = m.forward(x)
        if isinstance(m, Linear):
            obs = MinMaxObserver()
            obs.observe(x)
            observers.append(obs)
        else:
            # ReLU clamps the preceding Linear's observed range at zero; the
            # affine parameter computation handles this via the zero-anchor,
            # but tightening the min to 0 improves resolution.
            observers[-1].observe(np.zeros(1, dtype=np.float64))
            observers[-1].min_val = max(observers[-1].min_val, 0.0)
            observers[-1].observe(x)

    in_scale, in_zp = quantize_affine_params(*obs_in.range())
    layers: list[QuantizedLinear] = []
    li = 0
    i = 0
    cur_scale, cur_zp = in_scale, in_zp
    while i < len(mods):
        m = mods[i]
        assert isinstance(m, Linear)
        relu = i + 1 < len(mods) and isinstance(mods[i + 1], ReLU)
        w = m.weight.value
        if per_channel:
            w_scale: float | np.ndarray = _per_channel_weight_scale(w, wq_max)
        else:
            w_scale = _per_tensor_weight_scale(w, wq_max)
        out_scale, out_zp = quantize_affine_params(*observers[li].range())
        layers.append(
            QuantizedLinear.from_float(
                weight=w,
                bias=m.bias.value,
                weight_scale=w_scale,
                in_scale=cur_scale,
                in_zero_point=cur_zp,
                out_scale=out_scale,
                out_zero_point=out_zp,
                relu=relu,
                weight_qmin=wq_min,
                weight_qmax=wq_max,
            )
        )
        cur_scale, cur_zp = out_scale, out_zp
        li += 1
        i += 2 if relu else 1
    return QuantizedMLP(
        input_scale=in_scale, input_zero_point=in_zp, layers=layers
    )


def weight_storage_bytes(model: QuantizedMLP, weight_bits: int = 8) -> float:
    """Weight storage of an integer model at the given bit width, bytes."""
    return model.weight_bytes * weight_bits / 8.0
