"""Affine quantization primitives and the fake-quantization module.

Quantization maps a float ``x`` to an integer ``q = round(x / scale) +
zero_point`` clamped to the integer range; dequantization inverts it.
*Fake* quantization applies quantize-then-dequantize in float, so training
sees the rounding error while gradients flow via the straight-through
estimator (pass-through inside the clamp range, zero outside).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Module
from repro.quantization.observers import MovingAverageObserver

#: Signed int8 range (weights).
INT8_MIN, INT8_MAX = -128, 127
#: Unsigned 8-bit range (activations, PyTorch x86 quint8 convention).
UINT8_MIN, UINT8_MAX = 0, 255


def quantize_symmetric_params(
    min_val: float, max_val: float, qmin: int = INT8_MIN, qmax: int = INT8_MAX
) -> tuple[float, int]:
    """Symmetric (zero_point = 0) scale for a range — used for weights."""
    bound = max(abs(min_val), abs(max_val), 1e-12)
    scale = bound / max(qmax, -qmin)
    return scale, 0


def quantize_affine_params(
    min_val: float, max_val: float, qmin: int = UINT8_MIN, qmax: int = UINT8_MAX
) -> tuple[float, int]:
    """Affine scale/zero-point covering [min_val, max_val] — activations.

    The range is widened to include zero so that zero is exactly
    representable (required for correct padding/ReLU semantics).
    """
    lo = min(min_val, 0.0)
    hi = max(max_val, 0.0)
    scale = max((hi - lo) / (qmax - qmin), 1e-12)
    zero_point = int(round(qmin - lo / scale))
    return scale, int(np.clip(zero_point, qmin, qmax))


def quantize(
    x: np.ndarray, scale: float, zero_point: int, qmin: int, qmax: int
) -> np.ndarray:
    """Float -> integer grid (returns int32 for headroom in callers)."""
    q = np.round(x / scale) + zero_point
    return np.clip(q, qmin, qmax).astype(np.int32)


def dequantize(q: np.ndarray, scale: float, zero_point: int) -> np.ndarray:
    """Integer grid -> float."""
    return (q.astype(np.float64) - zero_point) * scale


class FakeQuantize(Module):
    """Quantize-dequantize pass-through with straight-through gradients.

    In training mode the module observes the tensor range (moving
    average), computes affine INT8 parameters, and emits the rounded
    tensor; gradients pass through where the input fell inside the clamp
    range and are zeroed outside.  In eval mode the last-computed
    parameters are used without further observation.

    Args:
        symmetric: Use symmetric signed-int8 parameters (weights) rather
            than affine unsigned (activations).
        momentum: Observer EMA momentum.
    """

    def __init__(self, symmetric: bool = False, momentum: float = 0.01) -> None:
        self.symmetric = symmetric
        self.observer = MovingAverageObserver(momentum)
        self.scale: float = 1.0
        self.zero_point: int = 0
        self._mask: np.ndarray | None = None

    @property
    def qrange(self) -> tuple[int, int]:
        return (INT8_MIN, INT8_MAX) if self.symmetric else (UINT8_MIN, UINT8_MAX)

    def compute_qparams(self) -> tuple[float, int]:
        """(scale, zero_point) for the currently observed range."""
        lo, hi = self.observer.range()
        if self.symmetric:
            return quantize_symmetric_params(lo, hi)
        return quantize_affine_params(lo, hi)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            self.observer.observe(x)
            self.scale, self.zero_point = self.compute_qparams()
        qmin, qmax = self.qrange
        lo = (qmin - self.zero_point) * self.scale
        hi = (qmax - self.zero_point) * self.scale
        self._mask = (x >= lo) & (x <= hi)
        q = quantize(x, self.scale, self.zero_point, qmin, qmax)
        return dequantize(q, self.scale, self.zero_point)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._mask
