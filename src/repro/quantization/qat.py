"""Quantization-aware training (QAT) and conversion to INT8.

``prepare_qat`` rewrites a fused network (``Linear``/``ReLU`` stack) into
QAT form: each Linear becomes a :class:`QATLinear` whose weights are
fake-quantized symmetrically every forward pass and whose activations pass
through an affine fake-quantizer — matching PyTorch's Eager-Mode flow the
paper uses.  After fine-tuning, ``convert_to_int8`` freezes the observed
ranges into a :class:`~repro.quantization.int8.QuantizedMLP` running true
integer arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Linear, Module, ReLU, Sequential
from repro.quantization.fake_quant import FakeQuantize
from repro.quantization.int8 import QuantizedLinear, QuantizedMLP


class QATLinear(Module):
    """A Linear layer with fake-quantized weights and output.

    The weight fake-quantizer is symmetric int8 (per-tensor), the output
    activation fake-quantizer affine uint8; both train with
    straight-through gradients.

    Args:
        linear: The (fused) float layer to wrap; its parameters are shared
            and continue to be trained.
    """

    def __init__(self, linear: Linear) -> None:
        self.linear = linear
        self.weight_fq = FakeQuantize(symmetric=True)
        self.act_fq = FakeQuantize(symmetric=False)
        self._x: np.ndarray | None = None
        self._wq: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.weight_fq.training = self.training
        self.act_fq.training = self.training
        w = self.linear.weight.value
        wq = self.weight_fq.forward(w)
        self._x = x
        self._wq = wq
        y = x @ wq + self.linear.bias.value
        return self.act_fq.forward(y)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None or self._wq is None:
            raise RuntimeError("backward called before forward")
        grad_y = self.act_fq.backward(grad_out)
        grad_w = self._x.T @ grad_y
        self.linear.weight.grad += self.weight_fq.backward(grad_w)
        self.linear.bias.grad += grad_y.sum(axis=0)
        return grad_y @ self._wq.T

    def parameters(self):
        return self.linear.parameters()

    def train(self) -> "QATLinear":
        self.training = True
        self.weight_fq.training = True
        self.act_fq.training = True
        return self

    def eval(self) -> "QATLinear":
        self.training = False
        self.weight_fq.training = False
        self.act_fq.training = False
        return self


def prepare_qat(fused: Sequential) -> Sequential:
    """Rewrite a fused Linear/ReLU network for QAT.

    An input fake-quantizer is prepended (the integer engine quantizes its
    input once), every Linear becomes a :class:`QATLinear`, and ReLUs are
    kept (their output range is re-observed by the next layer's input
    effectively through the preceding activation quantizer).

    Raises:
        ValueError: If the model contains anything but Linear/ReLU.
    """
    modules: list[Module] = [FakeQuantize(symmetric=False)]
    for m in fused:
        if isinstance(m, Linear):
            modules.append(QATLinear(m))
        elif isinstance(m, ReLU):
            modules.append(m)
        else:
            raise ValueError(
                f"prepare_qat expects a fused Linear/ReLU stack, found "
                f"{type(m).__name__}"
            )
    return Sequential(*modules)


def convert_to_int8(qat_model: Sequential) -> QuantizedMLP:
    """Freeze a QAT model into a true-integer INT8 engine.

    Args:
        qat_model: The fine-tuned network from :func:`prepare_qat`.

    Returns:
        A :class:`QuantizedMLP` with int8 weights and integer arithmetic.

    Raises:
        ValueError: If the model was not produced by :func:`prepare_qat`.
    """
    mods = list(qat_model)
    if not mods or not isinstance(mods[0], FakeQuantize):
        raise ValueError("expected a prepare_qat model (input FakeQuantize first)")
    input_fq: FakeQuantize = mods[0]
    layers: list[QuantizedLinear] = []
    in_scale, in_zp = input_fq.scale, input_fq.zero_point
    i = 1
    while i < len(mods):
        m = mods[i]
        if isinstance(m, QATLinear):
            relu = i + 1 < len(mods) and isinstance(mods[i + 1], ReLU)
            w_scale, _ = m.weight_fq.compute_qparams()
            out_scale, out_zp = m.act_fq.scale, m.act_fq.zero_point
            layers.append(
                QuantizedLinear.from_float(
                    weight=m.linear.weight.value,
                    bias=m.linear.bias.value,
                    weight_scale=w_scale,
                    in_scale=in_scale,
                    in_zero_point=in_zp,
                    out_scale=out_scale,
                    out_zero_point=out_zp,
                    relu=relu,
                )
            )
            in_scale, in_zp = out_scale, out_zp
            i += 2 if relu else 1
        else:
            raise ValueError(f"unexpected module {type(m).__name__} in QAT model")
    return QuantizedMLP(
        input_scale=input_fq.scale,
        input_zero_point=input_fq.zero_point,
        layers=layers,
    )
