"""Layer fusion: fold BatchNorm into the preceding Linear.

The paper retrains the background model with each block's Linear and
BatchNorm order swapped (``Linear -> BatchNorm -> ReLU``) precisely so the
three can be fused into one linear stage for quantization and FPGA
synthesis.  With BN statistics (mu, var) and affine (gamma, beta) frozen:

``y = gamma * (xW + b - mu) / sqrt(var + eps) + beta = x W' + b'``

where ``W' = W * g``, ``b' = (b - mu) * g + beta``, ``g = gamma /
sqrt(var + eps)`` (broadcast over output features).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import BatchNorm1d, Identity, Linear, Module, Sequential


def _fold(linear: Linear, bn: BatchNorm1d) -> Linear:
    g = bn.gamma.value / np.sqrt(bn.running_var + bn.eps)
    fused = Linear(linear.in_features, linear.out_features, rng=np.random.default_rng(0))  # reprolint: disable=RNG001 -- init values are discarded; weight and bias are overwritten below
    fused.weight.value[...] = linear.weight.value * g[None, :]
    fused.bias.value[...] = (linear.bias.value - bn.running_mean) * g + bn.beta.value
    return fused


def fuse_linear_bn_relu(model: Sequential) -> Sequential:
    """Fuse every ``Linear -> BatchNorm1d`` pair (ReLU kept as is).

    The model must be in eval mode (fusion bakes in the running
    statistics).  Layers that do not match the pattern are passed through
    unchanged.

    Args:
        model: A swapped-order network (``Linear -> BN -> ReLU`` blocks).

    Returns:
        A new :class:`Sequential` with fused Linear layers.

    Raises:
        ValueError: If the model is in training mode, or a BatchNorm is
            not immediately preceded by a Linear of matching width.
    """
    if model.training:
        raise ValueError("fuse a model in eval mode (running stats are baked in)")
    fused_modules: list[Module] = []
    i = 0
    mods = list(model)
    while i < len(mods):
        m = mods[i]
        if (
            isinstance(m, Linear)
            and i + 1 < len(mods)
            and isinstance(mods[i + 1], BatchNorm1d)
        ):
            bn = mods[i + 1]
            if bn.num_features != m.out_features:
                raise ValueError(
                    "BatchNorm width does not match preceding Linear output"
                )
            fused_modules.append(_fold(m, bn))
            i += 2
        elif isinstance(m, BatchNorm1d):
            raise ValueError("found BatchNorm1d not preceded by a Linear")
        elif isinstance(m, Identity):
            i += 1
        else:
            fused_modules.append(m)
            i += 1
    fused = Sequential(*fused_modules)
    fused.eval()
    return fused
