"""Range observers for quantization parameter estimation.

Observers track the dynamic range of tensors flowing through a point in
the network; the observed range determines the INT8 scale and zero point,
exactly as in PyTorch's quantization workflow.
"""

from __future__ import annotations

import numpy as np


class MinMaxObserver:
    """Tracks the global min/max ever observed."""

    def __init__(self) -> None:
        self.min_val: float = np.inf
        self.max_val: float = -np.inf

    def observe(self, x: np.ndarray) -> None:
        """Update the range with a batch of values."""
        if x.size == 0:
            return
        self.min_val = min(self.min_val, float(np.min(x)))
        self.max_val = max(self.max_val, float(np.max(x)))

    @property
    def initialized(self) -> bool:
        return self.min_val <= self.max_val

    def range(self) -> tuple[float, float]:
        """The observed (min, max); (0, 1) before any observation."""
        if not self.initialized:
            return 0.0, 1.0
        return self.min_val, self.max_val


class MovingAverageObserver:
    """Exponential-moving-average min/max (PyTorch's QAT default).

    Smoother than the global extremum under batch noise, which matters
    during QAT when early untrained activations have wild ranges.

    Args:
        momentum: EMA update weight of the newest batch.
    """

    def __init__(self, momentum: float = 0.01) -> None:
        if not (0.0 < momentum <= 1.0):
            raise ValueError("momentum must be in (0, 1]")
        self.momentum = momentum
        self.min_val: float | None = None
        self.max_val: float | None = None

    def observe(self, x: np.ndarray) -> None:
        """Fold a batch of values into the running range estimate."""
        if x.size == 0:
            return
        lo, hi = float(np.min(x)), float(np.max(x))
        if self.min_val is None:
            self.min_val, self.max_val = lo, hi
        else:
            m = self.momentum
            self.min_val = (1.0 - m) * self.min_val + m * lo
            self.max_val = (1.0 - m) * self.max_val + m * hi

    @property
    def initialized(self) -> bool:
        return self.min_val is not None

    def range(self) -> tuple[float, float]:
        """The current (min, max) estimate; (0, 1) before observation."""
        if self.min_val is None or self.max_val is None:
            return 0.0, 1.0
        return self.min_val, self.max_val
