"""Model parameter (de)serialization via npz archives.

Saves every :class:`~repro.nn.layers.Parameter` plus BatchNorm running
statistics, keyed by position, so an identically constructed architecture
can be restored exactly.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.layers import BatchNorm1d, Module


def _child_modules(module: Module):
    """Direct child modules, in attribute-insertion order.

    Covers any container shape — ``Sequential`` (whose layer list is an
    instance attribute), custom modules holding sub-modules as attributes,
    and modules holding lists/tuples of sub-modules — so architectures
    that are not plain ``Sequential`` stacks serialize correctly.
    """
    for value in vars(module).values():
        if isinstance(value, Module):
            yield value
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Module):
                    yield item


def _walk_batchnorms(model: Module) -> list[BatchNorm1d]:
    out: list[BatchNorm1d] = []
    if isinstance(model, BatchNorm1d):
        out.append(model)
    for child in _child_modules(model):
        out.extend(_walk_batchnorms(child))
    return out


def save_model_params(model: Module, path: str | Path) -> None:
    """Save parameters and BatchNorm running stats to an ``.npz`` file."""
    arrays: dict[str, np.ndarray] = {}
    for i, p in enumerate(model.parameters()):
        arrays[f"param_{i}"] = p.value
    for i, bn in enumerate(_walk_batchnorms(model)):
        arrays[f"bn_{i}_mean"] = bn.running_mean
        arrays[f"bn_{i}_var"] = bn.running_var
    np.savez(Path(path), **arrays)


def load_model_params(model: Module, path: str | Path) -> Module:
    """Load parameters saved by :func:`save_model_params` into ``model``.

    The model must have the same architecture (parameter count and
    shapes) as the one that was saved.

    Raises:
        ValueError: On any count or shape mismatch.
    """
    with np.load(Path(path)) as data:
        params = model.parameters()
        n_saved = sum(1 for k in data.files if k.startswith("param_"))
        if n_saved != len(params):
            raise ValueError(
                f"parameter count mismatch: file has {n_saved}, model has "
                f"{len(params)}"
            )
        for i, p in enumerate(params):
            saved = data[f"param_{i}"]
            if saved.shape != p.value.shape:
                raise ValueError(
                    f"shape mismatch at param {i}: {saved.shape} vs "
                    f"{p.value.shape}"
                )
            p.value[...] = saved
        bns = _walk_batchnorms(model)
        n_bn = sum(1 for k in data.files if k.endswith("_mean"))
        if n_bn != len(bns):
            raise ValueError(
                f"batchnorm count mismatch: file has {n_bn}, model has {len(bns)}"
            )
        for i, bn in enumerate(bns):
            for key, target in (("mean", bn.running_mean),
                                ("var", bn.running_var)):
                saved = data[f"bn_{i}_{key}"]
                if saved.shape != target.shape:
                    # Without this check a mismatched width either
                    # broadcasts silently or fails with a bare numpy error.
                    raise ValueError(
                        f"shape mismatch at batchnorm {i} running_{key}: "
                        f"{saved.shape} vs {target.shape}"
                    )
                target[...] = saved
    return model
