"""Neural-network layers with manual backpropagation.

Every layer implements ``forward`` (caching what backward needs) and
``backward`` (returning the gradient w.r.t. its input and accumulating
parameter gradients).  Shapes are ``(batch, features)`` throughout.
"""

from __future__ import annotations

import numpy as np

from repro.rng import require_rng


class Parameter:
    """A trainable tensor with its gradient accumulator.

    Attributes:
        value: The parameter array (mutated in place by optimizers).
        grad: Accumulated gradient, same shape.
        name: Diagnostic label.
    """

    def __init__(self, value: np.ndarray, name: str = "") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    def zero_grad(self) -> None:
        """Reset the gradient accumulator to zero."""
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter({self.name or 'unnamed'}, shape={self.value.shape})"


class Module:
    """Base class: a differentiable computation node."""

    training: bool = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output for ``x``, caching backward state."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients; return the input gradient."""
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        """All trainable parameters (depth-first for containers)."""
        return []

    def train(self) -> "Module":
        """Switch to training mode (affects BatchNorm/Dropout)."""
        self.training = True
        return self

    def eval(self) -> "Module":
        """Switch to inference mode."""
        self.training = False
        return self

    def zero_grad(self) -> None:
        """Reset every parameter's gradient accumulator."""
        for p in self.parameters():
            p.zero_grad()

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Linear(Module):
    """Fully-connected layer ``y = x W + b``.

    Weights use He initialization (appropriate for the ReLU blocks of the
    paper's architecture).

    Args:
        in_features: Input width.
        out_features: Output width.
        rng: Generator for weight init.  Omitting it emits a
            :class:`repro.rng.MissingRngWarning` and falls back to a
            fixed-seed generator (deterministic, but unthreaded).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("layer widths must be positive")
        rng = require_rng(rng, "nn.Linear")
        scale = np.sqrt(2.0 / in_features)
        self.weight = Parameter(
            rng.normal(0.0, scale, size=(in_features, out_features)), "weight"
        )
        self.bias = Parameter(np.zeros(out_features), "bias")
        self._x: np.ndarray | None = None

    @property
    def in_features(self) -> int:
        return self.weight.value.shape[0]

    @property
    def out_features(self) -> int:
        return self.weight.value.shape[1]

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += self._x.T @ grad_out
        self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.value.T

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]


class BatchNorm1d(Module):
    """Batch normalization over the feature axis.

    Training mode normalizes with batch statistics and updates running
    estimates; eval mode uses the running estimates — matching PyTorch's
    semantics, which the paper's models rely on.

    Args:
        num_features: Feature width.
        momentum: Running-statistics update rate.
        eps: Variance floor.
    """

    def __init__(
        self, num_features: int, momentum: float = 0.1, eps: float = 1e-5
    ) -> None:
        self.gamma = Parameter(np.ones(num_features), "gamma")
        self.beta = Parameter(np.zeros(num_features), "beta")
        self.momentum = momentum
        self.eps = eps
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple | None = None

    @property
    def num_features(self) -> int:
        return self.gamma.value.shape[0]

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            n = x.shape[0]
            self.running_mean = (
                (1.0 - self.momentum) * self.running_mean + self.momentum * mean
            )
            # PyTorch uses the unbiased variance for the running estimate.
            unbiased = var * (n / max(n - 1, 1))
            self.running_var = (
                (1.0 - self.momentum) * self.running_var + self.momentum * unbiased
            )
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std)
        return self.gamma.value * x_hat + self.beta.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std = self._cache
        self.gamma.grad += (grad_out * x_hat).sum(axis=0)
        self.beta.grad += grad_out.sum(axis=0)
        if not self.training:
            return grad_out * self.gamma.value * inv_std
        n = grad_out.shape[0]
        g = grad_out * self.gamma.value
        # Standard batch-norm backward through batch statistics.
        return (
            inv_std
            / n
            * (n * g - g.sum(axis=0) - x_hat * (g * x_hat).sum(axis=0))
        )

    def parameters(self) -> list[Parameter]:
        return [self.gamma, self.beta]


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._mask


class Sigmoid(Module):
    """Logistic sigmoid (numerically stable in both tails)."""

    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        y = np.empty_like(x)
        pos = x >= 0
        y[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        y[~pos] = ex / (1.0 + ex)
        self._y = y
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._y * (1.0 - self._y)


class Dropout(Module):
    """Inverted dropout (identity in eval mode).

    The generator is acquired *lazily*, on the first training-mode
    forward: an eval-only Dropout (e.g. inside a deserialized inference
    model) never mints a fallback generator, never warns about a missing
    one, and never consumes a draw — so eval-mode outputs and ambient
    RNG state cannot depend on whether the layer ran eagerly or was
    elided by a compiled inference plan.
    """

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None) -> None:
        if not (0.0 <= p < 1.0):
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng
        self._mask: np.ndarray | None = None

    @property
    def rng(self) -> np.random.Generator:
        """The dropout generator (minted on first training-mode use)."""
        if self._rng is None:
            self._rng = require_rng(None, "nn.Dropout")
        return self._rng

    @rng.setter
    def rng(self, value: np.random.Generator | None) -> None:
        self._rng = value

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        self._mask = (self.rng.uniform(size=x.shape) >= self.p) / (1.0 - self.p)
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class Identity(Module):
    """No-op module (useful as a fused-layer placeholder)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        self.modules = list(modules)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for m in self.modules:
            x = m.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for m in reversed(self.modules):
            grad_out = m.backward(grad_out)
        return grad_out

    def parameters(self) -> list[Parameter]:
        out: list[Parameter] = []
        for m in self.modules:
            out.extend(m.parameters())
        return out

    def train(self) -> "Sequential":
        self.training = True
        for m in self.modules:
            m.train()
        return self

    def eval(self) -> "Sequential":
        self.training = False
        for m in self.modules:
            m.eval()
        return self

    def __iter__(self):
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)

    def __getitem__(self, i: int) -> Module:
        return self.modules[i]
