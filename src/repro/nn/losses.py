"""Loss functions: value + gradient w.r.t. predictions.

The paper trains the background network with binary cross-entropy and the
dEta network with an L2 (mean-squared-error) loss.
"""

from __future__ import annotations

import numpy as np


class Loss:
    """Base class: ``__call__`` returns (scalar loss, gradient)."""

    def __call__(
        self, prediction: np.ndarray, target: np.ndarray
    ) -> tuple[float, np.ndarray]:
        raise NotImplementedError


class MSELoss(Loss):
    """Mean squared error, averaged over all elements."""

    def __call__(
        self, prediction: np.ndarray, target: np.ndarray
    ) -> tuple[float, np.ndarray]:
        prediction = np.asarray(prediction, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if prediction.shape != target.shape:
            raise ValueError(
                f"shape mismatch: {prediction.shape} vs {target.shape}"
            )
        diff = prediction - target
        n = diff.size
        return float(np.mean(diff**2)), (2.0 / n) * diff


class L1Loss(Loss):
    """Mean absolute error (subgradient 0 at exact zeros)."""

    def __call__(
        self, prediction: np.ndarray, target: np.ndarray
    ) -> tuple[float, np.ndarray]:
        prediction = np.asarray(prediction, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if prediction.shape != target.shape:
            raise ValueError(
                f"shape mismatch: {prediction.shape} vs {target.shape}"
            )
        diff = prediction - target
        n = diff.size
        return float(np.mean(np.abs(diff))), np.sign(diff) / n


class HuberLoss(Loss):
    """Huber loss: quadratic near zero, linear beyond ``delta``.

    More outlier-tolerant than L2 for the dEta regression, whose targets
    have heavy tails.

    Args:
        delta: Quadratic-to-linear transition point.
    """

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta

    def __call__(
        self, prediction: np.ndarray, target: np.ndarray
    ) -> tuple[float, np.ndarray]:
        prediction = np.asarray(prediction, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if prediction.shape != target.shape:
            raise ValueError(
                f"shape mismatch: {prediction.shape} vs {target.shape}"
            )
        diff = prediction - target
        n = diff.size
        abs_d = np.abs(diff)
        quad = abs_d <= self.delta
        loss_terms = np.where(
            quad, 0.5 * diff**2, self.delta * (abs_d - 0.5 * self.delta)
        )
        grad = np.where(quad, diff, self.delta * np.sign(diff)) / n
        return float(np.mean(loss_terms)), grad


class BCEWithLogitsLoss(Loss):
    """Binary cross-entropy on raw logits (numerically stable).

    ``loss = mean( max(z,0) - z*y + log(1 + exp(-|z|)) )`` with gradient
    ``(sigmoid(z) - y)/n``.  Optional per-class weighting compensates for
    label imbalance (the retained rings split ~60/40 GRB/background).

    Args:
        pos_weight: Multiplier applied to positive-class terms.
    """

    def __init__(self, pos_weight: float = 1.0) -> None:
        if pos_weight <= 0:
            raise ValueError("pos_weight must be positive")
        self.pos_weight = pos_weight

    def __call__(
        self, prediction: np.ndarray, target: np.ndarray
    ) -> tuple[float, np.ndarray]:
        z = np.asarray(prediction, dtype=np.float64)
        y = np.asarray(target, dtype=np.float64)
        if z.shape != y.shape:
            raise ValueError(f"shape mismatch: {z.shape} vs {y.shape}")
        n = z.size
        w = 1.0 + (self.pos_weight - 1.0) * y
        loss_terms = np.maximum(z, 0.0) - z * y + np.log1p(np.exp(-np.abs(z)))
        # Stable sigmoid.
        sig = np.empty_like(z)
        pos = z >= 0
        sig[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        sig[~pos] = ez / (1.0 + ez)
        grad = w * (sig - y) / n
        return float(np.mean(w * loss_terms)), grad
