"""A from-scratch NumPy neural-network framework.

Implements exactly what the paper's models need — Linear, BatchNorm1d,
ReLU, Sigmoid blocks with manual backprop, SGD, binary cross-entropy and
L2 losses, mini-batch training with early stopping — replacing PyTorch in
this dependency-free reproduction.  Forward and backward passes are
vectorized over the batch; no per-sample Python loops.
"""

from repro.nn.layers import (
    BatchNorm1d,
    Dropout,
    Identity,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
)
from repro.nn.losses import BCEWithLogitsLoss, HuberLoss, L1Loss, Loss, MSELoss
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.schedulers import (
    CosineAnnealingLR,
    LRScheduler,
    StepLR,
    clip_gradients,
)
from repro.nn.data import StandardScaler, batch_iterator, train_val_test_split
from repro.nn.train import Trainer, TrainingHistory
from repro.nn.metrics import (
    binary_accuracy,
    confusion_counts,
    r2_score,
    roc_auc,
)
from repro.nn.serialize import load_model_params, save_model_params

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "BatchNorm1d",
    "ReLU",
    "Sigmoid",
    "Dropout",
    "Identity",
    "Sequential",
    "Loss",
    "BCEWithLogitsLoss",
    "MSELoss",
    "L1Loss",
    "HuberLoss",
    "Optimizer",
    "SGD",
    "Adam",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "clip_gradients",
    "StandardScaler",
    "batch_iterator",
    "train_val_test_split",
    "Trainer",
    "TrainingHistory",
    "binary_accuracy",
    "roc_auc",
    "confusion_counts",
    "r2_score",
    "save_model_params",
    "load_model_params",
]
