"""Learning-rate schedulers.

Operate directly on ``optimizer.lr``; call :meth:`step` once per epoch
(the :class:`~repro.nn.train.Trainer` does this when given a scheduler).
"""

from __future__ import annotations

import numpy as np

from repro.nn.optim import Optimizer


class LRScheduler:
    """Base class: mutates the optimizer's learning rate per epoch."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update ``optimizer.lr``."""
        self.epoch += 1
        self.optimizer.lr = self.lr_at(self.epoch)

    def lr_at(self, epoch: int) -> float:
        """Learning rate the schedule prescribes at a given epoch."""
        raise NotImplementedError


class StepLR(LRScheduler):
    """Decay the learning rate by ``gamma`` every ``step_size`` epochs.

    Args:
        optimizer: Target optimizer.
        step_size: Epochs between decays.
        gamma: Multiplicative decay factor.
    """

    def __init__(
        self, optimizer: Optimizer, step_size: int, gamma: float = 0.1
    ) -> None:
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        if not (0.0 < gamma <= 1.0):
            raise ValueError("gamma must be in (0, 1]")
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base rate to ``eta_min`` over ``t_max`` epochs.

    Args:
        optimizer: Target optimizer.
        t_max: Epochs over which to anneal (held at ``eta_min`` after).
        eta_min: Final learning rate.
    """

    def __init__(
        self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0
    ) -> None:
        if t_max < 1:
            raise ValueError("t_max must be >= 1")
        if eta_min < 0:
            raise ValueError("eta_min must be non-negative")
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min = eta_min

    def lr_at(self, epoch: int) -> float:
        t = min(epoch, self.t_max)
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + np.cos(np.pi * t / self.t_max)
        )


def clip_gradients(parameters, max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Args:
        parameters: Iterable of :class:`~repro.nn.layers.Parameter`.
        max_norm: Norm ceiling.

    Returns:
        The pre-clipping global norm.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    params = list(parameters)
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))  # reprolint: disable=NUM001 -- sum of squared norms, nonnegative by construction
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total
