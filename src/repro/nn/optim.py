"""Optimizers operating in place on :class:`~repro.nn.layers.Parameter` lists.

The paper trains with SGD; Adam is provided for the hyperparameter-search
harness and ablations.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter


class Optimizer:
    """Base optimizer."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not params:
            raise ValueError("no parameters to optimize")
        self.params = params
        self.lr = lr

    def step(self) -> None:
        """Apply one update to every parameter from its current gradient."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Reset every managed parameter's gradient accumulator."""
        for p in self.params:
            p.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay.

    Args:
        params: Parameters to update.
        lr: Learning rate.
        momentum: Classical momentum coefficient (0 disables).
        weight_decay: L2 penalty coefficient applied to the gradient.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not (0.0 <= momentum < 1.0):
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.value
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.value -= self.lr * g


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba 2015).

    Args:
        params: Parameters to update.
        lr: Learning rate.
        betas: Exponential decay rates for the moment estimates.
        eps: Denominator floor.
        weight_decay: L2 penalty coefficient.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in params]
        self._v = [np.zeros_like(p.value) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1c = 1.0 - self.beta1**self._t
        b2c = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.value
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g**2
            p.value -= self.lr * (m / b1c) / (np.sqrt(v / b2c) + self.eps)  # reprolint: disable=NUM001 -- v is an EWMA of g**2, nonnegative by construction
