"""Data utilities: splits, batching, feature standardization.

The paper uses an 80/20 train/test split with the training set further
split 80/20 into train/validation; :func:`train_val_test_split` reproduces
that protocol.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np


def train_val_test_split(
    n: int,
    rng: np.random.Generator,
    test_fraction: float = 0.2,
    val_fraction: float = 0.2,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled index split following the paper's 80/20 + 80/20 protocol.

    Args:
        n: Number of samples.
        rng: Random generator.
        test_fraction: Fraction held out for testing.
        val_fraction: Fraction *of the remaining training pool* held out
            for validation.

    Returns:
        ``(train_idx, val_idx, test_idx)`` index arrays (disjoint, covering
        ``range(n)``).
    """
    if n < 3:
        raise ValueError("need at least 3 samples to split")
    if not (0.0 < test_fraction < 1.0) or not (0.0 < val_fraction < 1.0):
        raise ValueError("fractions must be in (0, 1)")
    perm = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test = perm[:n_test]
    pool = perm[n_test:]
    n_val = max(1, int(round(pool.size * val_fraction)))
    val = pool[:n_val]
    train = pool[n_val:]
    if train.size == 0:
        raise ValueError("split left no training samples")
    return train, val, test


def batch_iterator(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    rng: np.random.Generator,
    shuffle: bool = True,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield mini-batches; the final partial batch is included.

    Args:
        x: ``(n, d)`` inputs.
        y: ``(n, ...)`` targets.
        batch_size: Batch size.
        rng: Generator for shuffling.
        shuffle: Randomize order each pass.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    n = x.shape[0]
    order = rng.permutation(n) if shuffle else np.arange(n)
    for start in range(0, n, batch_size):
        sel = order[start : start + batch_size]
        yield x[sel], y[sel]


@dataclass
class StandardScaler:
    """Feature standardization to zero mean / unit variance.

    Zero-variance features are passed through unscaled (scale 1), so
    constant inputs (e.g. a fixed polar-angle column in a single-angle
    dataset) do not produce NaNs.

    Attributes:
        mean_: Per-feature means (set by :meth:`fit`).
        scale_: Per-feature standard deviations.
    """

    mean_: np.ndarray | None = field(default=None)
    scale_: np.ndarray | None = field(default=None)

    def fit(self, x: np.ndarray) -> "StandardScaler":
        """Estimate per-feature mean and scale from ``x``."""
        x = np.asarray(x, dtype=np.float64)
        self.mean_ = x.mean(axis=0)
        scale = x.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Standardize ``x`` with the fitted statistics."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler is not fitted")
        return (np.asarray(x, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit on ``x`` and return its standardized form."""
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        """Undo :meth:`transform` (standardized -> original units)."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler is not fitted")
        return np.asarray(x, dtype=np.float64) * self.scale_ + self.mean_
