"""Training loop with early stopping.

Mirrors the paper's protocol: mini-batch SGD for up to ``max_epochs``
(120 in the paper) with early stopping when validation loss stops
improving; the best-validation parameters are restored at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.data import batch_iterator
from repro.nn.layers import Module
from repro.nn.losses import Loss
from repro.nn.optim import Optimizer
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


@dataclass
class TrainingHistory:
    """Per-epoch record of a training run.

    Attributes:
        train_loss: Mean training loss per epoch.
        val_loss: Validation loss per epoch.
        best_epoch: Epoch index (0-based) of the best validation loss.
        stopped_early: Whether patience expired before ``max_epochs``.
    """

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    best_epoch: int = -1
    stopped_early: bool = False

    @property
    def num_epochs(self) -> int:
        return len(self.train_loss)


@dataclass
class Trainer:
    """Mini-batch trainer with validation-based early stopping.

    Attributes:
        model: The network to train.
        loss: Loss function.
        optimizer: Parameter updater (built over ``model.parameters()``).
        batch_size: Mini-batch size.
        max_epochs: Epoch cap (paper: 120).
        patience: Early-stopping patience in epochs without improvement.
        min_delta: Minimum validation-loss improvement that resets patience.
    """

    model: Module
    loss: Loss
    optimizer: Optimizer
    batch_size: int = 256
    max_epochs: int = 120
    patience: int = 10
    min_delta: float = 1e-5
    #: Optional per-epoch learning-rate scheduler (stepped after each epoch).
    scheduler: "object | None" = None
    #: Optional global gradient-norm ceiling (None disables clipping).
    grad_clip_norm: float | None = None
    #: Optional hook called after every epoch as
    #: ``epoch_hook(epoch, train_loss, val_loss)`` — e.g. for live
    #: progress reporting; exceptions propagate (a broken hook should not
    #: silently corrupt a training run).
    epoch_hook: "object | None" = None

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Loss on a dataset in eval mode (no parameter updates)."""
        was_training = self.model.training
        self.model.eval()
        value, _ = self.loss(self.model.forward(x), y)
        if was_training:
            self.model.train()
        return value

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_val: np.ndarray,
        y_val: np.ndarray,
        rng: np.random.Generator,
    ) -> TrainingHistory:
        """Train until early stopping or the epoch cap.

        Args:
            x_train: ``(n, d)`` training inputs.
            y_train: Training targets (shape must match model output).
            x_val: Validation inputs.
            y_val: Validation targets.
            rng: Generator for batch shuffling.

        Returns:
            The :class:`TrainingHistory`; the model is left holding the
            parameters of the best validation epoch.
        """
        history = TrainingHistory()
        best_val = np.inf
        best_params: list[np.ndarray] | None = None
        stale = 0

        self.model.train()
        fit_span = obs_trace.span("nn.fit")
        with fit_span:
            for epoch in range(self.max_epochs):
                with obs_trace.span("nn.epoch"):
                    epoch_losses = []
                    for xb, yb in batch_iterator(
                        x_train, y_train, self.batch_size, rng
                    ):
                        self.optimizer.zero_grad()
                        pred = self.model.forward(xb)
                        value, grad = self.loss(pred, yb)
                        self.model.backward(grad)
                        if self.grad_clip_norm is not None:
                            from repro.nn.schedulers import clip_gradients

                            clip_gradients(
                                self.model.parameters(), self.grad_clip_norm
                            )
                        self.optimizer.step()
                        epoch_losses.append(value)
                    history.train_loss.append(float(np.mean(epoch_losses)))
                    if self.scheduler is not None:
                        self.scheduler.step()

                    val = self.evaluate(x_val, y_val)
                    history.val_loss.append(val)
                obs_metrics.inc("nn.epochs")
                obs_metrics.set_gauge("nn.epoch_loss", history.train_loss[-1])
                obs_metrics.set_gauge("nn.val_loss", val)
                if self.epoch_hook is not None:
                    self.epoch_hook(epoch, history.train_loss[-1], val)
                if val < best_val - self.min_delta:
                    best_val = val
                    history.best_epoch = epoch
                    best_params = [
                        p.value.copy() for p in self.model.parameters()
                    ]
                    stale = 0
                else:
                    stale += 1
                    if stale >= self.patience:
                        history.stopped_early = True
                        break

        if best_params is not None:
            for p, saved in zip(self.model.parameters(), best_params):
                p.value[...] = saved
        self.model.eval()
        return history
