"""Evaluation metrics for the classifier and regressor."""

from __future__ import annotations

import numpy as np


def binary_accuracy(
    probabilities: np.ndarray, labels: np.ndarray, threshold: float = 0.5
) -> float:
    """Fraction of correct thresholded predictions."""
    probabilities = np.asarray(probabilities, dtype=np.float64).ravel()
    labels = np.asarray(labels).ravel()
    if probabilities.shape != labels.shape:
        raise ValueError("shape mismatch")
    if probabilities.size == 0:
        raise ValueError("empty inputs")
    return float(((probabilities >= threshold) == (labels > 0.5)).mean())


def confusion_counts(
    probabilities: np.ndarray, labels: np.ndarray, threshold: float = 0.5
) -> dict[str, int]:
    """True/false positive/negative counts at a threshold."""
    probabilities = np.asarray(probabilities, dtype=np.float64).ravel()
    labels = np.asarray(labels).ravel() > 0.5
    pred = probabilities >= threshold
    return {
        "tp": int(np.sum(pred & labels)),
        "fp": int(np.sum(pred & ~labels)),
        "tn": int(np.sum(~pred & ~labels)),
        "fn": int(np.sum(~pred & labels)),
    }


def roc_auc(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) identity.

    Handles ties by midranking.  Requires both classes present.
    """
    p = np.asarray(probabilities, dtype=np.float64).ravel()
    y = np.asarray(labels).ravel() > 0.5
    n_pos = int(y.sum())
    n_neg = int(y.size - n_pos)
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc requires both classes")
    order = np.argsort(p, kind="mergesort")
    ranks = np.empty(p.size, dtype=np.float64)
    sorted_p = p[order]
    # Midranks for ties.
    i = 0
    while i < p.size:
        j = i
        while j + 1 < p.size and sorted_p[j + 1] == sorted_p[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum_pos = ranks[y].sum()
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def r2_score(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Coefficient of determination."""
    predictions = np.asarray(predictions, dtype=np.float64).ravel()
    targets = np.asarray(targets, dtype=np.float64).ravel()
    if predictions.shape != targets.shape:
        raise ValueError("shape mismatch")
    ss_res = np.sum((targets - predictions) ** 2)
    ss_tot = np.sum((targets - targets.mean()) ** 2)
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return float(1.0 - ss_res / ss_tot)
