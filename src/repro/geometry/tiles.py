"""Slab-stack geometry for the ADAPT scintillating-tile detector.

The detector is a stack of horizontal scintillator slabs (``Layer``)
separated by gaps.  Photon transport (``repro.physics.transport``) needs
fast, vectorized answers to two questions:

1. Given a point and a direction, which slab boundary is crossed next and at
   what path length? (``DetectorGeometry.next_boundary``)
2. Is a point inside active scintillator? (``DetectorGeometry.layer_index``)

The stack is axis-aligned: layers are normal to z, with the top layer first.
Coordinates are in cm; the detector is centered on the z axis with its top
face at ``z = 0`` and extends downward (negative z), matching the convention
that a normally-incident GRB photon travels in direction ``(0, 0, -1)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import constants
from repro.constants import Material


@dataclass(frozen=True)
class Layer:
    """One scintillator slab.

    Attributes:
        z_top: z coordinate of the upper face (cm).
        z_bottom: z coordinate of the lower face (cm); ``z_bottom < z_top``.
        half_size: Half of the lateral extent in x and y (cm).
        material: Scintillator material of the slab.
    """

    z_top: float
    z_bottom: float
    half_size: float
    material: Material

    @property
    def thickness(self) -> float:
        """Slab thickness in cm."""
        return self.z_top - self.z_bottom

    def contains_z(self, z: np.ndarray) -> np.ndarray:
        """Vectorized test whether a z coordinate lies inside the slab."""
        return (z <= self.z_top) & (z >= self.z_bottom)


@dataclass(frozen=True)
class DetectorGeometry:
    """The full stack of layers plus derived lookup arrays.

    Use :func:`adapt_geometry` to build the default ADAPT configuration.
    """

    layers: tuple[Layer, ...]
    #: Sorted array of every slab face z coordinate, descending.
    _z_faces: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        faces = []
        for layer in self.layers:
            faces.append(layer.z_top)
            faces.append(layer.z_bottom)
        object.__setattr__(
            self, "_z_faces", np.asarray(sorted(faces, reverse=True), dtype=np.float64)
        )

    # -- basic extents -------------------------------------------------------

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def half_size(self) -> float:
        """Lateral half-extent of the widest layer (cm)."""
        return max(layer.half_size for layer in self.layers)

    @property
    def z_top(self) -> float:
        """Top face of the uppermost layer (cm)."""
        return self.layers[0].z_top

    @property
    def z_bottom(self) -> float:
        """Bottom face of the lowest layer (cm)."""
        return self.layers[-1].z_bottom

    @property
    def height(self) -> float:
        """Total stack height including gaps (cm)."""
        return self.z_top - self.z_bottom

    # -- queries ---------------------------------------------------------------

    def layer_index(self, points: np.ndarray) -> np.ndarray:
        """Map points to layer indices.

        Args:
            points: ``(n, 3)`` array of positions in cm.

        Returns:
            ``(n,)`` int array; the index of the layer containing each point,
            or ``-1`` for points in a gap or outside the detector.
        """
        points = np.atleast_2d(points)
        idx = np.full(points.shape[0], -1, dtype=np.int64)
        x, y, z = points[:, 0], points[:, 1], points[:, 2]
        for i, layer in enumerate(self.layers):
            inside = (
                layer.contains_z(z)
                & (np.abs(x) <= layer.half_size)
                & (np.abs(y) <= layer.half_size)
            )
            idx[inside] = i
        return idx

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Vectorized test whether points lie inside active scintillator."""
        return self.layer_index(points) >= 0

    def path_length_in_layers(
        self, origin: np.ndarray, direction: np.ndarray, n_steps: int = 512
    ) -> float:
        """Total scintillator path length along a ray (numerical, for tests).

        Integrates layer membership along the ray from ``origin`` until it
        exits the bounding box.  Used as a slow reference implementation to
        validate the analytic transport stepping.
        """
        origin = np.asarray(origin, dtype=np.float64)
        direction = np.asarray(direction, dtype=np.float64)
        direction = direction / np.linalg.norm(direction)
        # Length of the ray segment within the detector bounding box.
        span = self.height + 2.0 * self.half_size
        ts = np.linspace(0.0, 2.0 * span, n_steps)
        pts = origin[None, :] + ts[:, None] * direction[None, :]
        inside = self.contains(pts)
        dt = ts[1] - ts[0]
        return float(inside.sum() * dt)

    def segment_intersections(
        self, origins: np.ndarray, directions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Entry/exit path lengths of rays through each layer slab.

        For every ray and every layer, computes the parametric interval
        ``[t_in, t_out]`` (cm) over which the ray is inside that slab,
        intersected with the lateral extent.  Intervals are empty
        (``t_in >= t_out``) when the ray misses the slab.

        Args:
            origins: ``(n, 3)`` ray origins.
            directions: ``(n, 3)`` unit ray directions.

        Returns:
            Tuple ``(t_in, t_out)``, each ``(n, num_layers)``.
        """
        origins = np.atleast_2d(origins).astype(np.float64)
        directions = np.atleast_2d(directions).astype(np.float64)
        n = origins.shape[0]
        nl = self.num_layers
        t_in = np.full((n, nl), np.inf)
        t_out = np.full((n, nl), -np.inf)

        with np.errstate(divide="ignore", invalid="ignore"):
            for j, layer in enumerate(self.layers):
                lo = np.zeros(n)
                hi = np.full(n, np.inf)
                # z slab
                dz = directions[:, 2]
                oz = origins[:, 2]
                t1 = (layer.z_top - oz) / dz
                t2 = (layer.z_bottom - oz) / dz
                tz_lo = np.minimum(t1, t2)
                tz_hi = np.maximum(t1, t2)
                parallel = np.abs(dz) < 1e-300
                inside_z = layer.contains_z(oz)
                tz_lo = np.where(parallel, np.where(inside_z, 0.0, np.inf), tz_lo)
                tz_hi = np.where(parallel, np.where(inside_z, np.inf, -np.inf), tz_hi)
                lo = np.maximum(lo, tz_lo)
                hi = np.minimum(hi, tz_hi)
                # lateral slabs
                for axis in (0, 1):
                    d = directions[:, axis]
                    o = origins[:, axis]
                    t1 = (layer.half_size - o) / d
                    t2 = (-layer.half_size - o) / d
                    ta = np.minimum(t1, t2)
                    tb = np.maximum(t1, t2)
                    parallel = np.abs(d) < 1e-300
                    inside_a = np.abs(o) <= layer.half_size
                    ta = np.where(parallel, np.where(inside_a, 0.0, np.inf), ta)
                    tb = np.where(parallel, np.where(inside_a, np.inf, -np.inf), tb)
                    lo = np.maximum(lo, ta)
                    hi = np.minimum(hi, tb)
                t_in[:, j] = lo
                t_out[:, j] = hi
        return t_in, t_out


def adapt_geometry(
    num_layers: int = constants.ADAPT_NUM_LAYERS,
    tile_size_cm: float = constants.ADAPT_TILE_SIZE_CM,
    tile_thickness_cm: float = constants.ADAPT_TILE_THICKNESS_CM,
    layer_gap_cm: float = constants.ADAPT_LAYER_GAP_CM,
    material: Material = constants.CSI,
) -> DetectorGeometry:
    """Build the default ADAPT demonstrator geometry.

    Four CsI tile layers, 40 cm square, 1.5 cm thick, separated by 10 cm
    gaps, stacked downward from z = 0.
    """
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    if tile_thickness_cm <= 0 or tile_size_cm <= 0 or layer_gap_cm < 0:
        raise ValueError("tile dimensions must be positive and gap non-negative")
    layers = []
    z = 0.0
    for _ in range(num_layers):
        layers.append(
            Layer(
                z_top=z,
                z_bottom=z - tile_thickness_cm,
                half_size=tile_size_cm / 2.0,
                material=material,
            )
        )
        z -= tile_thickness_cm + layer_gap_cm
    return DetectorGeometry(layers=tuple(layers))


def apt_geometry(
    num_layers: int = constants.APT_NUM_LAYERS,
    tile_size_cm: float = constants.APT_TILE_SIZE_CM,
    tile_thickness_cm: float = constants.APT_TILE_THICKNESS_CM,
    layer_gap_cm: float = constants.APT_LAYER_GAP_CM,
    material: Material = constants.CSI,
) -> DetectorGeometry:
    """Build the full APT orbital-instrument geometry (paper Section VI).

    Twenty 1 m^2 CsI layers in a compact stack: ~25x the geometric area
    and ~5x the scintillator depth of the balloon demonstrator, which is
    what lets APT localize even dim (< 0.1 MeV/cm^2) bursts to within a
    degree.  At the Sun-Earth L2 orbit there is no atmospheric MeV
    background; pair this geometry with a strongly reduced
    :class:`~repro.sources.background.BackgroundModel` flux.
    """
    return adapt_geometry(
        num_layers=num_layers,
        tile_size_cm=tile_size_cm,
        tile_thickness_cm=tile_thickness_cm,
        layer_gap_cm=layer_gap_cm,
        material=material,
    )
