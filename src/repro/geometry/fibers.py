"""WLS fiber readout grids.

Each tile is lined with perpendicular arrays of wavelength-shifting fibers on
its top and bottom faces (paper Fig. 1).  The overlay of the two 1-D arrays
yields a 2-D position measurement quantized to the fiber pitch; the layer
index supplies z.  This module models that quantization and the associated
position uncertainty.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants


@dataclass(frozen=True)
class FiberGrid:
    """A square grid of orthogonal WLS fibers over one tile face.

    Attributes:
        pitch_cm: Fiber center-to-center spacing (cm); the lateral position
            quantum.
        half_size_cm: Half the lateral tile extent covered by fibers (cm).
    """

    pitch_cm: float = constants.ADAPT_FIBER_PITCH_CM
    half_size_cm: float = constants.ADAPT_TILE_SIZE_CM / 2.0

    def __post_init__(self) -> None:
        if self.pitch_cm <= 0:
            raise ValueError("fiber pitch must be positive")
        if self.half_size_cm <= 0:
            raise ValueError("half_size must be positive")

    @property
    def num_fibers(self) -> int:
        """Number of fibers spanning the tile in one direction."""
        return int(np.floor(2.0 * self.half_size_cm / self.pitch_cm))

    def fiber_index(self, coord: np.ndarray) -> np.ndarray:
        """Map a lateral coordinate to the index of the nearest fiber.

        Indices run 0..num_fibers-1; coordinates are clipped to the tile.
        """
        coord = np.asarray(coord, dtype=np.float64)
        clipped = np.clip(coord, -self.half_size_cm, self.half_size_cm)
        idx = np.floor((clipped + self.half_size_cm) / self.pitch_cm).astype(np.int64)
        return np.clip(idx, 0, self.num_fibers - 1)

    def fiber_center(self, index: np.ndarray) -> np.ndarray:
        """Lateral coordinate (cm) of a fiber center by index."""
        index = np.asarray(index)
        return -self.half_size_cm + (index + 0.5) * self.pitch_cm

    def quantize(self, coord: np.ndarray) -> np.ndarray:
        """Snap lateral coordinates to the nearest fiber center."""
        return self.fiber_center(self.fiber_index(coord))

    @property
    def position_sigma_cm(self) -> float:
        """RMS position error of uniform quantization: pitch / sqrt(12)."""
        return self.pitch_cm / np.sqrt(12.0)


def quantize_positions(
    positions: np.ndarray,
    grid: FiberGrid,
) -> np.ndarray:
    """Quantize the x and y components of hit positions to fiber centers.

    The z component is unchanged (it is set separately from the layer index
    and depth estimate by the detector response model).

    Args:
        positions: ``(n, 3)`` true interaction positions in cm.
        grid: Fiber grid shared by all layers.

    Returns:
        New ``(n, 3)`` array with quantized x, y.
    """
    positions = np.atleast_2d(np.asarray(positions, dtype=np.float64))
    out = positions.copy()
    out[:, 0] = grid.quantize(positions[:, 0])
    out[:, 1] = grid.quantize(positions[:, 1])
    return out
