"""Detector geometry: the ADAPT stack of scintillating tile layers.

The demonstrator's gamma-ray detector is modeled as ``num_layers``
horizontal slabs of scintillator (CsI tiles), each read out by orthogonal
wavelength-shifting (WLS) fiber arrays that quantize hit positions to the
fiber pitch in x and y (paper Fig. 1).
"""

from repro.geometry.tiles import DetectorGeometry, Layer, adapt_geometry, apt_geometry
from repro.geometry.fibers import FiberGrid, quantize_positions

__all__ = [
    "DetectorGeometry",
    "Layer",
    "adapt_geometry",
    "apt_geometry",
    "FiberGrid",
    "quantize_positions",
]
