"""Compton-ring construction.

A ring is the paper's per-photon source constraint (Fig. 2): the unit axis
``c`` through the first two hit positions, the scattering-angle cosine
``eta`` from the measured energies, and the Gaussian width ``d eta``.  The
source direction ``s`` satisfies ``c . s ~ eta``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detector.response import EventSet
from repro.physics.compton import cos_theta_from_energies
from repro.reconstruction.error_propagation import propagate_deta
from repro.reconstruction.ordering import OrderingResult, order_hits


@dataclass
class RingSet:
    """Structure-of-arrays collection of Compton rings.

    Attributes:
        axis: ``(m, 3)`` unit axes ``c`` (from second hit toward first,
            i.e. pointing back toward the sky).
        eta: ``(m,)`` scattering-angle cosines.
        deta: ``(m,)`` ring widths; initialized to the propagation-of-error
            estimate and later *overwritten* by the dEta network in the ML
            pipeline.
        event_index: ``(m,)`` owning event in the originating EventSet.
        first_hit: ``(m,)`` flat hit index of the first interaction.
        second_hit: ``(m,)`` flat hit index of the second interaction.
        ordering_score: ``(m,)`` ordering figure of merit (NaN for 2-hit).
        labels: ``(m,)`` truth label (LABEL_GRB / LABEL_BACKGROUND).
        ordering_correct: ``(m,)`` truth flag for correct hit ordering.
        source_direction: True GRB unit vector, or None.
    """

    axis: np.ndarray
    eta: np.ndarray
    deta: np.ndarray
    event_index: np.ndarray
    first_hit: np.ndarray
    second_hit: np.ndarray
    ordering_score: np.ndarray
    labels: np.ndarray
    ordering_correct: np.ndarray
    source_direction: np.ndarray | None = None

    @property
    def num_rings(self) -> int:
        return int(self.eta.shape[0])

    def select(self, mask: np.ndarray) -> "RingSet":
        """New RingSet restricted to rings where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        return RingSet(
            axis=self.axis[mask],
            eta=self.eta[mask],
            deta=self.deta[mask],
            event_index=self.event_index[mask],
            first_hit=self.first_hit[mask],
            second_hit=self.second_hit[mask],
            ordering_score=self.ordering_score[mask],
            labels=self.labels[mask],
            ordering_correct=self.ordering_correct[mask],
            source_direction=self.source_direction,
        )

    def with_deta(self, deta: np.ndarray) -> "RingSet":
        """New RingSet with replaced ``d eta`` values (e.g. NN output)."""
        deta = np.asarray(deta, dtype=np.float64)
        if deta.shape != self.eta.shape:
            raise ValueError("deta shape mismatch")
        return RingSet(
            axis=self.axis,
            eta=self.eta,
            deta=deta,
            event_index=self.event_index,
            first_hit=self.first_hit,
            second_hit=self.second_hit,
            ordering_score=self.ordering_score,
            labels=self.labels,
            ordering_correct=self.ordering_correct,
            source_direction=self.source_direction,
        )

    def residuals(self, direction: np.ndarray) -> np.ndarray:
        """Ring residuals ``c . s - eta`` for a candidate source direction."""
        direction = np.asarray(direction, dtype=np.float64)
        return self.axis @ direction - self.eta

    def true_eta_errors(self) -> np.ndarray:
        """|true error in eta| for every ring, using the true source.

        For GRB rings this is ``|c . s_true - eta|`` — exactly the quantity
        the paper's "true d eta" oracle substitutes (Fig. 4, rightmost) and
        the dEta network's regression target.  Background rings have no
        source; they get the same formula (their residual w.r.t. the GRB
        direction), which is meaningful only for diagnostics.

        Raises:
            ValueError: If the ring set has no source direction.
        """
        if self.source_direction is None:
            raise ValueError("RingSet has no true source direction")
        return np.abs(self.residuals(self.source_direction))


def build_rings(
    events: EventSet,
    ordering: OrderingResult | None = None,
) -> RingSet:
    """Build Compton rings from digitized events.

    Events with fewer than two hits or with no kinematically valid ordering
    produce no ring.

    Args:
        events: Digitized events.
        ordering: Precomputed hit ordering; computed here if omitted.

    Returns:
        A :class:`RingSet` (one ring per reconstructable event).
    """
    if ordering is None:
        ordering = order_hits(events)

    keep = ordering.valid
    ev_idx = np.nonzero(keep)[0]
    first = ordering.first[keep]
    second = ordering.second[keep]

    r1 = events.positions[first]
    r2 = events.positions[second]
    axis = r1 - r2
    norms = np.linalg.norm(axis, axis=1, keepdims=True)
    degenerate = norms[:, 0] == 0.0
    norms[degenerate] = 1.0
    axis = axis / norms

    # Total measured energy per event (CSR segment sums).
    seg = np.repeat(
        np.arange(events.num_events), events.hits_per_event()
    )
    etot_all = np.zeros(events.num_events)
    np.add.at(etot_all, seg, events.energies)
    var_all = np.zeros(events.num_events)
    np.add.at(var_all, seg, events.sigma_energy**2)

    etot = etot_all[ev_idx]
    e1 = events.energies[first]
    eta = cos_theta_from_energies(etot, e1)

    deta = propagate_deta(
        total_energy=etot,
        first_energy=e1,
        sigma_total_sq=var_all[ev_idx],
        sigma_first=events.sigma_energy[first],
        axis=axis,
        eta=eta,
        pos_first=r1,
        pos_second=r2,
        sigma_pos_first=events.sigma_position[first],
        sigma_pos_second=events.sigma_position[second],
    )

    rings = RingSet(
        axis=axis,
        eta=eta,
        deta=deta,
        event_index=ev_idx,
        first_hit=first,
        second_hit=second,
        ordering_score=ordering.score[keep],
        labels=events.labels[ev_idx],
        ordering_correct=ordering.correct[keep],
        source_direction=events.source_direction,
    )
    # Drop degenerate (zero-lever-arm) rings outright.
    if np.any(degenerate):
        rings = rings.select(~degenerate)
    return rings
