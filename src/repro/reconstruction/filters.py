"""Reconstruction-quality filters.

The paper trains and evaluates only on rings "that the pre-localization
stages of the pipeline deemed correctly reconstructed".  These filters are
that gate: kinematic sanity, sufficient lever arm between the first two
hits, minimum total energy, and (for >=3-hit events) a bound on the
redundant-angle ordering score.  The thresholds are loose enough that a
population of mis-ordered / noisy rings survives — which is precisely the
population the neural networks are needed for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detector.response import EventSet
from repro.reconstruction.rings import RingSet


@dataclass(frozen=True)
class FilterConfig:
    """Quality-filter thresholds.

    Attributes:
        eta_margin: Require ``|eta| <= 1 - eta_margin`` (rings with
            near-degenerate cones carry no directional information).
        min_lever_arm_cm: Minimum distance between the first two hits.
        min_total_energy_mev: Minimum measured event energy.
        max_ordering_score: Maximum redundant-angle disagreement for
            >=3-hit events (2-hit events, scored NaN, always pass this).
        max_deta: Reject rings whose propagated width already exceeds this
            (they would only dilute localization).
    """

    eta_margin: float = 0.02
    min_lever_arm_cm: float = 3.0
    min_total_energy_mev: float = 0.10
    max_ordering_score: float = 0.25
    max_deta: float = 0.5


def quality_filter(
    rings: RingSet,
    events: EventSet,
    config: FilterConfig | None = None,
) -> np.ndarray:
    """Boolean mask of rings passing all quality gates.

    Args:
        rings: Candidate rings.
        events: The EventSet the rings were built from.
        config: Thresholds (defaults used if omitted).

    Returns:
        ``(num_rings,)`` boolean mask.
    """
    cfg = config or FilterConfig()
    eta_ok = np.abs(rings.eta) <= 1.0 - cfg.eta_margin
    lever = np.linalg.norm(
        events.positions[rings.first_hit] - events.positions[rings.second_hit],
        axis=1,
    )
    lever_ok = lever >= cfg.min_lever_arm_cm

    seg = np.repeat(np.arange(events.num_events), events.hits_per_event())
    etot = np.zeros(events.num_events)
    np.add.at(etot, seg, events.energies)
    energy_ok = etot[rings.event_index] >= cfg.min_total_energy_mev

    score = rings.ordering_score
    score_ok = np.isnan(score) | (score <= cfg.max_ordering_score)

    deta_ok = rings.deta <= cfg.max_deta
    return eta_ok & lever_ok & energy_ok & score_ok & deta_ok
