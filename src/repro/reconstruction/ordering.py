"""Compton hit ordering.

A gamma ray's hits arrive unordered from the detector; the ring's axis runs
through the *first two* interactions, so reconstruction must recover the
sequence.  Following the classic Compton-telescope approach (Boggs & Jean
2000, paper ref. [22]):

* **2-hit events** have no redundant constraint.  Each candidate order is
  tested for kinematic validity (the implied ``eta = cos theta`` must lie
  in [-1, 1]); if both survive, the order whose *first* deposit is smaller
  is preferred — in the MeV band the first Compton scatter typically
  deposits less than the terminal photoabsorption.  This heuristic is
  deliberately imperfect: mis-ordered events are one of the paper's two
  sources of rings whose true ``eta`` error exceeds the propagated
  estimate.
* **>=3-hit events** expose a redundant constraint: the scattering angle
  at the second hit is measured both geometrically (from the three
  positions) and kinematically (from the energies).  We score every
  ordered triple of distinct hits by the squared disagreement and keep the
  best; the ring is then built from that triple's first two hits.

All scoring is vectorized per multiplicity class — events of equal hit
count are stacked and all their candidate permutations evaluated in one
shot, per the hpc-parallel guides.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

import numpy as np

from repro.detector.response import EventSet
from repro.physics.compton import cos_theta_from_energies


@dataclass
class OrderingResult:
    """Chosen hit order for each event.

    Attributes:
        first: ``(n_events,)`` flat hit index (into the EventSet hit arrays)
            of the chosen first interaction.
        second: ``(n_events,)`` flat hit index of the chosen second
            interaction.
        score: ``(n_events,)`` ordering figure of merit (0 is perfect;
            2-hit events, having no redundancy, get NaN).
        valid: ``(n_events,)`` False where no kinematically valid ordering
            exists.
        correct: ``(n_events,)`` truth flag — True when the chosen first and
            second hits match the true interaction order.
    """

    first: np.ndarray
    second: np.ndarray
    score: np.ndarray
    valid: np.ndarray
    correct: np.ndarray


def _order_two_hit(
    events: EventSet, event_idx: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Order 2-hit events. Returns (first, second, valid) flat hit indices."""
    starts = events.event_offsets[event_idx]
    h0 = starts
    h1 = starts + 1
    e0 = events.energies[h0]
    e1 = events.energies[h1]
    etot = e0 + e1
    eta_01 = cos_theta_from_energies(etot, e0)  # hit0 first
    eta_10 = cos_theta_from_energies(etot, e1)  # hit1 first
    ok_01 = np.abs(eta_01) <= 1.0
    ok_10 = np.abs(eta_10) <= 1.0
    # Preference when both valid: smaller first deposit.
    prefer_01 = e0 <= e1
    use_01 = np.where(ok_01 & ok_10, prefer_01, ok_01)
    first = np.where(use_01, h0, h1)
    second = np.where(use_01, h1, h0)
    valid = ok_01 | ok_10
    return first, second, valid


def _order_multi_hit(
    events: EventSet, event_idx: np.ndarray, n_hits: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Order events with ``n_hits >= 3`` hits via the redundant-angle test.

    Returns (first, second, score, valid).
    """
    m = event_idx.shape[0]
    starts = events.event_offsets[event_idx]
    # (m, n_hits) flat hit indices.
    hit_idx = starts[:, None] + np.arange(n_hits)[None, :]
    e = events.energies[hit_idx]  # (m, n)
    pos = events.positions[hit_idx]  # (m, n, 3)
    etot = e.sum(axis=1)  # (m,)

    triples = np.array(list(permutations(range(n_hits), 3)), dtype=np.int64)
    t = triples.shape[0]
    i, j, k = triples[:, 0], triples[:, 1], triples[:, 2]

    e_i = e[:, i]  # (m, t)
    e_j = e[:, j]
    r_i = pos[:, i]  # (m, t, 3)
    r_j = pos[:, j]
    r_k = pos[:, k]

    # Geometric cos of the scatter at hit j.
    v1 = r_j - r_i
    v2 = r_k - r_j
    n1 = np.linalg.norm(v1, axis=2)
    n2 = np.linalg.norm(v2, axis=2)
    with np.errstate(invalid="ignore", divide="ignore"):
        cos_geo = np.einsum("mtx,mtx->mt", v1, v2) / (n1 * n2)

    # Kinematic cos at hit j: photon energy before j is etot - e_i,
    # after j is etot - e_i - e_j.
    before = etot[:, None] - e_i
    cos_kin = cos_theta_from_energies(before, e_j)

    # First-scatter validity: eta at hit i must be physical too.
    eta_first = cos_theta_from_energies(etot[:, None], e_i)

    score = (cos_geo - cos_kin) ** 2
    invalid = (
        ~np.isfinite(score)
        | (np.abs(cos_kin) > 1.0)
        | (np.abs(eta_first) > 1.0)
        | (n1 == 0)
        | (n2 == 0)
    )
    score = np.where(invalid, np.inf, score)

    best = np.argmin(score, axis=1)  # (m,)
    rows = np.arange(m)
    best_score = score[rows, best]
    valid = np.isfinite(best_score)
    first_local = i[best]
    second_local = j[best]
    first = hit_idx[rows, first_local]
    second = hit_idx[rows, second_local]
    return first, second, best_score, valid


def order_hits(events: EventSet) -> OrderingResult:
    """Choose the first and second interaction of every event.

    Events are processed in vectorized groups of equal multiplicity.

    Args:
        events: Digitized events (any multiplicity >= 1; single-hit events
            are marked invalid since no ring can be built).

    Returns:
        An :class:`OrderingResult` aligned with ``events`` (one entry per
        event).
    """
    n = events.num_events
    first = np.zeros(n, dtype=np.int64)
    second = np.zeros(n, dtype=np.int64)
    score = np.full(n, np.nan)
    valid = np.zeros(n, dtype=bool)

    counts = events.hits_per_event()
    for c in np.unique(counts):
        idx = np.nonzero(counts == c)[0]
        if c < 2:
            continue
        if c == 2:
            f, s, v = _order_two_hit(events, idx)
            first[idx], second[idx], valid[idx] = f, s, v
        else:
            f, s, sc, v = _order_multi_hit(events, idx, int(c))
            first[idx], second[idx], score[idx], valid[idx] = f, s, sc, v

    # Truth: chosen first/second match true interaction order 0 and 1.
    correct = np.zeros(n, dtype=bool)
    has2 = counts >= 2
    t_first = events.true_order[first]
    t_second = events.true_order[second]
    correct[has2] = (t_first[has2] == 0) & (t_second[has2] == 1)
    correct &= valid
    return OrderingResult(
        first=first, second=second, score=score, valid=valid, correct=correct
    )
