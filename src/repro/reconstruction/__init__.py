"""Event reconstruction: digitized events -> Compton rings.

Implements the pre-localization stages of the paper's pipeline: ordering
the hits of each event (Boggs--Jean style kinematic consistency), building
the Compton ring ``(c, eta, d eta)`` from the first two hits and the total
energy, estimating ``d eta`` by propagation of error from the nominal
detector uncertainties, and applying reconstruction-quality filters.
"""

from repro.reconstruction.ordering import OrderingResult, order_hits
from repro.reconstruction.rings import RingSet, build_rings
from repro.reconstruction.error_propagation import propagate_deta
from repro.reconstruction.filters import FilterConfig, quality_filter
from repro.reconstruction.escape import (
    EscapeEstimate,
    estimate_escape_energy,
    eta_with_escape_correction,
)

__all__ = [
    "order_hits",
    "OrderingResult",
    "RingSet",
    "build_rings",
    "propagate_deta",
    "quality_filter",
    "FilterConfig",
    "EscapeEstimate",
    "estimate_escape_energy",
    "eta_with_escape_correction",
]
