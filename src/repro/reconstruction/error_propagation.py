"""Propagation-of-error estimate of the ring-width ``d eta``.

Following prior work (Boggs & Jean 2000, paper ref. [22]), the uncertainty
of the scattering-angle cosine is propagated from the detector's *nominal*
per-hit uncertainties:

* **Energy term.**  With ``eta = 1 - m_e(1/E' - 1/E)``, ``E = sum_i E_i``
  and ``E' = E - E_1``:

  - ``d eta / d E_1 = -m_e / E^2``
  - ``d eta / d E_i = m_e / E'^2 - m_e / E^2`` for ``i != 1``

* **Spatial term.**  Position errors tilt the ring axis ``c`` by roughly
  ``delta ~ sigma_perp / L`` (``L`` the first-to-second hit distance);
  a tilt of the axis shifts ``c . s`` by up to ``sin(theta) * delta``, so
  ``d eta_spatial = sin(theta) * sqrt(sigma_perp1^2 + sigma_perp2^2) / L``.

This estimate is *deliberately incomplete* — identically to the paper, it
knows nothing about hit mis-ordering or the unmodeled detector noise, so a
subpopulation of rings has true ``eta`` errors far larger than ``d eta``.
Quantifying (and fixing) that failure is the dEta network's job.
"""

from __future__ import annotations

import numpy as np

from repro.constants import ELECTRON_MASS_MEV

_ME = ELECTRON_MASS_MEV

#: Lower bound applied to propagated d eta to avoid zero-width rings.
DETA_FLOOR: float = 1e-4


def propagate_deta(
    total_energy: np.ndarray,
    first_energy: np.ndarray,
    sigma_total_sq: np.ndarray,
    sigma_first: np.ndarray,
    axis: np.ndarray,
    eta: np.ndarray,
    pos_first: np.ndarray,
    pos_second: np.ndarray,
    sigma_pos_first: np.ndarray,
    sigma_pos_second: np.ndarray,
) -> np.ndarray:
    """Propagate nominal measurement errors into a ``d eta`` per ring.

    Args:
        total_energy: ``(m,)`` measured total event energies ``E``, MeV.
        first_energy: ``(m,)`` measured first-hit deposits ``E_1``, MeV.
        sigma_total_sq: ``(m,)`` summed variance of *all* the event's hit
            energies (the variance of ``E``), MeV^2.
        sigma_first: ``(m,)`` nominal sigma of ``E_1``, MeV.
        axis: ``(m, 3)`` unit ring axes ``c``.
        eta: ``(m,)`` scattering-angle cosines.
        pos_first: ``(m, 3)`` measured first-hit positions, cm.
        pos_second: ``(m, 3)`` measured second-hit positions, cm.
        sigma_pos_first: ``(m, 3)`` nominal position sigmas of hit 1, cm.
        sigma_pos_second: ``(m, 3)`` nominal position sigmas of hit 2, cm.

    Returns:
        ``(m,)`` propagated ``d eta`` (floored at :data:`DETA_FLOOR`).
    """
    total_energy = np.asarray(total_energy, dtype=np.float64)
    first_energy = np.asarray(first_energy, dtype=np.float64)
    scattered = total_energy - first_energy

    with np.errstate(divide="ignore", invalid="ignore"):
        # dE_1 appears only through E (it cancels in E' = E - E_1 since E'
        # is the sum of the other hits): d eta/d E_1 = -m_e/E^2.
        # The other hits appear in both E and E'.
        d_d1 = -_ME / total_energy**2
        d_other = _ME / scattered**2 - _ME / total_energy**2
        sigma_other_sq = np.maximum(sigma_total_sq - sigma_first**2, 0.0)
        var_energy = d_d1**2 * sigma_first**2 + d_other**2 * sigma_other_sq

        # Spatial term.
        lever = pos_first - pos_second
        dist = np.linalg.norm(lever, axis=1)
        sin_theta = np.sqrt(np.clip(1.0 - np.clip(eta, -1.0, 1.0) ** 2, 0.0, 1.0))
        # Variance perpendicular to the axis for each hit.
        perp1 = np.sum(sigma_pos_first**2 * (1.0 - axis**2), axis=1)
        perp2 = np.sum(sigma_pos_second**2 * (1.0 - axis**2), axis=1)
        var_spatial = sin_theta**2 * (perp1 + perp2) / dist**2

    deta = np.sqrt(np.maximum(var_energy + var_spatial, 0.0))
    deta = np.where(np.isfinite(deta), deta, 1.0)
    return np.maximum(deta, DETA_FLOOR)
