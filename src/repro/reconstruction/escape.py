"""Escape-energy recovery for incompletely absorbed photons.

When a photon Compton-scatters twice and then *leaves* the detector, the
summed deposits underestimate its energy and the ring's ``eta`` is
systematically wrong.  For events with three or more hits the classic
three-Compton technique (Boggs & Jean 2000, paper ref. [22]) recovers the
unmeasured energy: the scattering angle at the *second* hit is known
geometrically from the three positions, and the Compton formula then
fixes the photon energy after the second scatter:

``E_after = -E_2/2 + sqrt(E_2^2/4 + E_2 m_e / (1 - cos theta_2_geo))``

so the incident estimate is ``E = E_1 + E_2 + E_after`` regardless of how
much later energy escaped.  This module computes that estimate per event
and flags where it is applicable; experiments use it to quantify how much
ring quality improves (an ablation the paper's pipeline leaves on the
table).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import ELECTRON_MASS_MEV
from repro.detector.response import EventSet
from repro.reconstruction.ordering import OrderingResult, order_hits

_ME = ELECTRON_MASS_MEV


@dataclass
class EscapeEstimate:
    """Three-Compton incident-energy estimates.

    Attributes:
        energy: ``(n_events,)`` estimated incident energies, MeV (NaN
            where inapplicable).
        applicable: ``(n_events,)`` True for events with >= 3 hits, a
            valid ordering, and a physical geometric angle at hit 2.
        calorimetric: ``(n_events,)`` plain summed-deposit energies for
            comparison.
    """

    energy: np.ndarray
    applicable: np.ndarray
    calorimetric: np.ndarray


def estimate_escape_energy(
    events: EventSet,
    ordering: OrderingResult | None = None,
) -> EscapeEstimate:
    """Apply the three-Compton energy estimator to every eligible event.

    Args:
        events: Digitized events.
        ordering: Precomputed hit ordering (computed here if omitted).

    Returns:
        An :class:`EscapeEstimate` aligned with ``events``.
    """
    if ordering is None:
        ordering = order_hits(events)
    n = events.num_events
    counts = events.hits_per_event()

    seg = np.repeat(np.arange(n), counts)
    calorimetric = np.zeros(n)
    np.add.at(calorimetric, seg, events.energies)

    energy = np.full(n, np.nan)
    applicable = np.zeros(n, dtype=bool)

    eligible = (counts >= 3) & ordering.valid
    idx = np.nonzero(eligible)[0]
    if idx.size == 0:
        return EscapeEstimate(
            energy=energy, applicable=applicable, calorimetric=calorimetric
        )

    first = ordering.first[idx]
    second = ordering.second[idx]
    # Third hit: the highest-energy remaining hit is the best proxy for
    # the next interaction when the true order beyond hit 2 is unknown;
    # for 3-hit events it is simply the remaining hit.
    third = np.empty(idx.size, dtype=np.int64)
    for k, ev in enumerate(idx):
        sl = events.event_slice(int(ev))
        hits = np.arange(sl.start, sl.stop)
        rest = hits[(hits != first[k]) & (hits != second[k])]
        third[k] = rest[np.argmax(events.energies[rest])]

    r1 = events.positions[first]
    r2 = events.positions[second]
    r3 = events.positions[third]
    v1 = r2 - r1
    v2 = r3 - r2
    n1 = np.linalg.norm(v1, axis=1)
    n2 = np.linalg.norm(v2, axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        cos2 = np.einsum("ij,ij->i", v1, v2) / (n1 * n2)
    e1 = events.energies[first]
    e2 = events.energies[second]

    valid = (
        np.isfinite(cos2)
        & (cos2 < 1.0 - 1e-9)
        & (n1 > 0)
        & (n2 > 0)
        & (e2 > 0)
    )
    with np.errstate(invalid="ignore", divide="ignore"):
        e_after = -e2 / 2.0 + np.sqrt(
            e2**2 / 4.0 + e2 * _ME / (1.0 - cos2)
        )
    est = e1 + e2 + e_after
    ok = valid & np.isfinite(est) & (est > 0)
    energy[idx[ok]] = est[ok]
    applicable[idx[ok]] = True
    return EscapeEstimate(
        energy=energy, applicable=applicable, calorimetric=calorimetric
    )


def eta_with_escape_correction(
    events: EventSet,
    ordering: OrderingResult | None = None,
    min_gain_mev: float = 0.02,
) -> tuple[np.ndarray, np.ndarray]:
    """Recompute each eligible event's ``eta`` with recovered energy.

    The corrected ``eta`` uses ``E = max(E_estimate, E_calorimetric)``
    (the estimator can only *add* escaped energy, so estimates below the
    measured sum are noise and are ignored), and only events whose
    estimate exceeds the calorimetric sum by ``min_gain_mev`` are marked
    corrected.

    Args:
        events: Digitized events.
        ordering: Precomputed hit ordering.
        min_gain_mev: Minimum recovered energy to apply the correction.

    Returns:
        ``(eta, corrected)`` — the per-event scattering cosine with
        corrections applied where flagged, and the correction mask.
    """
    from repro.physics.compton import cos_theta_from_energies

    if ordering is None:
        ordering = order_hits(events)
    est = estimate_escape_energy(events, ordering)
    n = events.num_events
    e_first = np.zeros(n)
    valid = ordering.valid
    e_first[valid] = events.energies[ordering.first[valid]]

    total = est.calorimetric.copy()
    corrected = (
        est.applicable
        & (est.energy > est.calorimetric + min_gain_mev)
    )
    total[corrected] = est.energy[corrected]
    with np.errstate(invalid="ignore", divide="ignore"):
        eta = cos_theta_from_energies(total, e_first)
    return eta, corrected
