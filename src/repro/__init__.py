"""repro — reproduction of *Machine Learning Aboard the ADAPT Gamma-Ray
Telescope* (SC 2024).

A complete Python implementation of the paper's system: the ADAPT
detector physics simulation (Geant4 substitute), Compton-ring event
reconstruction, two-stage GRB localization, the background-rejection and
dEta neural networks (on a from-scratch NumPy NN framework), the
iterative ML pipeline, INT8 quantization with a true-integer inference
path, an FPGA HLS cost model, and calibrated embedded-platform timing
models.

Quickstart::

    import numpy as np
    from repro.geometry import adapt_geometry
    from repro.detector import DetectorResponse
    from repro.sources import GRBSource, BackgroundModel, simulate_exposure
    from repro.localization import localize_baseline

    geometry = adapt_geometry()
    response = DetectorResponse(geometry)
    rng = np.random.default_rng(0)
    grb = GRBSource(fluence_mev_cm2=1.0, polar_angle_deg=20.0)
    exposure = simulate_exposure(geometry, rng, grb, BackgroundModel())
    events = response.digitize(exposure.transport, exposure.batch, rng, min_hits=2)
    outcome = localize_baseline(events, rng)
    print(outcome.error_degrees(grb.source_direction), "degrees")

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure and table.
"""

__version__ = "1.0.0"

__all__ = [
    "constants",
    "geometry",
    "physics",
    "sources",
    "detector",
    "reconstruction",
    "localization",
    "nn",
    "models",
    "pipeline",
    "quantization",
    "fpga",
    "platforms",
    "experiments",
    "parallel",
    "io",
]
