"""Atmospheric MeV background model.

At balloon altitudes the detector sits in a diffuse bath of atmospheric
gamma rays (cosmic diffuse emission from above plus atmospheric/albedo
emission from the sides and below).  The paper's background model [8] is
proprietary simulation output; here we model the background as a power-law
photon flux arriving over a wide range of directions, with its absolute
normalization chosen so that, after reconstruction and filtering, a 1-second
exposure delivers roughly 2--3x as many background Compton rings as a
1 MeV/cm^2 GRB -- the ratio the paper reports entering localization.

Photons are generated on planes perpendicular to each sampled arrival
direction, exactly like the GRB plane-wave generator, so the transport code
sees a uniform illumination of the detector from each direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.tiles import DetectorGeometry
from repro.physics.spectra import PowerLawSpectrum, Spectrum
from repro.sources.grb import LABEL_BACKGROUND, PhotonBatch, _plane_basis

#: Default background photon flux, photons / cm^2 / s, integrated over
#: arrival directions.  Calibrated (see tests/sources) so the ratio of
#: accepted background:GRB rings entering localization is ~2.5-3:1 for a
#: 1 MeV/cm^2 burst in a 1 s window — the ratio the paper reports.
DEFAULT_BACKGROUND_FLUX: float = 25.0


@dataclass
class BackgroundModel:
    """Diffuse background photon generator.

    Attributes:
        flux_per_cm2_s: Direction-integrated photon flux through a plane
            perpendicular to each arrival direction.
        spectrum: Background energy spectrum (default: E^-2 power law).
        cos_polar_min: Arrival directions are sampled with the *source*
            polar angle uniform in cosine between ``cos_polar_min`` and 1
            (zenith).  The default 120-degree cutoff (-0.5) admits
            horizon/albedo photons while excluding straight-up-from-Earth
            arrivals that never produce forward-consistent rings.
        duration_s: Exposure window, s.
    """

    flux_per_cm2_s: float = DEFAULT_BACKGROUND_FLUX
    spectrum: Spectrum = field(default_factory=PowerLawSpectrum)
    cos_polar_min: float = -0.5
    duration_s: float = 1.0

    def __post_init__(self) -> None:
        if self.flux_per_cm2_s < 0:
            raise ValueError("flux must be non-negative")
        if not (-1.0 <= self.cos_polar_min < 1.0):
            raise ValueError("cos_polar_min must be in [-1, 1)")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")

    def expected_photons(self, geometry: DetectorGeometry) -> float:
        """Mean number of background photons crossing the generation plane."""
        side = self._plane_side(geometry)
        return self.flux_per_cm2_s * self.duration_s * side * side

    def _plane_side(self, geometry: DetectorGeometry) -> float:
        diag = np.sqrt((2.0 * geometry.half_size) ** 2 * 2.0 + geometry.height**2)
        return diag * 1.05

    def generate(
        self,
        geometry: DetectorGeometry,
        rng: np.random.Generator,
        n_photons: int | None = None,
    ) -> PhotonBatch:
        """Generate one exposure window of background photons.

        Each photon gets an independent arrival direction: polar cosine
        uniform in ``[cos_polar_min, 1]``, azimuth uniform.  Photons are
        placed on a per-photon plane upstream along their arrival direction.

        Args:
            geometry: Detector geometry.
            rng: Random generator.
            n_photons: Override the Poisson draw (useful in tests).

        Returns:
            A :class:`PhotonBatch` labeled LABEL_BACKGROUND with
            ``source_direction=None``.
        """
        side = self._plane_side(geometry)
        if n_photons is None:
            n_photons = int(rng.poisson(self.expected_photons(geometry)))
        cos_p = rng.uniform(self.cos_polar_min, 1.0, size=n_photons)
        sin_p = np.sqrt(np.clip(1.0 - cos_p**2, 0.0, 1.0))
        az = rng.uniform(0.0, 2.0 * np.pi, size=n_photons)
        # Unit vectors from detector toward each photon's origin direction.
        src = np.stack([sin_p * np.cos(az), sin_p * np.sin(az), cos_p], axis=1)
        beam = -src

        center = np.array([0.0, 0.0, (geometry.z_top + geometry.z_bottom) / 2.0])
        dist = geometry.height + side
        a = rng.uniform(-side / 2.0, side / 2.0, size=n_photons)
        b = rng.uniform(-side / 2.0, side / 2.0, size=n_photons)
        # Per-photon plane basis; vectorized Gram-Schmidt against a helper
        # axis chosen per photon to avoid degeneracy.
        helper = np.zeros_like(beam)
        near_x = np.abs(beam[:, 0]) > 0.9
        helper[near_x, 1] = 1.0
        helper[~near_x, 0] = 1.0
        u = np.cross(helper, beam)
        u /= np.linalg.norm(u, axis=1, keepdims=True)
        v = np.cross(beam, u)

        origins = (
            center[None, :]
            + src * dist
            + a[:, None] * u
            + b[:, None] * v
        )
        energies = self.spectrum.sample(n_photons, rng)
        times = rng.uniform(0.0, self.duration_s, size=n_photons)
        labels = np.full(n_photons, LABEL_BACKGROUND, dtype=np.int64)
        return PhotonBatch(
            origins=origins,
            directions=beam,
            energies=energies,
            times=times,
            labels=labels,
            source_direction=None,
        )


# re-export for type checkers; _plane_basis used by tests
__all__ = ["BackgroundModel", "DEFAULT_BACKGROUND_FLUX", "_plane_basis"]
