"""GRB light-curve models for photon arrival-time sampling.

Short GRBs last 10 ms -- 2 s (paper Section IV); all experiments use a
1-second window.  Arrival times matter for time-windowed exposure assembly
and future pile-up studies, not for localization accuracy itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class LightCurve:
    """Base class: samples photon arrival times within ``[0, duration]``."""

    duration_s: float

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` arrival times within ``[0, duration_s]``."""
        raise NotImplementedError


@dataclass
class UniformLightCurve(LightCurve):
    """Constant emission over the burst duration."""

    duration_s: float = 1.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(0.0, self.duration_s, size=n)


@dataclass
class FREDLightCurve(LightCurve):
    """Fast-rise exponential-decay profile, the canonical GRB pulse shape.

    Intensity ``I(t) ~ (t/t_rise) exp(-t/t_decay)`` for ``t in [0, duration]``,
    sampled by inverse CDF on a fine grid.

    Attributes:
        duration_s: Burst window length (samples are clipped inside it).
        t_rise_s: Rise timescale.
        t_decay_s: Decay timescale.
    """

    duration_s: float = 1.0
    t_rise_s: float = 0.05
    t_decay_s: float = 0.25

    def __post_init__(self) -> None:
        if min(self.duration_s, self.t_rise_s, self.t_decay_s) <= 0:
            raise ValueError("all timescales must be positive")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        t = np.linspace(0.0, self.duration_s, 2048)
        intensity = (t / self.t_rise_s) * np.exp(-t / self.t_decay_s)
        cdf = np.concatenate(
            [[0.0], np.cumsum(0.5 * (intensity[1:] + intensity[:-1]) * np.diff(t))]
        )
        cdf /= cdf[-1]
        u = rng.uniform(0.0, 1.0, size=n)
        return np.interp(u, cdf, t)
