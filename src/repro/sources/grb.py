"""GRB photon source: a plane wave of Band-spectrum photons.

A GRB is astronomically distant, so its photons arrive as a parallel beam
from the source direction ``s`` (paper Fig. 2).  The *fluence* is the
time-integrated energy flux in MeV/cm^2; photon count follows from the mean
photon energy of the spectrum and the area of the generation plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.tiles import DetectorGeometry
from repro.physics.spectra import BandSpectrum, Spectrum
from repro.sources.lightcurve import LightCurve, UniformLightCurve

#: Truth label for GRB-origin photons.
LABEL_GRB: int = 0
#: Truth label for background-origin photons.
LABEL_BACKGROUND: int = 1


@dataclass
class PhotonBatch:
    """A batch of primary photons with ground truth.

    Attributes:
        origins: ``(n, 3)`` start positions, cm.
        directions: ``(n, 3)`` unit travel directions.
        energies: ``(n,)`` photon energies, MeV.
        times: ``(n,)`` arrival times, s.
        labels: ``(n,)`` LABEL_GRB or LABEL_BACKGROUND.
        source_direction: The true GRB source unit vector (pointing from the
            detector toward the source), or None for pure-background batches.
    """

    origins: np.ndarray
    directions: np.ndarray
    energies: np.ndarray
    times: np.ndarray
    labels: np.ndarray
    source_direction: np.ndarray | None = None

    def __post_init__(self) -> None:
        n = self.origins.shape[0]
        for name in ("directions", "energies", "times", "labels"):
            if getattr(self, name).shape[0] != n:
                raise ValueError(f"{name} length mismatch")

    @property
    def num_photons(self) -> int:
        return int(self.origins.shape[0])

    @staticmethod
    def concatenate(batches: list["PhotonBatch"]) -> "PhotonBatch":
        """Merge batches; the source direction is taken from the first batch
        that has one (experiments only ever mix one GRB with background)."""
        if not batches:
            raise ValueError("no batches to concatenate")
        src = next(
            (b.source_direction for b in batches if b.source_direction is not None),
            None,
        )
        return PhotonBatch(
            origins=np.concatenate([b.origins for b in batches], axis=0),
            directions=np.concatenate([b.directions for b in batches], axis=0),
            energies=np.concatenate([b.energies for b in batches]),
            times=np.concatenate([b.times for b in batches]),
            labels=np.concatenate([b.labels for b in batches]),
            source_direction=src,
        )


def direction_from_angles(polar_deg: float, azimuth_deg: float = 0.0) -> np.ndarray:
    """Unit source vector from polar angle (from zenith, +z) and azimuth."""
    th = np.deg2rad(polar_deg)
    ph = np.deg2rad(azimuth_deg)
    return np.array(
        [np.sin(th) * np.cos(ph), np.sin(th) * np.sin(ph), np.cos(th)],
        dtype=np.float64,
    )


def _plane_basis(normal: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Two orthonormal vectors spanning the plane perpendicular to ``normal``."""
    helper = np.array([1.0, 0.0, 0.0])
    if abs(normal[0]) > 0.9:
        helper = np.array([0.0, 1.0, 0.0])
    u = np.cross(helper, normal)
    u /= np.linalg.norm(u)
    v = np.cross(normal, u)
    return u, v


@dataclass
class GRBSource:
    """A gamma-ray burst illuminating the detector as a plane wave.

    Photons are generated on a square plane perpendicular to the beam,
    positioned upstream of the detector and large enough to cover its
    projected silhouette from any incidence angle.

    Attributes:
        fluence_mev_cm2: Time-integrated energy fluence, MeV/cm^2.
        polar_angle_deg: Source polar angle from detector zenith (0 =
            normally incident from above; Earth blocks > 90).
        azimuth_deg: Source azimuth.
        spectrum: Photon energy spectrum (paper: Band with beta = -2.35).
        light_curve: Arrival-time profile within the burst window.
    """

    fluence_mev_cm2: float = 1.0
    polar_angle_deg: float = 0.0
    azimuth_deg: float = 0.0
    spectrum: Spectrum = field(default_factory=BandSpectrum)
    light_curve: LightCurve = field(default_factory=UniformLightCurve)

    def __post_init__(self) -> None:
        if self.fluence_mev_cm2 <= 0:
            raise ValueError("fluence must be positive")
        if not (0.0 <= self.polar_angle_deg < 90.0):
            raise ValueError("polar angle must be in [0, 90) degrees")

    @property
    def source_direction(self) -> np.ndarray:
        """Unit vector from the detector toward the source."""
        return direction_from_angles(self.polar_angle_deg, self.azimuth_deg)

    def expected_photons(self, geometry: DetectorGeometry) -> float:
        """Mean number of photons crossing the generation plane."""
        side = self._plane_side(geometry)
        photons_per_cm2 = self.fluence_mev_cm2 / self.spectrum.mean_energy()
        return photons_per_cm2 * side * side

    def _plane_side(self, geometry: DetectorGeometry) -> float:
        # The projected silhouette of the stack is bounded by its 3-D
        # diagonal regardless of incidence angle; a small margin guards
        # photons entering near edges.
        diag = np.sqrt((2.0 * geometry.half_size) ** 2 * 2.0 + geometry.height**2)
        return diag * 1.05

    def generate(
        self,
        geometry: DetectorGeometry,
        rng: np.random.Generator,
        n_photons: int | None = None,
    ) -> PhotonBatch:
        """Generate the photon batch for one burst.

        Args:
            geometry: Detector geometry (sets plane size and placement).
            rng: Random generator.
            n_photons: Override the Poisson draw (useful in tests).

        Returns:
            A :class:`PhotonBatch` labeled LABEL_GRB.
        """
        s = self.source_direction
        beam = -s  # photons travel opposite the source vector
        side = self._plane_side(geometry)
        if n_photons is None:
            n_photons = int(rng.poisson(self.expected_photons(geometry)))
        u, v = _plane_basis(beam)
        center = (
            np.array([0.0, 0.0, (geometry.z_top + geometry.z_bottom) / 2.0])
            + s * (geometry.height + side)
        )
        a = rng.uniform(-side / 2.0, side / 2.0, size=n_photons)
        b = rng.uniform(-side / 2.0, side / 2.0, size=n_photons)
        origins = center[None, :] + a[:, None] * u[None, :] + b[:, None] * v[None, :]
        directions = np.tile(beam, (n_photons, 1))
        energies = self.spectrum.sample(n_photons, rng)
        times = self.light_curve.sample(n_photons, rng)
        labels = np.full(n_photons, LABEL_GRB, dtype=np.int64)
        return PhotonBatch(
            origins=origins,
            directions=directions,
            energies=energies,
            times=times,
            labels=labels,
            source_direction=s,
        )
