"""Photon sources: GRBs and atmospheric background.

Generates batches of primary photons (origins, directions, energies,
arrival times, truth labels) ready for :func:`repro.physics.transport_photons`.
"""

from repro.sources.lightcurve import FREDLightCurve, LightCurve, UniformLightCurve
from repro.sources.grb import GRBSource, LABEL_BACKGROUND, LABEL_GRB, PhotonBatch
from repro.sources.background import BackgroundModel
from repro.sources.exposure import Exposure, simulate_exposure
from repro.sources.catalog import PopulationModel

__all__ = [
    "PhotonBatch",
    "GRBSource",
    "BackgroundModel",
    "LightCurve",
    "UniformLightCurve",
    "FREDLightCurve",
    "Exposure",
    "simulate_exposure",
    "PopulationModel",
    "LABEL_GRB",
    "LABEL_BACKGROUND",
]
