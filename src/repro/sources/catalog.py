"""Short-GRB population model.

The paper targets short GRBs — binary-neutron-star mergers with durations
of 10 ms to 2 s (its refs. [27]-[31], the Fermi GBM burst catalogs).
This module draws physically plausible burst parameters from simple
parametric fits to those catalogs, so campaign studies (sensitivity,
alert-rate forecasts) can sample a *population* instead of a fixed
1 MeV/cm^2 test burst:

* duration: log-normal around ~0.4 s, truncated to [0.01, 2] s;
* spectral peak energy: log-normal around ~0.5 MeV (short GRBs are
  spectrally hard);
* low-energy index alpha: normal around -0.5;
* fluence: power-law (logN-logS) with slope ~ -1.5 above a completeness
  threshold, the Euclidean expectation;
* sky position: isotropic over the visible hemisphere.

Numbers are round-figure catalog summaries, not fits to proprietary
data; each knob is a parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.physics.spectra import BandSpectrum
from repro.sources.grb import GRBSource
from repro.sources.lightcurve import FREDLightCurve


@dataclass(frozen=True)
class PopulationModel:
    """Parameters of the short-GRB population.

    Attributes:
        duration_log_mean: Mean of ln(duration/s).
        duration_log_sigma: Sigma of ln(duration/s).
        duration_range_s: Truncation bounds (paper: 10 ms - 2 s).
        epeak_log_mean: Mean of ln(E_peak/MeV).
        epeak_log_sigma: Sigma of ln(E_peak/MeV).
        alpha_mean: Mean Band low-energy index.
        alpha_sigma: Spread of alpha.
        fluence_slope: Cumulative logN-logS slope (Euclidean: -1.5).
        fluence_min: Completeness threshold, MeV/cm^2.
        fluence_max: Truncation for sampling, MeV/cm^2.
        max_polar_deg: Visibility cone from zenith.
    """

    duration_log_mean: float = float(np.log(0.4))
    duration_log_sigma: float = 0.9
    duration_range_s: tuple[float, float] = (0.01, 2.0)
    epeak_log_mean: float = float(np.log(0.5))
    epeak_log_sigma: float = 0.7
    alpha_mean: float = -0.5
    alpha_sigma: float = 0.25
    fluence_slope: float = -1.5
    fluence_min: float = 0.2
    fluence_max: float = 20.0
    max_polar_deg: float = 85.0

    def sample_fluence(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw fluences from the truncated logN-logS power law.

        With cumulative slope ``s`` the density is ``~ F^(s-1)``; inverse
        CDF sampling on [fluence_min, fluence_max].
        """
        u = rng.uniform(size=n)
        g = self.fluence_slope  # cumulative N(>F) ~ F^g
        lo, hi = self.fluence_min**g, self.fluence_max**g
        return np.power(lo + u * (hi - lo), 1.0 / g)

    def sample_duration(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Truncated log-normal durations, seconds."""
        out = np.exp(
            rng.normal(self.duration_log_mean, self.duration_log_sigma, n)
        )
        return np.clip(out, *self.duration_range_s)

    def sample_direction(
        self, n: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Isotropic (polar_deg, azimuth_deg) over the visibility cone."""
        cos_max = np.cos(np.deg2rad(self.max_polar_deg))
        cos_p = rng.uniform(cos_max, 1.0, n)
        polar = np.degrees(np.arccos(np.clip(cos_p, -1.0, 1.0)))
        azimuth = rng.uniform(0.0, 360.0, n)
        return polar, azimuth

    def sample_burst(self, rng: np.random.Generator) -> GRBSource:
        """Draw one complete burst.

        Returns:
            A ready-to-simulate :class:`~repro.sources.grb.GRBSource`
            with population-sampled fluence, spectrum, duration, and
            direction.
        """
        fluence = float(self.sample_fluence(1, rng)[0])
        duration = float(self.sample_duration(1, rng)[0])
        polar, azimuth = self.sample_direction(1, rng)
        e_peak = float(
            np.exp(rng.normal(self.epeak_log_mean, self.epeak_log_sigma))
        )
        alpha = float(
            np.clip(rng.normal(self.alpha_mean, self.alpha_sigma), -1.4, 0.8)
        )
        spectrum = BandSpectrum(alpha=alpha, e_peak=max(e_peak, 0.05))
        light_curve = FREDLightCurve(
            duration_s=duration,
            t_rise_s=max(duration * 0.05, 1e-3),
            t_decay_s=max(duration * 0.25, 5e-3),
        )
        return GRBSource(
            fluence_mev_cm2=fluence,
            polar_angle_deg=float(polar[0]),
            azimuth_deg=float(azimuth[0]),
            spectrum=spectrum,
            light_curve=light_curve,
        )

    def sample_population(
        self, n: int, rng: np.random.Generator
    ) -> list[GRBSource]:
        """Draw ``n`` independent bursts."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return [self.sample_burst(rng) for _ in range(n)]
