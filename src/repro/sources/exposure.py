"""Exposure assembly: one observation window of GRB + background photons.

``simulate_exposure`` is the single entry point the experiment harness uses
to produce raw detector truth for one trial: it generates the photon
batches, transports them through the geometry, and returns everything the
detector-response and reconstruction stages need, with ground truth
attached.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.tiles import DetectorGeometry
from repro.physics.transport import TransportResult, transport_photons
from repro.sources.background import BackgroundModel
from repro.sources.grb import GRBSource, PhotonBatch


@dataclass
class Exposure:
    """Everything produced by one observation window.

    Attributes:
        batch: The combined primary-photon batch (GRB first, then
            background), with labels and the true source direction.
        transport: Interaction record from the Monte Carlo.
        geometry: The detector geometry used.
    """

    batch: PhotonBatch
    transport: TransportResult
    geometry: DetectorGeometry

    @property
    def source_direction(self) -> np.ndarray | None:
        return self.batch.source_direction

    def hit_labels(self) -> np.ndarray:
        """Per-hit truth label (LABEL_GRB / LABEL_BACKGROUND)."""
        return self.batch.labels[self.transport.photon_index]


def simulate_exposure(
    geometry: DetectorGeometry,
    rng: np.random.Generator,
    grb: GRBSource | None = None,
    background: BackgroundModel | None = None,
) -> Exposure:
    """Simulate one exposure window.

    Args:
        geometry: Detector geometry.
        rng: Random generator for this trial.
        grb: The burst source, or None for a background-only window.
        background: The background model, or None for a source-only window.

    Returns:
        An :class:`Exposure` with combined transport results and truth.

    Raises:
        ValueError: If both sources are None.
    """
    batches: list[PhotonBatch] = []
    if grb is not None:
        batches.append(grb.generate(geometry, rng))
    if background is not None:
        batches.append(background.generate(geometry, rng))
    if not batches:
        raise ValueError("at least one of grb/background must be provided")
    batch = PhotonBatch.concatenate(batches) if len(batches) > 1 else batches[0]
    transport = transport_photons(
        geometry, batch.origins, batch.directions, batch.energies, rng
    )
    return Exposure(batch=batch, transport=transport, geometry=geometry)
