"""Event-builder coincidence window: pile-up of simultaneous photons.

The paper's Section VI names "multiple events that arrive simultaneously
to within the detection latency of the instrument" as the next error
source to model.  This module implements that effect: the event builder
groups hits by *trigger windows* rather than by true photon identity, so
two photons arriving within ``window_s`` of each other are fused into one
apparent event — whose reconstruction is then (usually) garbage.

The implementation re-labels the transport result's photon indices with
*event-builder* indices before digitization, which keeps the whole
downstream chain (response, reconstruction, localization) unchanged and
lets experiments dial pile-up on and off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.physics.transport import TransportResult
from repro.sources.grb import PhotonBatch


@dataclass(frozen=True)
class CoincidenceConfig:
    """Event-builder timing parameters.

    Attributes:
        window_s: Coincidence window: photons whose arrival times fall
            within this interval of each other are merged into one
            apparent event (typical scintillator trigger windows are
            hundreds of ns to a few microseconds).
    """

    window_s: float = 2e-6

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("coincidence window must be positive")


@dataclass
class PileupResult:
    """Outcome of event building with a coincidence window.

    Attributes:
        transport: New transport record whose ``photon_index`` refers to
            *built events* (pile-up groups) instead of true photons.
        batch: New batch aligned with built events; a piled-up event
            inherits the earliest member's label/energy/direction (its
            trigger), so truth accounting stays well defined.
        group_of_photon: ``(n_photons,)`` built-event index per original
            photon (-1 for photons that left no hits).
        pileup_fraction: Fraction of built events containing more than
            one interacting photon.
    """

    transport: TransportResult
    batch: PhotonBatch
    group_of_photon: np.ndarray
    pileup_fraction: float


def build_events_with_pileup(
    transport: TransportResult,
    batch: PhotonBatch,
    config: CoincidenceConfig | None = None,
) -> PileupResult:
    """Group interacting photons into trigger windows.

    Photons with at least one hit are sorted by arrival time; a new built
    event starts whenever the gap to the previous interacting photon
    exceeds the coincidence window (standard rolling-window event
    building).

    Args:
        transport: Raw transport result (per-photon indexing).
        batch: The originating photon batch (provides arrival times).
        config: Window parameters.

    Returns:
        A :class:`PileupResult` whose ``transport``/``batch`` can be fed
        straight into :meth:`repro.detector.response.DetectorResponse.digitize`.
    """
    cfg = config or CoincidenceConfig()
    n = batch.num_photons
    interacting = np.zeros(n, dtype=bool)
    interacting[np.unique(transport.photon_index)] = True
    group_of_photon = np.full(n, -1, dtype=np.int64)

    idx = np.nonzero(interacting)[0]
    if idx.size == 0:
        return PileupResult(
            transport=transport,
            batch=batch,
            group_of_photon=group_of_photon,
            pileup_fraction=0.0,
        )
    order = idx[np.argsort(batch.times[idx], kind="stable")]
    times = batch.times[order]
    new_group = np.concatenate([[True], np.diff(times) > cfg.window_s])
    group_ids = np.cumsum(new_group) - 1
    group_of_photon[order] = group_ids
    n_groups = int(group_ids[-1]) + 1

    # Trigger photon of each group = earliest member.
    first_of_group = order[new_group]

    # Re-index hits: photon -> group; re-number interaction order within
    # each group by arrival order (trigger photon's hits first).
    hit_group = group_of_photon[transport.photon_index]
    sort_key = np.lexsort(
        (
            transport.order,
            batch.times[transport.photon_index],
            hit_group,
        )
    )
    hit_group_sorted = hit_group[sort_key]
    # Order within group: position since group start.
    starts = np.concatenate(
        [[True], hit_group_sorted[1:] != hit_group_sorted[:-1]]
    )
    seg_start_idx = np.flatnonzero(starts)
    seg_id = np.cumsum(starts) - 1
    within = np.arange(hit_group_sorted.size) - seg_start_idx[seg_id]

    num_interactions = np.zeros(n_groups, dtype=np.int64)
    np.add.at(num_interactions, hit_group_sorted, 1)

    fate = np.zeros(n_groups, dtype=np.int64)
    escaped = np.zeros(n_groups)
    np.add.at(escaped, group_of_photon[interacting],
              transport.escaped_energy[interacting])

    new_transport = TransportResult(
        photon_index=hit_group_sorted,
        order=within,
        positions=transport.positions[sort_key],
        energies=transport.energies[sort_key],
        num_interactions=num_interactions,
        fate=fate,
        escaped_energy=escaped,
    )

    counts = np.zeros(n_groups, dtype=np.int64)
    np.add.at(counts, group_ids, 1)
    pileup_fraction = float((counts > 1).mean())

    new_batch = PhotonBatch(
        origins=batch.origins[first_of_group],
        directions=batch.directions[first_of_group],
        energies=batch.energies[first_of_group],
        times=batch.times[first_of_group],
        labels=batch.labels[first_of_group],
        source_direction=batch.source_direction,
    )
    return PileupResult(
        transport=new_transport,
        batch=new_batch,
        group_of_photon=group_of_photon,
        pileup_fraction=pileup_fraction,
    )
