"""Input perturbation for the robustness study (paper Fig. 10).

The paper characterizes robustness to *unforeseen* instrument noise by
adding Gaussian noise to the spatial and energy values of each hit prior to
reconstruction: ``x' ~ N(x, (x * eps/100)^2)`` for ``eps in {0, 1, 5, 10}``
percent.  This module applies exactly that transformation to an
:class:`~repro.detector.response.EventSet`.
"""

from __future__ import annotations

import numpy as np

from repro.detector.response import EventSet


def perturb_events(
    events: EventSet,
    epsilon_percent: float,
    rng: np.random.Generator,
) -> EventSet:
    """Perturb measured hit values with relative Gaussian noise.

    Each measured spatial coordinate and energy ``x`` is replaced by a draw
    from ``N(x, (x * eps/100)^2)``.  Nominal sigmas are *not* updated —
    the perturbation models noise the pipeline does not know about, which
    is the point of the robustness experiment.

    Args:
        events: Digitized events.
        epsilon_percent: Noise level ``eps`` in percent of each value.
        rng: Random generator.

    Returns:
        A new :class:`EventSet` with perturbed ``positions`` and
        ``energies``; all other fields are shared/copied unchanged.

    Raises:
        ValueError: If ``epsilon_percent`` is negative.
    """
    if epsilon_percent < 0:
        raise ValueError("epsilon_percent must be non-negative")
    if epsilon_percent == 0:
        return events
    frac = epsilon_percent / 100.0
    positions = events.positions + rng.normal(
        0.0, 1.0, events.positions.shape
    ) * np.abs(events.positions) * frac
    energies = events.energies + rng.normal(
        0.0, 1.0, events.energies.shape
    ) * np.abs(events.energies) * frac
    energies = np.maximum(energies, 0.0)
    return EventSet(
        event_offsets=events.event_offsets,
        positions=positions,
        energies=energies,
        sigma_energy=events.sigma_energy,
        sigma_position=events.sigma_position,
        true_positions=events.true_positions,
        true_energies=events.true_energies,
        true_order=events.true_order,
        photon_index=events.photon_index,
        labels=events.labels,
        photon_energy=events.photon_energy,
        source_direction=events.source_direction,
    )
