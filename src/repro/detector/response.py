"""Digitization: true interactions -> measured hits, grouped into events.

The response model has two kinds of noise:

* **Modeled** noise, which the reconstruction's propagation-of-error *knows
  about*: fiber-pitch position quantization, SiPM photostatistics
  (Poisson in photoelectrons), and Gaussian electronics noise.  These set
  the nominal per-hit sigmas reported alongside each measurement.
* **Unmodeled** noise, which the error model *cannot see*: a deterministic
  light-collection nonuniformity across each tile, and a heavy-tail
  response component (afterpulsing/optical-crosstalk-like).  These are the
  reason "many rings have much larger actual errors in eta than our
  estimates predict" (paper Section II) and are what the dEta network
  learns to flag.

Events are stored CSR-style (flat hit arrays + per-event offsets), the
structure-of-arrays layout the hpc-parallel guides recommend for
vectorized downstream processing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.fibers import FiberGrid
from repro.geometry.tiles import DetectorGeometry
from repro.obs import trace as obs_trace
from repro.physics.transport import TransportResult
from repro.sources.grb import PhotonBatch


@dataclass(frozen=True)
class ResponseConfig:
    """Tunable parameters of the measurement chain.

    Attributes:
        pe_per_mev: SiPM photoelectrons collected per MeV deposited; sets
            the Poisson energy resolution (sigma_E/E ~ 1/sqrt(pe_per_mev*E)).
        electronics_noise_mev: Gaussian electronics noise sigma per hit, MeV.
        trigger_threshold_mev: Hits measured below this are lost.
        merge_radius_cm: Same-event hits in the same layer closer than this
            are merged into one (the readout cannot separate them).
        nonuniformity_amplitude: Relative amplitude of the deterministic
            light-collection gain variation across each tile (unmodeled).
        nonuniformity_period_cm: Spatial period of the gain variation.
        tail_probability: Per-hit probability of a heavy-tail energy error
            (unmodeled).
        tail_scale: Relative sigma of the heavy-tail component.
        depth_sigma_cm: Gaussian smearing of the reconstructed depth (z)
            within a tile, in addition to tile-center assignment.
        sipm: Optional mechanistic SiPM model
            (:class:`repro.detector.sipm.SiPMModel`).  When set, the
            photostatistics *and* the heavy tail come from the SiPM's
            crosstalk/afterpulsing cascade instead of the Poisson +
            ``tail_probability`` parameterization (which is then ignored).
    """

    pe_per_mev: float = 1200.0
    electronics_noise_mev: float = 0.005
    trigger_threshold_mev: float = 0.025
    merge_radius_cm: float = 0.9
    nonuniformity_amplitude: float = 0.06
    nonuniformity_period_cm: float = 11.0
    tail_probability: float = 0.10
    tail_scale: float = 0.18
    depth_sigma_cm: float = 0.35
    sipm: "object | None" = None


@dataclass
class EventSet:
    """Digitized events in CSR layout.

    ``event_offsets[i]:event_offsets[i+1]`` slices the flat hit arrays for
    event ``i``.  Hits within an event are ordered by true interaction
    order (reconstruction re-orders them itself; the truth ordering is kept
    for training labels and diagnostics).

    Attributes:
        event_offsets: ``(n_events + 1,)`` hit-slice boundaries.
        positions: ``(k, 3)`` measured hit positions, cm.
        energies: ``(k,)`` measured deposited energies, MeV.
        sigma_energy: ``(k,)`` nominal (modeled-only) energy sigmas, MeV.
        sigma_position: ``(k, 3)`` nominal position sigmas, cm.
        true_positions: ``(k, 3)`` true interaction positions, cm.
        true_energies: ``(k,)`` true deposited energies, MeV.
        true_order: ``(k,)`` true interaction order within the event.
        photon_index: ``(n_events,)`` index into the originating batch.
        labels: ``(n_events,)`` truth label (LABEL_GRB / LABEL_BACKGROUND).
        photon_energy: ``(n_events,)`` true primary photon energy, MeV.
        source_direction: True GRB direction (unit 3-vector) or None.
    """

    event_offsets: np.ndarray
    positions: np.ndarray
    energies: np.ndarray
    sigma_energy: np.ndarray
    sigma_position: np.ndarray
    true_positions: np.ndarray
    true_energies: np.ndarray
    true_order: np.ndarray
    photon_index: np.ndarray
    labels: np.ndarray
    photon_energy: np.ndarray
    source_direction: np.ndarray | None = None

    @property
    def num_events(self) -> int:
        return int(self.event_offsets.shape[0] - 1)

    @property
    def num_hits(self) -> int:
        return int(self.positions.shape[0])

    def hits_per_event(self) -> np.ndarray:
        """``(n_events,)`` hit multiplicity of each event."""
        return np.diff(self.event_offsets)

    def event_slice(self, i: int) -> slice:
        """Slice of the flat hit arrays belonging to event ``i``."""
        return slice(int(self.event_offsets[i]), int(self.event_offsets[i + 1]))

    def select(self, mask: np.ndarray) -> "EventSet":
        """Return a new EventSet keeping only events where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != self.num_events:
            raise ValueError("mask length must equal num_events")
        counts = self.hits_per_event()
        hit_mask = np.repeat(mask, counts)
        new_counts = counts[mask]
        offsets = np.concatenate([[0], np.cumsum(new_counts)])
        return EventSet(
            event_offsets=offsets,
            positions=self.positions[hit_mask],
            energies=self.energies[hit_mask],
            sigma_energy=self.sigma_energy[hit_mask],
            sigma_position=self.sigma_position[hit_mask],
            true_positions=self.true_positions[hit_mask],
            true_energies=self.true_energies[hit_mask],
            true_order=self.true_order[hit_mask],
            photon_index=self.photon_index[mask],
            labels=self.labels[mask],
            photon_energy=self.photon_energy[mask],
            source_direction=self.source_direction,
        )


@dataclass
class DetectorResponse:
    """Applies the measurement chain to transport output.

    Attributes:
        geometry: Detector geometry (for layer/z assignment).
        config: Response parameters.
        fiber_grid: Lateral position quantization grid.
    """

    geometry: DetectorGeometry
    config: ResponseConfig = field(default_factory=ResponseConfig)
    fiber_grid: FiberGrid = field(default_factory=FiberGrid)

    # -- individual effects (public so tests can probe each in isolation) ----

    def gain_map(self, positions: np.ndarray) -> np.ndarray:
        """Deterministic light-collection gain at the given positions.

        A smooth sinusoidal variation across the tile in x and y; the error
        model assumes gain = 1 everywhere, so this is *unmodeled*.
        """
        cfg = self.config
        x, y = positions[:, 0], positions[:, 1]
        w = 2.0 * np.pi / cfg.nonuniformity_period_cm
        return 1.0 + cfg.nonuniformity_amplitude * np.sin(w * x) * np.sin(w * y)

    def measure_energy(
        self, true_energy: np.ndarray, positions: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Smear deposited energies through the full response chain.

        Returns:
            Tuple ``(measured, nominal_sigma)``; ``nominal_sigma`` reflects
            only the modeled noise (photostatistics + electronics).
        """
        cfg = self.config
        gain = self.gain_map(positions)
        expected_pe = np.maximum(true_energy * gain, 0.0) * cfg.pe_per_mev
        if cfg.sipm is not None:
            # Mechanistic path: the SiPM cascade supplies both the
            # photostatistics and the heavy tail.  detect() works in
            # primary-avalanche units, so feed it the photon count that
            # yields cfg.pe_per_mev primaries per MeV after its PDE.
            # The mean crosstalk/afterpulse gain is calibrated out (as a
            # real energy calibration would); the cascade's variance and
            # tails remain.
            charges = cfg.sipm.detect(expected_pe / cfg.sipm.pde, rng)
            cascade_gain = cfg.sipm.mean_avalanches(1.0 / cfg.sipm.pde)
            measured = (
                cfg.sipm.linearity_correction(charges)
                / cascade_gain
                / cfg.pe_per_mev
            )
            measured = measured + rng.normal(
                0.0, cfg.electronics_noise_mev, measured.shape
            )
        else:
            n_pe = rng.poisson(expected_pe)
            measured = n_pe / cfg.pe_per_mev
            measured = measured + rng.normal(
                0.0, cfg.electronics_noise_mev, measured.shape
            )
            # Heavy-tail (unmodeled) component.
            tail = rng.uniform(size=measured.shape) < cfg.tail_probability
            measured = np.where(
                tail,
                measured
                + rng.normal(0.0, cfg.tail_scale, measured.shape) * true_energy,
                measured,
            )
        measured = np.maximum(measured, 0.0)
        nominal_sigma = np.sqrt(
            np.maximum(measured, 0.0) / cfg.pe_per_mev + cfg.electronics_noise_mev**2
        )
        return measured, nominal_sigma

    @obs_trace.traced("response.measure_position")
    def measure_position(
        self, true_positions: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Quantize lateral coordinates; smear and tile-assign depth.

        Returns:
            Tuple ``(measured, nominal_sigma)`` with shapes ``(k, 3)``.
        """
        cfg = self.config
        measured = true_positions.copy()
        measured[:, 0] = self.fiber_grid.quantize(true_positions[:, 0])
        measured[:, 1] = self.fiber_grid.quantize(true_positions[:, 1])
        # Depth: Gaussian smear of the within-tile estimate, clipped to the
        # owning tile — one vectorized draw/clip over all in-layer hits
        # (hits outside any layer keep their true depth, as before).
        # Normals are consumed grouped by layer, stable within a layer, so
        # the RNG stream is bit-compatible with the per-layer loop this
        # replaces (Generator.normal streams identically across call
        # boundaries).
        layer_idx = self.geometry.layer_index(true_positions)
        z = true_positions[:, 2].copy()
        in_layer = layer_idx >= 0
        if np.any(in_layer):
            z_bottom = np.array([layer.z_bottom for layer in self.geometry.layers])
            z_top = np.array([layer.z_top for layer in self.geometry.layers])
            owner = layer_idx[in_layer]
            draws = np.empty(owner.size)
            draws[np.argsort(owner, kind="stable")] = rng.normal(
                0.0, cfg.depth_sigma_cm, owner.size
            )
            z[in_layer] = np.clip(
                z[in_layer] + draws, z_bottom[owner], z_top[owner]
            )
        measured[:, 2] = z
        sigma = np.empty_like(measured)
        sigma[:, 0] = self.fiber_grid.position_sigma_cm
        sigma[:, 1] = self.fiber_grid.position_sigma_cm
        sigma[:, 2] = cfg.depth_sigma_cm
        return measured, sigma

    # -- full digitization ----------------------------------------------------

    @obs_trace.traced("response.digitize")
    def digitize(
        self,
        transport: TransportResult,
        batch: PhotonBatch,
        rng: np.random.Generator,
        min_hits: int = 1,
        max_hits: int = 8,
    ) -> EventSet:
        """Run the full measurement chain over a transport result.

        Steps: sort hits by (photon, order); merge same-layer hits closer
        than ``merge_radius_cm``; apply position and energy measurement;
        drop hits below the trigger threshold; group surviving hits into
        events and keep events with ``min_hits`` to ``max_hits`` hits
        (higher multiplicities — essentially only pile-up — are flagged
        unreconstructable and discarded, as the flight event filter
        would).

        Args:
            transport: Raw interaction record.
            batch: The photon batch that produced it (for truth labels).
            rng: Random generator.
            min_hits: Minimum measured hits for an event to be retained.
            max_hits: Maximum measured hits for an event to be retained.

        Returns:
            An :class:`EventSet`.
        """
        if transport.num_hits == 0:
            return _empty_event_set(batch.source_direction)

        order_key = np.lexsort((transport.order, transport.photon_index))
        ph = transport.photon_index[order_key]
        order = transport.order[order_key]
        pos = transport.positions[order_key]
        edep = transport.energies[order_key]

        ph, order, pos, edep = self._merge_close_hits(ph, order, pos, edep)

        measured_pos, sigma_pos = self.measure_position(pos, rng)
        measured_e, sigma_e = self.measure_energy(edep, pos, rng)

        keep = measured_e >= self.config.trigger_threshold_mev
        ph, order = ph[keep], order[keep]
        pos, edep = pos[keep], edep[keep]
        measured_pos, sigma_pos = measured_pos[keep], sigma_pos[keep]
        measured_e, sigma_e = measured_e[keep], sigma_e[keep]

        if ph.shape[0] == 0:
            return _empty_event_set(batch.source_direction)

        # Group hits into events (hits are already sorted by photon).
        unique_ph, start_idx, counts = np.unique(
            ph, return_index=True, return_counts=True
        )
        enough = (counts >= min_hits) & (counts <= max_hits)
        unique_ph = unique_ph[enough]
        start_idx = start_idx[enough]
        counts = counts[enough]

        hit_sel = np.concatenate(
            [np.arange(s, s + c) for s, c in zip(start_idx, counts)]
        ) if counts.size else np.empty(0, dtype=np.int64)

        offsets = np.concatenate([[0], np.cumsum(counts)])
        return EventSet(
            event_offsets=offsets.astype(np.int64),
            positions=measured_pos[hit_sel],
            energies=measured_e[hit_sel],
            sigma_energy=sigma_e[hit_sel],
            sigma_position=sigma_pos[hit_sel],
            true_positions=pos[hit_sel],
            true_energies=edep[hit_sel],
            true_order=order[hit_sel],
            photon_index=unique_ph,
            labels=batch.labels[unique_ph],
            photon_energy=batch.energies[unique_ph],
            source_direction=batch.source_direction,
        )

    def _merge_close_hits(
        self,
        ph: np.ndarray,
        order: np.ndarray,
        pos: np.ndarray,
        edep: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Merge consecutive same-photon, same-layer hits that are too close
        for the readout to separate.

        Inputs must be sorted by (photon, order).  Merging is greedy over
        consecutive pairs, which matches the physical situation (a scatter
        followed immediately by absorption in the same tile).
        """
        if ph.shape[0] == 0:
            return ph, order, pos, edep
        layer = self.geometry.layer_index(pos)
        same_photon = ph[1:] == ph[:-1]
        same_layer = (layer[1:] == layer[:-1]) & (layer[1:] >= 0)
        close = (
            np.linalg.norm(pos[1:] - pos[:-1], axis=1) < self.config.merge_radius_cm
        )
        merge_with_prev = same_photon & same_layer & close
        # Group id increments where we do NOT merge.
        group = np.concatenate([[0], np.cumsum(~merge_with_prev)])
        n_groups = group[-1] + 1
        e_sum = np.zeros(n_groups)
        np.add.at(e_sum, group, edep)
        w_pos = np.zeros((n_groups, 3))
        np.add.at(w_pos, group, pos * edep[:, None])
        with np.errstate(invalid="ignore"):
            w_pos /= e_sum[:, None]
        first_of_group = np.concatenate([[True], ~merge_with_prev])
        return (
            ph[first_of_group],
            order[first_of_group],
            w_pos,
            e_sum,
        )


def _empty_event_set(source_direction: np.ndarray | None) -> EventSet:
    return EventSet(
        event_offsets=np.zeros(1, dtype=np.int64),
        positions=np.empty((0, 3)),
        energies=np.empty(0),
        sigma_energy=np.empty(0),
        sigma_position=np.empty((0, 3)),
        true_positions=np.empty((0, 3)),
        true_energies=np.empty(0),
        true_order=np.empty(0, dtype=np.int64),
        photon_index=np.empty(0, dtype=np.int64),
        labels=np.empty(0, dtype=np.int64),
        photon_energy=np.empty(0),
        source_direction=source_direction,
    )
