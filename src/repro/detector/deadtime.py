"""Readout deadtime models.

After each trigger the readout is busy for a fixed time `tau`; photons
arriving during that window are lost (non-paralyzable) or additionally
extend the busy window (paralyzable).  Together with
:mod:`repro.platforms.rate` this quantifies the paper's Section-VI
concern that APT's "much larger detector demands event processing at a
higher rate": the live fraction sets how much of a burst's fluence is
actually recorded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DeadtimeModel:
    """Deadtime parameters.

    Attributes:
        tau_s: Busy time per accepted trigger, seconds.
        paralyzable: Whether arrivals during the busy window extend it.
    """

    tau_s: float = 10e-6
    paralyzable: bool = False

    def __post_init__(self) -> None:
        if self.tau_s <= 0:
            raise ValueError("tau must be positive")

    def live_fraction(self, rate_hz: float | np.ndarray) -> np.ndarray:
        """Fraction of triggers recorded at a given true rate.

        Non-paralyzable: ``1 / (1 + r tau)``; paralyzable: ``exp(-r tau)``.
        """
        rate = np.asarray(rate_hz, dtype=np.float64)
        if np.any(rate < 0):
            raise ValueError("rate must be non-negative")
        if self.paralyzable:
            return np.exp(-rate * self.tau_s)
        return 1.0 / (1.0 + rate * self.tau_s)

    def recorded_rate(self, rate_hz: float | np.ndarray) -> np.ndarray:
        """Observed trigger rate at a given true rate, Hz."""
        rate = np.asarray(rate_hz, dtype=np.float64)
        return rate * self.live_fraction(rate)

    def saturation_rate(self) -> float:
        """True rate maximizing the recorded rate.

        Non-paralyzable readouts saturate asymptotically at ``1/tau``
        (returned); paralyzable ones peak at exactly ``1/tau`` and then
        *lose* throughput.
        """
        return 1.0 / self.tau_s

    def apply(
        self, times_s: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Mark which of a sorted-or-not arrival-time series is recorded.

        Args:
            times_s: ``(n,)`` trigger arrival times (any order).
            rng: Unused; kept for API symmetry with stochastic models.

        Returns:
            ``(n,)`` boolean mask of recorded triggers (aligned with the
            input order).
        """
        times_s = np.asarray(times_s, dtype=np.float64)
        order = np.argsort(times_s, kind="stable")
        recorded_sorted = np.zeros(times_s.size, dtype=bool)
        busy_until = -np.inf
        for i, t in enumerate(times_s[order]):
            if t >= busy_until:
                recorded_sorted[i] = True
                busy_until = t + self.tau_s
            elif self.paralyzable:
                busy_until = t + self.tau_s
        mask = np.zeros(times_s.size, dtype=bool)
        mask[order] = recorded_sorted
        return mask
