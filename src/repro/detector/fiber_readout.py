"""Fiber-level readout simulation with ghost-hit ambiguity.

The default response model quantizes hit positions directly.  The real
readout (paper Fig. 1) is less kind: each tile is read by *independent*
x- and y-fiber arrays, so a layer observes two 1-D projections of its
energy deposits.  With one hit per layer the projections pair uniquely;
with two or more simultaneous hits in one layer, x and y clusters can be
combined in multiple ways — producing **ghost hits** at the wrong
crossings.  Energy matching between the x and y projections breaks most
ties (each projection measures the same deposit), but imperfect
resolution leaves a residual mis-pairing population: yet another
mechanism behind rings whose true error exceeds the propagated estimate.

This module simulates that chain for one layer at a time:

1. project deposits onto fired x and y fibers (with light-sharing onto
   neighbors),
2. cluster adjacent fired fibers per axis,
3. pair x/y clusters by energy compatibility (greedy best-match),
4. emit reconstructed hits at the paired crossings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.fibers import FiberGrid


@dataclass(frozen=True)
class FiberReadoutConfig:
    """Readout parameters.

    Attributes:
        grid: Fiber geometry shared by both axes.
        light_sharing: Fraction of a deposit's light collected by each
            nearest-neighbor fiber (the rest goes to the nearest fiber).
        fiber_noise_pe: Gaussian noise per fiber, in energy units (MeV
            equivalent).
        fiber_threshold: Fibers below this measured signal do not fire.
        energy_match_sigma: Relative energy tolerance when pairing x and
            y clusters.
    """

    grid: FiberGrid = field(default_factory=FiberGrid)
    light_sharing: float = 0.2
    fiber_noise_pe: float = 0.003
    fiber_threshold: float = 0.01
    energy_match_sigma: float = 0.15

    def __post_init__(self) -> None:
        if not (0.0 <= self.light_sharing < 0.5):
            raise ValueError("light_sharing must be in [0, 0.5)")
        if self.energy_match_sigma <= 0:
            raise ValueError("energy_match_sigma must be positive")


@dataclass
class AxisCluster:
    """A contiguous group of fired fibers along one axis.

    Attributes:
        position_cm: Energy-weighted cluster centroid.
        energy: Summed fiber signal.
    """

    position_cm: float
    energy: float


@dataclass
class LayerReadoutResult:
    """Reconstructed hits of one layer.

    Attributes:
        positions_xy: ``(m, 2)`` paired (x, y) hit positions, cm.
        energies: ``(m,)`` energy assigned to each hit (mean of the two
            projections).
        is_ghost: ``(m,)`` truth flag — True where the x and y clusters
            came from *different* true deposits (a mis-pairing).
        n_x_clusters: Clusters found on the x axis.
        n_y_clusters: Clusters found on the y axis.
    """

    positions_xy: np.ndarray
    energies: np.ndarray
    is_ghost: np.ndarray
    n_x_clusters: int
    n_y_clusters: int


def project_to_fibers(
    coords: np.ndarray,
    energies: np.ndarray,
    config: FiberReadoutConfig,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Deposit energy onto a 1-D fiber array.

    Each deposit lights its nearest fiber with fraction
    ``1 - 2*light_sharing`` and each neighbor with ``light_sharing``;
    per-fiber Gaussian noise is added and sub-threshold fibers zeroed.

    Args:
        coords: ``(k,)`` lateral deposit coordinates, cm.
        energies: ``(k,)`` deposit energies, MeV.
        config: Readout parameters.
        rng: Random generator.

    Returns:
        ``(signals, owners)``: per-fiber signal array of length
        ``grid.num_fibers``, and for each fiber the index of the deposit
        contributing most of its light (-1 for noise-only fibers).
    """
    grid = config.grid
    n = grid.num_fibers
    signals = np.zeros(n)
    best_contrib = np.zeros(n)
    owners = np.full(n, -1, dtype=np.int64)
    idx = grid.fiber_index(np.asarray(coords, dtype=np.float64))
    for j, (fiber, e) in enumerate(zip(idx, np.asarray(energies))):
        shares = [
            (fiber, e * (1.0 - 2.0 * config.light_sharing)),
            (fiber - 1, e * config.light_sharing),
            (fiber + 1, e * config.light_sharing),
        ]
        for f, amount in shares:
            if 0 <= f < n:
                signals[f] += amount
                if amount > best_contrib[f]:
                    best_contrib[f] = amount
                    owners[f] = j
    signals = signals + rng.normal(0.0, config.fiber_noise_pe, n)
    fired = signals >= config.fiber_threshold
    signals = np.where(fired, signals, 0.0)
    owners = np.where(fired, owners, -1)
    return signals, owners


def cluster_fibers(
    signals: np.ndarray,
    owners: np.ndarray,
    config: FiberReadoutConfig,
) -> tuple[list[AxisCluster], list[int]]:
    """Group adjacent fired fibers into clusters.

    Args:
        signals: Per-fiber signals from :func:`project_to_fibers`.
        owners: Dominant true-deposit index per fiber.
        config: Readout parameters.

    Returns:
        ``(clusters, cluster_owners)`` — the clusters and, per cluster,
        the dominant true deposit feeding it (-1 for pure noise).
    """
    grid = config.grid
    fired = np.nonzero(signals > 0)[0]
    clusters: list[AxisCluster] = []
    cluster_owners: list[int] = []
    if fired.size == 0:
        return clusters, cluster_owners
    breaks = np.nonzero(np.diff(fired) > 1)[0]
    groups = np.split(fired, breaks + 1)
    for group in groups:
        e = signals[group]
        centers = grid.fiber_center(group)
        total = float(e.sum())
        clusters.append(
            AxisCluster(
                position_cm=float((centers * e).sum() / total),
                energy=total,
            )
        )
        # Dominant owner by contributed signal.
        group_owners = owners[group]
        candidates, counts = np.unique(
            group_owners[group_owners >= 0], return_counts=True
        )
        cluster_owners.append(
            int(candidates[np.argmax(counts)]) if candidates.size else -1
        )
    return clusters, cluster_owners


def readout_layer(
    positions: np.ndarray,
    energies: np.ndarray,
    config: FiberReadoutConfig,
    rng: np.random.Generator,
) -> LayerReadoutResult:
    """Full x/y readout of one layer's deposits.

    Args:
        positions: ``(k, 2)`` true lateral (x, y) deposit positions, cm.
        energies: ``(k,)`` deposit energies, MeV.
        config: Readout parameters.
        rng: Random generator.

    Returns:
        A :class:`LayerReadoutResult` with paired hits and ghost truth.
    """
    positions = np.atleast_2d(np.asarray(positions, dtype=np.float64))
    energies = np.atleast_1d(np.asarray(energies, dtype=np.float64))
    x_sig, x_own = project_to_fibers(positions[:, 0], energies, config, rng)
    y_sig, y_own = project_to_fibers(positions[:, 1], energies, config, rng)
    x_clusters, x_owner = cluster_fibers(x_sig, x_own, config)
    y_clusters, y_owner = cluster_fibers(y_sig, y_own, config)

    # Greedy energy matching: best-compatible pairs first.
    pairs: list[tuple[int, int]] = []
    used_x: set[int] = set()
    used_y: set[int] = set()
    scored = []
    for i, cx in enumerate(x_clusters):
        for j, cy in enumerate(y_clusters):
            mean_e = 0.5 * (cx.energy + cy.energy)
            if mean_e <= 0:
                continue
            score = abs(cx.energy - cy.energy) / (
                config.energy_match_sigma * mean_e
            )
            scored.append((score, i, j))
    for score, i, j in sorted(scored):
        if i in used_x or j in used_y:
            continue
        pairs.append((i, j))
        used_x.add(i)
        used_y.add(j)

    out_pos, out_e, ghosts = [], [], []
    for i, j in pairs:
        out_pos.append([x_clusters[i].position_cm, y_clusters[j].position_cm])
        out_e.append(0.5 * (x_clusters[i].energy + y_clusters[j].energy))
        ghosts.append(
            x_owner[i] != y_owner[j] or x_owner[i] == -1 or y_owner[j] == -1
        )
    return LayerReadoutResult(
        positions_xy=np.asarray(out_pos).reshape(-1, 2),
        energies=np.asarray(out_e),
        is_ghost=np.asarray(ghosts, dtype=bool),
        n_x_clusters=len(x_clusters),
        n_y_clusters=len(y_clusters),
    )
