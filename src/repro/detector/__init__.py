"""Detector response: from true interactions to digitized events.

Models the measurement chain of paper Fig. 1 — WLS-fiber position
quantization, SiPM photostatistics, electronics noise, trigger thresholds —
plus the *unmodeled* noise terms (light-collection nonuniformity, response
tails) that make propagation-of-error ``d eta`` estimates systematically
wrong, which is the paper's central motivation for the dEta network.
"""

from repro.detector.response import (
    DetectorResponse,
    EventSet,
    ResponseConfig,
)
from repro.detector.perturb import perturb_events
from repro.detector.deadtime import DeadtimeModel
from repro.detector.sipm import SiPMModel
from repro.detector.fiber_readout import (
    FiberReadoutConfig,
    LayerReadoutResult,
    readout_layer,
)
from repro.detector.coincidence import (
    CoincidenceConfig,
    PileupResult,
    build_events_with_pileup,
)

__all__ = [
    "DetectorResponse",
    "ResponseConfig",
    "EventSet",
    "perturb_events",
    "CoincidenceConfig",
    "PileupResult",
    "build_events_with_pileup",
    "DeadtimeModel",
    "SiPMModel",
    "FiberReadoutConfig",
    "LayerReadoutResult",
    "readout_layer",
]
