"""Mechanistic SiPM photodetection model.

The default response model represents SiPM pathologies with an ad-hoc
heavy-tail probability (``ResponseConfig.tail_probability``).  This
module models them mechanistically, which matters when studying *why*
the propagated energy errors have tails:

* **Photon detection**: each incident scintillation photon fires a
  microcell with probability ``pde`` (Poisson photoelectron statistics).
* **Optical crosstalk**: every avalanche triggers further avalanches
  with probability ``p_crosstalk`` each, a Galton--Watson branching
  process.  The total count then follows a Borel--Tanner (generalized
  Poisson) law with mean ``n/(1-p)`` and variance inflated by
  ``1/(1-p)^3`` — sub-Gaussian tails become *heavy*.
* **Afterpulsing**: each avalanche re-fires later with probability
  ``p_afterpulse`` (counted into the same integration gate).
* **Saturation**: a device has ``n_microcells``; simultaneous avalanches
  beyond that are lost, compressing the response at high light levels:
  ``n_fired = N (1 - exp(-n_aval / N))``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SiPMModel:
    """SiPM parameters.

    Attributes:
        pde: Photon detection efficiency (photon -> primary avalanche).
        p_crosstalk: Per-avalanche probability of triggering one more
            (branching parameter; must be < 1 for a finite cascade).
        p_afterpulse: Per-avalanche probability of one delayed re-fire
            inside the integration gate.
        n_microcells: Microcells per readout channel (saturation scale);
            None disables saturation.
        gain_sigma: Relative cell-to-cell gain spread (adds a smooth
            multiplicative term to the measured charge).
    """

    pde: float = 0.4
    p_crosstalk: float = 0.15
    p_afterpulse: float = 0.05
    n_microcells: int | None = 3600
    gain_sigma: float = 0.05

    def __post_init__(self) -> None:
        if not (0.0 < self.pde <= 1.0):
            raise ValueError("pde must be in (0, 1]")
        if not (0.0 <= self.p_crosstalk < 1.0):
            raise ValueError("p_crosstalk must be in [0, 1)")
        if not (0.0 <= self.p_afterpulse < 1.0):
            raise ValueError("p_afterpulse must be in [0, 1)")
        if self.n_microcells is not None and self.n_microcells < 1:
            raise ValueError("n_microcells must be positive")
        if self.gain_sigma < 0:
            raise ValueError("gain_sigma must be non-negative")

    # -- analytic moments (for tests and calibration) -------------------------

    def mean_avalanches(self, n_photons: float) -> float:
        """Expected avalanche count before saturation."""
        primaries = n_photons * self.pde
        branching = primaries / (1.0 - self.p_crosstalk)
        return branching * (1.0 + self.p_afterpulse)

    def excess_variance_factor(self) -> float:
        """Variance inflation of the branching cascade vs pure Poisson.

        For a Borel--Tanner cascade with branching parameter ``p``,
        ``Var = mean_primaries / (1-p)^3``, i.e. the Fano factor relative
        to the cascaded mean is ``1/(1-p)^2``.
        """
        return 1.0 / (1.0 - self.p_crosstalk) ** 2

    # -- simulation -----------------------------------------------------------

    def _branch(self, primaries: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Galton--Watson crosstalk cascade (vectorized over channels).

        Each generation's avalanches spawn Binomial(n, p) children; the
        loop runs until extinction (guaranteed for p < 1; expected depth
        is tiny for realistic p).
        """
        total = primaries.astype(np.int64).copy()
        active = primaries.astype(np.int64)
        while np.any(active > 0):
            children = rng.binomial(active, self.p_crosstalk)
            total += children
            active = children
        return total

    def detect(
        self, n_photons: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Measured photoelectron-equivalent charge per channel.

        Args:
            n_photons: ``(k,)`` expected scintillation photons reaching
                each channel (Poisson means).
            rng: Random generator.

        Returns:
            ``(k,)`` float charges in primary-avalanche units (so an
            ideal device returns ~``n_photons * pde``).
        """
        n_photons = np.asarray(n_photons, dtype=np.float64)
        if np.any(n_photons < 0):
            raise ValueError("photon counts must be non-negative")
        primaries = rng.poisson(n_photons * self.pde)
        avalanches = self._branch(primaries, rng)
        if self.p_afterpulse > 0:
            avalanches = avalanches + rng.binomial(
                avalanches, self.p_afterpulse
            )
        if self.n_microcells is not None:
            n = float(self.n_microcells)
            fired = n * (1.0 - np.exp(-avalanches / n))
        else:
            fired = avalanches.astype(np.float64)
        if self.gain_sigma > 0:
            fired = fired * rng.normal(1.0, self.gain_sigma, fired.shape)
        return np.maximum(fired, 0.0)

    def linearity_correction(self, measured: np.ndarray) -> np.ndarray:
        """Invert the mean saturation curve (charge -> avalanche estimate).

        Args:
            measured: Measured charges (post-saturation).

        Returns:
            Estimated avalanche counts; values at/above the saturation
            ceiling map to the ceiling's inverse asymptote (clipped).
        """
        if self.n_microcells is None:
            return np.asarray(measured, dtype=np.float64)
        n = float(self.n_microcells)
        x = np.clip(np.asarray(measured, dtype=np.float64) / n, 0.0, 1.0 - 1e-9)
        return -n * np.log1p(-x)
