"""Physical constants and material properties used throughout the simulation.

All energies are in MeV, lengths in cm, times in seconds unless stated
otherwise.  The material parameterizations are deliberately simple (power-law
fits to the dominant photon interaction channels) but carry the correct
energy dependence in the 0.03--30 MeV band where ADAPT operates.
"""

from __future__ import annotations

from dataclasses import dataclass

# --- fundamental constants -------------------------------------------------

#: Electron rest-mass energy, MeV.
ELECTRON_MASS_MEV: float = 0.51099895

#: Classical electron radius, cm.
CLASSICAL_ELECTRON_RADIUS_CM: float = 2.8179403262e-13

#: Avogadro's number, 1/mol.
AVOGADRO: float = 6.02214076e23

#: Speed of light, cm/s.
SPEED_OF_LIGHT_CM_S: float = 2.99792458e10

# --- unit helpers ----------------------------------------------------------

KEV_PER_MEV: float = 1000.0


def kev(value_mev: float) -> float:
    """Convert an energy in MeV to keV."""
    return value_mev * KEV_PER_MEV


def mev(value_kev: float) -> float:
    """Convert an energy in keV to MeV."""
    return value_kev / KEV_PER_MEV


# --- materials ---------------------------------------------------------------


@dataclass(frozen=True)
class Material:
    """Photon-interaction properties of a detector material.

    The photoelectric cross section is parameterized as
    ``sigma_pe ~ pe_coeff * E^-pe_index`` (cm^2/g) and the Compton cross
    section uses the Klein--Nishina formula per electron scaled by the
    electron density.  This captures the correct crossover between the
    photoelectric-dominated regime (< ~0.3 MeV for CsI) and the
    Compton-dominated MeV band.

    Attributes:
        name: Human-readable material name.
        density_g_cm3: Bulk density in g/cm^3.
        z_eff: Effective atomic number (drives photoelectric absorption).
        a_eff: Effective atomic mass in g/mol.
        electrons_per_gram: Electron density, electrons/g.
        pe_coeff: Photoelectric mass-attenuation coefficient at 1 MeV
            (cm^2/g); extrapolated with ``pe_index``.
        pe_index: Photoelectric energy power-law index (~3 in this band).
    """

    name: str
    density_g_cm3: float
    z_eff: float
    a_eff: float
    electrons_per_gram: float
    pe_coeff: float
    pe_index: float

    @property
    def electron_density_cm3(self) -> float:
        """Electrons per cm^3."""
        return self.electrons_per_gram * self.density_g_cm3


#: CsI(Na) scintillator, ADAPT's imaging-calorimeter tile material.
CSI = Material(
    name="CsI(Na)",
    density_g_cm3=4.51,
    z_eff=54.0,
    a_eff=129.9,
    electrons_per_gram=2.51e23,
    pe_coeff=3.04e-3,
    pe_index=3.0,
)

#: Plastic scintillator (for comparison / anticoincidence studies).
PLASTIC = Material(
    name="EJ-200 plastic",
    density_g_cm3=1.023,
    z_eff=5.7,
    a_eff=11.2,
    electrons_per_gram=3.37e23,
    pe_coeff=2.0e-6,
    pe_index=3.1,
)

# --- detector defaults (from the ADAPT instrument papers) -------------------

#: Number of scintillating tile layers in the ADAPT demonstrator.
ADAPT_NUM_LAYERS: int = 4

#: Lateral tile size, cm (one tile spans the full layer in the demonstrator).
ADAPT_TILE_SIZE_CM: float = 40.0

#: Tile thickness, cm.
ADAPT_TILE_THICKNESS_CM: float = 1.5

#: Vertical gap between consecutive tile layers, cm.
ADAPT_LAYER_GAP_CM: float = 10.0

#: WLS fiber pitch: spatial quantization of hit positions in x and y, cm.
ADAPT_FIBER_PITCH_CM: float = 0.3

# --- APT (the full orbital instrument, paper Section VI) --------------------

#: Number of tracker/calorimeter tile layers in the full APT concept.
APT_NUM_LAYERS: int = 20

#: Lateral tile size of the APT stack, cm (~1 m^2 aperture).
APT_TILE_SIZE_CM: float = 100.0

#: APT tile thickness, cm.
APT_TILE_THICKNESS_CM: float = 1.5

#: Vertical gap between APT layers, cm (more compact than the balloon
#: demonstrator).
APT_LAYER_GAP_CM: float = 2.5

#: Minimum simulated photon energy, MeV (paper Section IV, footnote 2).
MIN_PHOTON_ENERGY_MEV: float = 0.030

#: Band-spectrum high-energy index used by the paper (footnote 2).
BAND_BETA: float = -2.35
