"""Iterative refinement: robust almost-linear least squares.

Maximizing the joint ring likelihood over the unit sphere is equivalent to
an almost-linear least-squares problem (paper Section II): ignoring the
unit-norm constraint, the optimum of ``sum_j w_j (c_j . s - eta_j)^2``
solves the 3x3 normal equations ``(sum_j w_j c_j c_j^T) s = sum_j w_j
eta_j c_j``; re-normalizing and iterating converges rapidly because the
constraint surface is locally flat.

Robustness against background / mis-reconstructed rings follows the
paper's scheme: each iteration keeps only the rings whose residual at the
current estimate is within a chi gate of their ``d eta``, then re-solves on
that subset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.reconstruction.rings import RingSet


@dataclass(frozen=True)
class RefinementConfig:
    """Refinement parameters.

    Attributes:
        gate_sigma: Keep rings with ``|residual| <= gate_sigma * d eta``.
        min_rings: If gating keeps fewer than this, the ``min_rings`` rings
            with smallest normalized residual are used instead (the
            estimate must never run on an empty set).
        max_iterations: Cap on gate-and-solve rounds.
        tol_deg: Convergence threshold on the angular update.
        ridge: Tikhonov regularization added to the normal matrix (scaled
            by its trace) to keep near-degenerate geometries solvable.
    """

    gate_sigma: float = 3.0
    min_rings: int = 5
    max_iterations: int = 30
    tol_deg: float = 0.05
    ridge: float = 1e-9


@dataclass
class RefinementResult:
    """Outcome of refinement.

    Attributes:
        direction: ``(3,)`` refined unit source direction.
        used: ``(m,)`` mask of rings included in the final solve.
        iterations: Gate-and-solve rounds executed.
        converged: Whether the angular update fell below tolerance.
    """

    direction: np.ndarray
    used: np.ndarray
    iterations: int
    converged: bool


def _solve_weighted(rings: RingSet, mask: np.ndarray, ridge: float) -> np.ndarray | None:
    """One weighted least-squares solve over the masked rings."""
    axis = rings.axis[mask]
    eta = rings.eta[mask]
    w = 1.0 / rings.deta[mask] ** 2  # reprolint: disable=NUM002 -- deta >= DETA_FLOOR > 0 (reconstruction.error_propagation)
    a = (axis * w[:, None]).T @ axis
    b = (axis * (w * eta)[:, None]).sum(axis=0)
    a += np.eye(3) * (ridge * max(np.trace(a), 1.0))
    try:
        s = np.linalg.solve(a, b)
    except np.linalg.LinAlgError:
        return None
    norm = np.linalg.norm(s)
    if norm == 0.0 or not np.all(np.isfinite(s)):
        return None
    return s / norm


def refine_source(
    rings: RingSet,
    initial: np.ndarray,
    config: RefinementConfig | None = None,
) -> RefinementResult:
    """Refine a source estimate with robust iterative least squares.

    Args:
        rings: All rings available to localization.
        initial: ``(3,)`` starting unit direction (from approximation or a
            previous pipeline stage).
        config: Refinement parameters.

    Returns:
        A :class:`RefinementResult`; if every solve fails the initial
        direction is returned unconverged.
    """
    cfg = config or RefinementConfig()
    s = np.asarray(initial, dtype=np.float64)
    s = s / np.linalg.norm(s)
    m = rings.num_rings
    used = np.ones(m, dtype=bool)
    if m == 0:
        return RefinementResult(direction=s, used=used, iterations=0, converged=False)

    converged = False
    iterations = 0
    for iterations in range(1, cfg.max_iterations + 1):
        normalized = np.abs(rings.residuals(s)) / rings.deta  # reprolint: disable=NUM002 -- deta >= DETA_FLOOR > 0 (reconstruction.error_propagation)
        gate = normalized <= cfg.gate_sigma
        if gate.sum() < min(cfg.min_rings, m):
            order = np.argsort(normalized)
            gate = np.zeros(m, dtype=bool)
            gate[order[: min(cfg.min_rings, m)]] = True
        s_new = _solve_weighted(rings, gate, cfg.ridge)
        if s_new is None:
            break
        used = gate
        step = np.degrees(np.arccos(np.clip(np.dot(s, s_new), -1.0, 1.0)))
        s = s_new
        if step < cfg.tol_deg:
            converged = True
            break
    return RefinementResult(
        direction=s, used=used, iterations=iterations, converged=converged
    )
