"""Probabilistic ring model and likelihood evaluation.

Each ring constrains the source direction ``s`` through a radially
symmetric Gaussian in the residual ``c . s - eta`` with width ``d eta``
(paper footnote 1).  The joint negative log-likelihood over rings is the
weighted sum of squared residuals; a capped variant bounds the influence of
any single (possibly background or mis-reconstructed) ring.
"""

from __future__ import annotations

import numpy as np

from repro.reconstruction.rings import RingSet


def ring_chi_square(rings: RingSet, directions: np.ndarray) -> np.ndarray:
    """Per-ring, per-direction normalized squared residuals.

    Args:
        rings: ``m`` rings.
        directions: ``(d, 3)`` candidate unit directions (or ``(3,)``).

    Returns:
        ``(m, d)`` array of ``((c . s - eta)/d eta)^2`` (``(m,)`` if a
        single direction was given).
    """
    directions = np.asarray(directions, dtype=np.float64)
    single = directions.ndim == 1
    dirs = np.atleast_2d(directions)
    resid = rings.axis @ dirs.T - rings.eta[:, None]
    chi2 = (resid / rings.deta[:, None]) ** 2  # reprolint: disable=NUM002 -- RingSet.deta is floored at DETA_FLOOR by reconstruction.error_propagation
    return chi2[:, 0] if single else chi2


def capped_chi_square(
    rings: RingSet, directions: np.ndarray, cap: float = 9.0
) -> np.ndarray:
    """Summed chi-square per direction with per-ring influence capped.

    Capping (a truncated-quadratic robust loss) keeps background rings from
    dominating the approximation stage.

    Args:
        rings: ``m`` rings.
        directions: ``(d, 3)`` candidate unit directions.
        cap: Maximum chi-square contribution of a single ring.

    Returns:
        ``(d,)`` capped chi-square sums.
    """
    chi2 = ring_chi_square(rings, np.atleast_2d(directions))
    return np.minimum(chi2, cap).sum(axis=0)


def joint_log_likelihood(rings: RingSet, direction: np.ndarray) -> float:
    """Joint log-likelihood of all rings at one direction (up to a constant).

    ``log L = -1/2 sum_j [ ((c_j . s - eta_j)/d eta_j)^2 + 2 log d eta_j ]``
    """
    chi2 = ring_chi_square(rings, direction)
    return float(-0.5 * np.sum(chi2) - np.sum(np.log(rings.deta)))  # reprolint: disable=NUM001 -- deta >= DETA_FLOOR > 0 (reconstruction.error_propagation)
