"""GRB source localization from Compton rings.

Implements the paper's two-stage localization: a sampled *approximation*
that seeds a coarse source direction from candidate points on a few rings'
cones, followed by robust *iterative refinement* that solves the
almost-linear least-squares problem over the rings it currently trusts.
"""

from repro.localization.likelihood import (
    capped_chi_square,
    joint_log_likelihood,
    ring_chi_square,
)
from repro.localization.approximation import approximate_source
from repro.localization.hierarchy import (
    CellSet,
    HierarchicalResult,
    SkymapConfig,
    coarse_cells,
    hierarchical_skymap,
)
from repro.localization.refinement import RefinementConfig, refine_source
from repro.localization.pipeline import (
    BaselineConfig,
    LocalizationOutcome,
    localize_baseline,
    localize_rings,
)
from repro.localization.skymap import SkyGrid, SkyMap, compute_skymap, render_ascii
from repro.localization.uncertainty import error_ellipse_deg, predicted_error_deg

__all__ = [
    "ring_chi_square",
    "capped_chi_square",
    "joint_log_likelihood",
    "approximate_source",
    "refine_source",
    "RefinementConfig",
    "localize_baseline",
    "localize_rings",
    "BaselineConfig",
    "LocalizationOutcome",
    "SkyGrid",
    "SkyMap",
    "compute_skymap",
    "render_ascii",
    "SkymapConfig",
    "CellSet",
    "HierarchicalResult",
    "coarse_cells",
    "hierarchical_skymap",
    "predicted_error_deg",
    "error_ellipse_deg",
]
