"""Approximation stage: seed a coarse source direction.

The paper's approximation "picks a small random sample of incoming Compton
rings and considers the set of candidate source directions that lie close
to at least one of these rings, choosing the direction s0 that maximizes
the joint likelihood of the sample."

Concretely: each sampled ring's cone ``{s : c . s = eta}`` is discretized
into azimuthal candidate points; every candidate is scored against the
sampled rings with a robust (capped) chi-square, and the best candidate
wins.  Candidates below the horizon are discarded (Earth blocks ADAPT's
view from below).
"""

from __future__ import annotations

import numpy as np

from repro.localization.likelihood import capped_chi_square
from repro.reconstruction.rings import RingSet

#: Candidates must satisfy s_z >= this (slightly below the horizon to keep
#: sources near 90 degrees reachable despite measurement error).
HORIZON_MIN_Z: float = -0.05


def cone_points(
    axis: np.ndarray, eta: np.ndarray, n_azimuth: int
) -> np.ndarray:
    """Discretize each ring's cone into candidate unit directions.

    Args:
        axis: ``(k, 3)`` ring axes.
        eta: ``(k,)`` cone-opening cosines (clipped into [-1, 1]).
        n_azimuth: Number of azimuthal samples per cone.

    Returns:
        ``(k * n_azimuth, 3)`` candidate unit vectors.
    """
    axis = np.atleast_2d(axis)
    eta = np.clip(np.atleast_1d(eta), -1.0, 1.0)
    k = axis.shape[0]
    sin_t = np.sqrt(1.0 - eta**2)

    helper = np.zeros_like(axis)
    near_z = np.abs(axis[:, 2]) > 0.999
    helper[near_z, 0] = 1.0
    helper[~near_z, 2] = 1.0
    u = np.cross(helper, axis)
    u /= np.linalg.norm(u, axis=1, keepdims=True)
    v = np.cross(axis, u)

    phi = np.linspace(0.0, 2.0 * np.pi, n_azimuth, endpoint=False)
    cos_p, sin_p = np.cos(phi), np.sin(phi)
    # (k, n_azimuth, 3)
    pts = (
        eta[:, None, None] * axis[:, None, :]
        + sin_t[:, None, None]
        * (cos_p[None, :, None] * u[:, None, :] + sin_p[None, :, None] * v[:, None, :])
    )
    return pts.reshape(k * n_azimuth, 3)


def approximate_source(
    rings: RingSet,
    rng: np.random.Generator,
    sample_size: int = 12,
    n_azimuth: int = 72,
    cap: float = 4.0,
    horizon_min_z: float = HORIZON_MIN_Z,
    top_k: int = 1,
    min_separation_deg: float = 10.0,
) -> np.ndarray | None:
    """Pick initial source direction(s) from a random ring sample.

    Candidate directions are drawn from the sampled rings' cones (the
    sample bounds the candidate set, keeping the stage cheap, exactly as in
    the paper) and scored with a capped chi-square against *all* rings.
    Scoring only the sample's joint likelihood, as a literal reading of the
    paper suggests, proved catastrophically fragile at background ratios of
    2-3x: the majority-background sample outvotes the source and the seed
    lands in a background basin that refinement cannot escape.  Full-ring
    voting keeps the stage O(sample * n_azimuth * rings) — still far
    cheaper than refinement — and the residual baseline error is then
    driven by the paper's two mechanisms (wrong ``d eta`` weights and
    background dilution) rather than by sampling noise.

    Args:
        rings: All rings entering localization.
        rng: Random generator (controls the ring sample).
        sample_size: Number of rings sampled (all rings if fewer exist).
        n_azimuth: Cone discretization per sampled ring.
        cap: Robust chi-square cap per ring.
        horizon_min_z: Reject candidates with smaller z component.
        top_k: Number of seed directions to return (mutually separated by
            at least ``min_separation_deg``).
        min_separation_deg: Angular separation enforced between returned
            seeds, so multi-start refinement explores distinct basins.

    Returns:
        ``(3,)`` unit direction when ``top_k == 1``; ``(t, 3)`` array of up
        to ``top_k`` seeds otherwise; None when no rings / no above-horizon
        candidates exist.
    """
    m = rings.num_rings
    if m == 0:
        return None
    k = min(sample_size, m)
    idx = rng.choice(m, size=k, replace=False)
    sample = rings.select(np.isin(np.arange(m), idx))

    candidates = cone_points(sample.axis, sample.eta, n_azimuth)
    above = candidates[:, 2] >= horizon_min_z
    candidates = candidates[above]
    if candidates.shape[0] == 0:
        return None
    scores = capped_chi_square(rings, candidates, cap=cap)
    order = np.argsort(scores)
    if top_k <= 1:
        s0 = candidates[order[0]]
        return s0 / np.linalg.norm(s0)
    min_cos = np.cos(np.deg2rad(min_separation_deg))
    seeds: list[np.ndarray] = []
    for i in order:
        c = candidates[i] / np.linalg.norm(candidates[i])
        if all(float(c @ s) < min_cos for s in seeds):
            seeds.append(c)
        if len(seeds) >= top_k:
            break
    return np.asarray(seeds)
