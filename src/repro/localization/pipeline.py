"""Baseline (pre-ML) localization pipeline and its oracle variants.

``localize_baseline`` is the paper's prior pipeline: reconstruct rings,
filter, approximate, refine.  Two oracle switches reproduce the paper's
Fig. 4 diagnostic conditions:

* ``drop_background=True`` removes every true background ring before
  localization (Fig. 4 middle group);
* ``true_deta=True`` replaces the propagated ``d eta`` with each ring's
  true ``eta`` error (Fig. 4 right group).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.detector.response import EventSet
from repro.localization.approximation import approximate_source
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.localization.hierarchy import SkymapConfig, hierarchical_skymap
from repro.localization.likelihood import capped_chi_square
from repro.localization.refinement import RefinementConfig, refine_source
from repro.localization.skymap import SkyMap
from repro.reconstruction.error_propagation import DETA_FLOOR
from repro.reconstruction.filters import FilterConfig, quality_filter
from repro.reconstruction.rings import RingSet, build_rings
from repro.sources.grb import LABEL_GRB


@dataclass(frozen=True)
class BaselineConfig:
    """Parameters of the baseline localization pipeline.

    Attributes:
        filter_config: Ring quality-filter thresholds.
        refinement: Robust least-squares parameters.
        approx_sample_size: Rings sampled by the approximation stage.
        approx_n_azimuth: Cone discretization of the approximation stage.
    """

    filter_config: FilterConfig = field(default_factory=FilterConfig)
    refinement: RefinementConfig = field(default_factory=RefinementConfig)
    approx_sample_size: int = 12
    approx_n_azimuth: int = 72
    #: Number of approximation seeds refined; the result with the best
    #: robust score wins.  Multi-start costs ~2x and removes most
    #: wrong-basin failures.
    num_seeds: int = 3


@dataclass
class LocalizationOutcome:
    """Result of localizing one exposure.

    Attributes:
        direction: ``(3,)`` estimated unit source direction, or None when
            localization could not run (no usable rings).
        rings: The rings that entered localization (post-filter).
        used: Mask over ``rings`` of those in the final solve.
        iterations: Refinement iterations executed.
        converged: Refinement convergence flag.
        sky: Optional posterior sky map with credible regions (present
            when the caller requested one via a
            :class:`~repro.localization.hierarchy.SkymapConfig`).
    """

    direction: np.ndarray | None
    rings: RingSet
    used: np.ndarray
    iterations: int
    converged: bool
    sky: SkyMap | None = None

    def error_degrees(self, true_direction: np.ndarray) -> float:
        """Angular error versus the true source direction, degrees.

        Failed localizations are scored at the worst possible error (180),
        so containment statistics penalize rather than silently drop them.
        """
        if self.direction is None:
            return 180.0
        c = float(np.clip(np.dot(self.direction, true_direction), -1.0, 1.0))
        return float(np.degrees(np.arccos(c)))


@obs_trace.traced("localize.localize_rings")
def localize_rings(
    rings: RingSet,
    rng: np.random.Generator,
    config: BaselineConfig | None = None,
    initial: np.ndarray | None = None,
    reseed: bool = False,
    skymap: SkymapConfig | None = None,
) -> LocalizationOutcome:
    """Approximate + refine over a prepared ring set.

    Args:
        rings: Rings entering localization (already filtered).
        rng: Random generator (approximation sampling).
        config: Pipeline parameters.
        initial: Optional seed direction; approximation is skipped when
            provided (unless ``reseed``).
        reseed: With ``initial``, also run the approximation stage and
            refine from both the fresh seeds and ``initial`` — used by the
            ML iteration so a cleaned ring set can pull the estimate out
            of a wrong basin instead of only polishing it.
        skymap: When set, also run the hierarchical sky search over
            ``rings`` and attach the posterior map (with 68/90% credible
            regions) to the outcome's ``sky`` field.

    Returns:
        A :class:`LocalizationOutcome`.
    """
    obs_metrics.inc("localize.calls")
    cfg = config or BaselineConfig()
    if rings.num_rings == 0:
        return LocalizationOutcome(
            direction=None,
            rings=rings,
            used=np.zeros(0, dtype=bool),
            iterations=0,
            converged=False,
        )
    seed_list: list[np.ndarray] = []
    if initial is not None:
        seed_list.append(np.asarray(initial, dtype=np.float64))
    if initial is None or reseed:
        with obs_trace.span("localize.approximate"):
            found = approximate_source(
                rings,
                rng,
                sample_size=cfg.approx_sample_size,
                n_azimuth=cfg.approx_n_azimuth,
                top_k=cfg.num_seeds,
            )
        if found is not None:
            seed_list.extend(np.atleast_2d(found))
    if not seed_list:
        return LocalizationOutcome(
            direction=None,
            rings=rings,
            used=np.zeros(rings.num_rings, dtype=bool),
            iterations=0,
            converged=False,
        )
    seeds = np.atleast_2d(np.asarray(seed_list))

    # Refine every seed, then score all refined candidates with a single
    # batched capped-chi-square evaluation (one (m, k) residual matrix
    # instead of k separate (m, 1) passes).
    with obs_trace.span("localize.refine"):
        results = [refine_source(rings, seed, cfg.refinement) for seed in seeds]
        candidates = np.stack([r.direction for r in results], axis=0)
        scores = capped_chi_square(rings, candidates)
    best = None
    best_score = np.inf
    for result, score in zip(results, scores):
        if score < best_score:
            best_score = float(score)
            best = result
    assert best is not None
    sky = None
    if skymap is not None:
        sky = hierarchical_skymap(rings, skymap).sky
    return LocalizationOutcome(
        direction=best.direction,
        rings=rings,
        used=best.used,
        iterations=best.iterations,
        converged=best.converged,
        sky=sky,
    )


def prepare_rings(
    events: EventSet,
    config: BaselineConfig | None = None,
    drop_background: bool = False,
    true_deta: bool = False,
) -> RingSet:
    """Reconstruct, filter, and optionally apply the Fig. 4 oracles.

    Args:
        events: Digitized events.
        config: Pipeline parameters (filter thresholds).
        drop_background: Remove rings from true background photons.
        true_deta: Replace propagated ``d eta`` with the true ``eta`` error
            (floored at the propagation floor).

    Returns:
        The ring set entering localization.
    """
    cfg = config or BaselineConfig()
    with obs_trace.span("reconstruct.prepare_rings"):
        rings = build_rings(events)
        n_built = rings.num_rings
        rings = rings.select(quality_filter(rings, events, cfg.filter_config))
        obs_metrics.inc("rings.built", n_built)
        obs_metrics.inc("rings.rejected", n_built - rings.num_rings)
    if drop_background:
        rings = rings.select(rings.labels == LABEL_GRB)
    if true_deta and rings.num_rings > 0:
        if rings.source_direction is None:
            raise ValueError("true_deta oracle requires a true source direction")
        rings = rings.with_deta(np.maximum(rings.true_eta_errors(), DETA_FLOOR))
    return rings


def localize_baseline(
    events: EventSet,
    rng: np.random.Generator,
    config: BaselineConfig | None = None,
    drop_background: bool = False,
    true_deta: bool = False,
    skymap: SkymapConfig | None = None,
) -> LocalizationOutcome:
    """Run the full baseline pipeline on digitized events.

    Args:
        events: Digitized events from one exposure.
        rng: Random generator.
        config: Pipeline parameters.
        drop_background: Oracle — remove true background rings (Fig. 4).
        true_deta: Oracle — use true ``eta`` errors as ``d eta`` (Fig. 4).
        skymap: When set, attach a hierarchical posterior sky map to the
            outcome (see :func:`localize_rings`).

    Returns:
        A :class:`LocalizationOutcome`.
    """
    cfg = config or BaselineConfig()
    rings = prepare_rings(
        events, cfg, drop_background=drop_background, true_deta=true_deta
    )
    return localize_rings(rings, rng, cfg, skymap=skymap)
