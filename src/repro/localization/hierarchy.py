"""Coarse-to-fine hierarchical sky search with calibrated credible regions.

The flat :func:`~repro.localization.skymap.compute_skymap` scan evaluates
every ring against every pixel of a dense grid — cost grows as
``1/resolution^2`` and a 0.5-degree hemisphere already holds ~10^5
pixels.  But a GRB posterior is sparse: almost all mass sits in a few
square degrees.  This module exploits that the way HEALPix-based
localizers do (the COSI BGO pipeline in PAPERS.md): start from a coarse
equal-area pixelization, evaluate the ring likelihood there, then
repeatedly *split only the promising cells four ways* until the target
resolution is reached.

Selection per level is "top-k **plus** margin": the ``top_k`` cells by
posterior mass are always refined, and so is every cell whose
log-posterior is within ``margin`` of the current maximum.  The margin
guard is what keeps multimodal maps honest — two well-separated modes of
comparable likelihood both stay in the refinement frontier even when
``top_k`` is small, so neither is frozen at coarse resolution.

Every evaluation is *resolution-matched*: a cell is scored with each
ring's width broadened to the cell scale
(``sigma^2 = deta^2 + half_width^2``, see :func:`evaluate_cells`), so a
razor-thin ring corridor threading a coarse cell between centers cannot
make the cell look empty and steer the refinement onto the wrong
branch.  At the leaves the same term accounts for the pixelization,
which is what makes the emitted credible regions calibratable.

The leaves form a valid (mixed-resolution) partition of the search
region, so the result is an ordinary :class:`~repro.localization.skymap.SkyMap`
over a :class:`~repro.localization.skymap.SkyGrid` whose pixel areas are
exact cell solid angles — every downstream credible-region tool applies
unchanged.  See ``docs/localization.md`` for the algorithm writeup and
the containment-calibration methodology.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.localization.skymap import SkyGrid, SkyMap
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.reconstruction.rings import RingSet


@dataclass(frozen=True)
class SkymapConfig:
    """Parameters of the hierarchical sky search.

    Attributes:
        coarse_resolution_deg: Pixel spacing of the level-0 grid.
        resolution_deg: Target effective resolution of the refined
            region; the number of refinement levels is
            ``ceil(log2(coarse/target))`` (cell widths halve per split).
        top_k: Cells refined per level regardless of margin.
        margin: Log-posterior window below the per-level maximum within
            which *every* cell is refined (the multimodal guard).  In
            chi-square units a margin ``m`` keeps cells up to
            ``2 m`` above the best cell's capped chi-square.
        max_polar_deg: Search-region extent from zenith (matches the
            flat grid's default: slightly past the horizon).
        cap: Robust per-ring chi-square cap (None for the pure Gaussian
            model); same semantics as :func:`compute_skymap`.
        temperature: Likelihood temperature ``T``: the capped joint
            chi-square is divided by ``T`` before exponentiation.
            ``T = 1`` is the raw model; ``T > 1`` widens the posterior.
            Ring widths systematically understate the estimator's real
            dispersion (the paper's motivating gap), so raw regions are
            overconfident; fitting ``T`` on a seeded campaign
            (:func:`repro.experiments.calibration.fit_temperature`) is
            what makes the emitted confidence regions *calibrated*.
    """

    coarse_resolution_deg: float = 8.0
    resolution_deg: float = 0.5
    top_k: int = 16
    margin: float = 6.0
    max_polar_deg: float = 95.0
    cap: float | None = 25.0
    temperature: float = 1.0

    def __post_init__(self) -> None:
        if self.coarse_resolution_deg <= 0 or self.resolution_deg <= 0:
            raise ValueError("resolutions must be positive")
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")
        if self.resolution_deg > self.coarse_resolution_deg:
            raise ValueError(
                "target resolution must not exceed the coarse resolution"
            )
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.margin < 0:
            raise ValueError("margin must be >= 0")
        if self.max_polar_deg <= 0:
            raise ValueError("max_polar_deg must be positive")

    @property
    def num_levels(self) -> int:
        """Refinement levels needed to reach the target resolution."""
        ratio = self.coarse_resolution_deg / self.resolution_deg  # reprolint: disable=NUM002 -- resolution_deg > 0 enforced in __post_init__
        # ratio >= 1 is enforced in __post_init__, so log2 is safe.
        return int(np.ceil(np.log2(ratio)))  # reprolint: disable=NUM001 -- ratio >= 1 enforced in __post_init__


@dataclass
class CellSet:
    """Structure-of-arrays set of sky cells.

    A cell is the spherical rectangle ``theta in [theta_lo, theta_hi] x
    phi in [phi_lo, phi_hi]`` (polar angle from zenith, azimuth in
    radians).  Splitting is 4-way at the angular midpoints, so both
    angular widths halve every level and the children partition the
    parent exactly.  (An equal-area polar split would look more
    HEALPix-like, but near the pole it shrinks the polar width only by
    ``sqrt(2)`` per level — a zenith source would then sit in a cap
    cell that never reaches the target resolution.  Cell solid angles
    are carried exactly, so equal areas buy nothing here.)

    Attributes:
        theta_lo: ``(n,)`` lower polar bounds, radians.
        theta_hi: ``(n,)`` upper polar bounds, radians.
        phi_lo: ``(n,)`` lower azimuth bounds, radians.
        phi_hi: ``(n,)`` upper azimuth bounds, radians.
    """

    theta_lo: np.ndarray
    theta_hi: np.ndarray
    phi_lo: np.ndarray
    phi_hi: np.ndarray

    @property
    def num_cells(self) -> int:
        return int(self.theta_lo.shape[0])

    def areas_sr(self) -> np.ndarray:
        """Exact solid angle of each cell, steradians."""
        return (self.phi_hi - self.phi_lo) * (
            np.cos(self.theta_lo) - np.cos(self.theta_hi)
        )

    def centers(self) -> np.ndarray:
        """``(n, 3)`` unit center directions (equal-area centroids).

        The polar center is the equal-area latitude (arccos of the mean
        of the bounding cosines) — the solid-angle centroid of the
        cell, where a point evaluation best represents the cell mass.
        """
        cos_c = 0.5 * (np.cos(self.theta_lo) + np.cos(self.theta_hi))
        sin_c = np.sqrt(np.maximum(1.0 - cos_c * cos_c, 0.0))
        phi_c = 0.5 * (self.phi_lo + self.phi_hi)
        return np.stack(
            [sin_c * np.cos(phi_c), sin_c * np.sin(phi_c), cos_c], axis=1
        )

    def half_widths_rad(self) -> np.ndarray:
        """Angular half-diagonal of each cell, radians.

        The cell-scale term of the resolution-matched likelihood in
        :func:`evaluate_cells`: half the diagonal of the polar-width x
        (azimuth-width at the center latitude) rectangle.
        """
        cos_c = 0.5 * (np.cos(self.theta_lo) + np.cos(self.theta_hi))
        sin_c = np.sqrt(np.maximum(1.0 - cos_c * cos_c, 0.0))
        d_theta = self.theta_hi - self.theta_lo
        d_phi = (self.phi_hi - self.phi_lo) * sin_c
        return 0.5 * np.sqrt(d_theta * d_theta + d_phi * d_phi)  # reprolint: disable=NUM001 -- sum of squares is non-negative

    def select(self, mask: np.ndarray) -> "CellSet":
        """New :class:`CellSet` restricted to cells where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        return CellSet(
            theta_lo=self.theta_lo[mask],
            theta_hi=self.theta_hi[mask],
            phi_lo=self.phi_lo[mask],
            phi_hi=self.phi_hi[mask],
        )

    def split(self) -> "CellSet":
        """Split every cell into its four angular-midpoint children."""
        t_lo, t_hi = self.theta_lo, self.theta_hi
        p_lo, p_hi = self.phi_lo, self.phi_hi
        t_mid = 0.5 * (t_lo + t_hi)
        p_mid = 0.5 * (p_lo + p_hi)
        return CellSet(
            theta_lo=np.concatenate([t_lo, t_lo, t_mid, t_mid]),
            theta_hi=np.concatenate([t_mid, t_mid, t_hi, t_hi]),
            phi_lo=np.concatenate([p_lo, p_mid, p_lo, p_mid]),
            phi_hi=np.concatenate([p_mid, p_hi, p_mid, p_hi]),
        )


def coarse_cells(
    resolution_deg: float = 8.0, max_polar_deg: float = 95.0
) -> CellSet:
    """Level-0 cells from the sin-weighted band scheme of ``SkyGrid.build``.

    Same construction as the flat grid — polar bands of constant width
    with azimuth counts proportional to ``sin(theta)`` — but returning
    cell *bounds* instead of centers so the cells can be split.

    Args:
        resolution_deg: Angular band width (and target azimuth spacing).
        max_polar_deg: Extent from zenith.

    Returns:
        A :class:`CellSet` partitioning the search region.

    Raises:
        ValueError: For non-positive resolution or extent.
    """
    if resolution_deg <= 0 or max_polar_deg <= 0:
        raise ValueError("resolution and extent must be positive")
    step = np.deg2rad(resolution_deg)
    n_bands = max(1, int(np.ceil(max_polar_deg / resolution_deg)))
    polar_edges = np.linspace(0.0, np.deg2rad(max_polar_deg), n_bands + 1)
    lo, hi = polar_edges[:-1], polar_edges[1:]
    mid = 0.5 * (lo + hi)
    n_az = np.maximum(
        1, np.ceil(2.0 * np.pi * np.sin(mid) / step).astype(np.int64)
    )
    starts = np.concatenate([[0], np.cumsum(n_az)[:-1]])
    slot = np.arange(int(n_az.sum())) - np.repeat(starts, n_az)
    width = np.repeat(2.0 * np.pi / n_az, n_az)
    return CellSet(
        theta_lo=np.repeat(lo, n_az),
        theta_hi=np.repeat(hi, n_az),
        phi_lo=slot * width,
        phi_hi=(slot + 1) * width,
    )


def evaluate_cells(
    rings: RingSet,
    cells: CellSet,
    cap: float | None = 25.0,
    temperature: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Ring log-likelihood and log-posterior mass at each cell.

    The posterior mass approximates the integral of the likelihood over
    the cell by (likelihood at the equal-area center) x (cell solid
    angle) — the same flat-prior quadrature :func:`compute_skymap` uses,
    but over cells of heterogeneous size, with one crucial difference:
    the per-ring width is broadened to the cell scale,
    ``sigma^2 = deta^2 + half_width^2``.  A point evaluation at the
    center is a faithful proxy for the mass inside the cell only when
    the likelihood is smooth at the cell scale; a sharp ring corridor
    (``deta`` far below the cell width) threading a cell *between*
    centers would otherwise score the cell as empty and freeze the
    refinement frontier on the wrong branch.  Broadening convolves each
    corridor up to the cell scale (the residual changes by at most the
    angular distance to the center, so ``half_width`` bounds the
    within-cell residual swing), which restores center-evaluation
    fidelity at every level and, at the leaves, accounts for the
    pixelization itself.

    Args:
        rings: Rings entering localization.
        cells: Cells to evaluate.
        cap: Robust per-ring chi-square cap (None disables).
        temperature: Joint chi-square divisor (see
            :class:`SkymapConfig`); applied after the cap.

    Returns:
        ``(log_like, log_post)`` arrays of shape ``(num_cells,)``; both
        are unnormalized (constant offsets drop out on normalization).
    """
    resid = rings.axis @ cells.centers().T - rings.eta[:, None]
    sigma2 = (
        rings.deta[:, None] ** 2 + cells.half_widths_rad()[None, :] ** 2
    )
    chi2 = resid * resid / sigma2  # reprolint: disable=NUM002 -- deta is floored at DETA_FLOOR and half-widths are non-negative, so sigma2 > 0
    if cap is not None:
        chi2 = np.minimum(chi2, cap)
    log_like = -0.5 * chi2.sum(axis=0) / temperature  # reprolint: disable=NUM002 -- temperature > 0 enforced by SkymapConfig; bare floats are caller-validated
    log_post = log_like + np.log(cells.areas_sr())  # reprolint: disable=NUM001 -- cell areas strictly positive: bands and azimuth slots are non-degenerate by construction
    return log_like, log_post


def refine_mask(log_post: np.ndarray, top_k: int, margin: float) -> np.ndarray:
    """Cells to split this level: top-k by posterior mass, plus margin.

    Args:
        log_post: Per-cell log-posterior mass.
        top_k: Always refine this many of the best cells.
        margin: Also refine every cell within this log-posterior window
            of the maximum (keeps secondary modes competitive).

    Returns:
        Boolean mask over the cells.
    """
    mask = np.zeros(log_post.size, dtype=bool)
    k = min(int(top_k), log_post.size)
    order = np.argsort(log_post)
    mask[order[log_post.size - k :]] = True
    mask |= log_post >= log_post.max() - margin
    return mask


def refine_level(
    rings: RingSet,
    cells: CellSet,
    log_like: np.ndarray,
    log_post: np.ndarray,
    config: SkymapConfig,
) -> tuple[CellSet, np.ndarray, np.ndarray, int]:
    """One coarse-to-fine step: split the selected cells, evaluate children.

    Unselected cells survive as leaves with their existing evaluations;
    selected cells are replaced by their four children.

    Args:
        rings: Rings entering localization.
        cells: Current leaf cells.
        log_like: Per-cell log-likelihood (matching ``cells``).
        log_post: Per-cell log-posterior mass (matching ``cells``).
        config: Search parameters (selection rule, cap).

    Returns:
        ``(cells, log_like, log_post, n_children)`` for the next level.
    """
    sel = refine_mask(log_post, config.top_k, config.margin)
    children = cells.select(sel).split()
    child_like, child_post = evaluate_cells(
        rings, children, config.cap, config.temperature
    )
    keep = ~sel
    kept = cells.select(keep)
    merged = CellSet(
        theta_lo=np.concatenate([kept.theta_lo, children.theta_lo]),
        theta_hi=np.concatenate([kept.theta_hi, children.theta_hi]),
        phi_lo=np.concatenate([kept.phi_lo, children.phi_lo]),
        phi_hi=np.concatenate([kept.phi_hi, children.phi_hi]),
    )
    return (
        merged,
        np.concatenate([log_like[keep], child_like]),
        np.concatenate([log_post[keep], child_post]),
        children.num_cells,
    )


@dataclass
class HierarchicalResult:
    """Outcome of the hierarchical sky search.

    Attributes:
        sky: Mixed-resolution posterior map over the final leaf cells.
        levels: Refinement levels executed.
        cells_evaluated: Total likelihood evaluations across all levels
            (the work metric a flat scan pays ``num_pixels`` for).
    """

    sky: SkyMap
    levels: int
    cells_evaluated: int

    @property
    def num_leaves(self) -> int:
        """Leaf-cell count of the final map."""
        return self.sky.grid.num_pixels


@obs_trace.traced("skymap.hierarchical")
def hierarchical_skymap(
    rings: RingSet, config: SkymapConfig | None = None
) -> HierarchicalResult:
    """Coarse-to-fine posterior map over the visible sky.

    Evaluates the capped ring chi-square on the coarse grid, then
    refines the top-k + margin frontier level by level down to the
    target resolution (see the module docstring and
    ``docs/localization.md``).

    Args:
        rings: Rings entering localization.
        config: Search parameters (defaults: 8 degrees -> 0.5 degrees).

    Returns:
        A :class:`HierarchicalResult`; ``result.sky`` is an ordinary
        :class:`SkyMap` so credible-region methods apply unchanged.

    Raises:
        ValueError: If the ring set is empty.
    """
    if rings.num_rings == 0:
        raise ValueError("cannot map an empty ring set")
    cfg = config or SkymapConfig()
    cells = coarse_cells(cfg.coarse_resolution_deg, cfg.max_polar_deg)
    log_like, log_post = evaluate_cells(rings, cells, cfg.cap, cfg.temperature)
    cells_evaluated = cells.num_cells
    levels = 0
    for _ in range(cfg.num_levels):
        cells, log_like, log_post, n_children = refine_level(
            rings, cells, log_like, log_post, cfg
        )
        cells_evaluated += n_children
        levels += 1
    grid = SkyGrid(
        directions=cells.centers(),
        pixel_area_sr=cells.areas_sr(),
        bounds=np.stack(
            [cells.theta_lo, cells.theta_hi, cells.phi_lo, cells.phi_hi],
            axis=1,
        ),
    )
    shifted = log_post - log_post.max()
    prob = np.exp(shifted)
    prob /= prob.sum()
    sky = SkyMap(grid=grid, log_likelihood=log_like, probability=prob)
    obs_metrics.inc("skymap.searches")
    obs_metrics.inc("skymap.levels", levels)
    obs_metrics.inc("skymap.cells_evaluated", cells_evaluated)
    return HierarchicalResult(
        sky=sky, levels=levels, cells_evaluated=cells_evaluated
    )
