"""Predicted localization uncertainty from the ring Fisher information.

The paper's anytime scheme halts "if our models suggest that further
iteration is not needed to achieve a given level of accuracy in the
source direction."  That requires predicting the current estimate's
accuracy *without* knowing the truth.  Under the Gaussian ring model the
predicted covariance of the direction estimate is the inverse Fisher
information of the weighted least-squares problem, projected onto the
tangent plane of the unit sphere at the estimate:

``I = sum_j (c_j c_j^T) / deta_j^2``  over the rings in the fit,

with the tangent-plane 2x2 block inverted to give the error ellipse; the
circular-equivalent 1-sigma radius is reported in degrees.
"""

from __future__ import annotations

import numpy as np

from repro.reconstruction.rings import RingSet


def _tangent_basis(direction: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    helper = np.array([1.0, 0.0, 0.0])
    if abs(direction[0]) > 0.9:
        helper = np.array([0.0, 1.0, 0.0])
    u = np.cross(helper, direction)
    u /= np.linalg.norm(u)
    v = np.cross(direction, u)
    return u, v


def predicted_error_deg(
    rings: RingSet,
    direction: np.ndarray,
    used: np.ndarray | None = None,
) -> float:
    """Predicted 1-sigma angular error of a direction estimate, degrees.

    Args:
        rings: Rings available to the fit.
        direction: ``(3,)`` unit direction estimate.
        used: Optional mask of rings actually in the fit (all if None).

    Returns:
        The circular-equivalent 1-sigma radius
        ``sqrt(sigma_major * sigma_minor)`` in degrees; ``inf`` when the
        information matrix is singular (no constraining rings).
    """
    direction = np.asarray(direction, dtype=np.float64)
    direction = direction / np.linalg.norm(direction)
    if used is None:
        used = np.ones(rings.num_rings, dtype=bool)
    axis = rings.axis[used]
    deta = rings.deta[used]
    if axis.shape[0] == 0:
        return float("inf")

    u, v = _tangent_basis(direction)
    # Project ring axes onto the tangent plane: the residual c.s changes
    # by (c.u) du + (c.v) dv under a tangent displacement.
    cu = axis @ u
    cv = axis @ v
    w = 1.0 / deta**2  # reprolint: disable=NUM002 -- deta >= DETA_FLOOR > 0 (reconstruction.error_propagation)
    i_uu = float(np.sum(w * cu * cu))
    i_uv = float(np.sum(w * cu * cv))
    i_vv = float(np.sum(w * cv * cv))
    det = i_uu * i_vv - i_uv**2
    if det <= 0.0 or not np.isfinite(det):
        return float("inf")
    # Covariance eigenvalues via trace/determinant of the 2x2 inverse.
    cov_det = 1.0 / det
    cov_trace = (i_uu + i_vv) / det
    # sigma_major^2 * sigma_minor^2 = det(Cov); circularized radius:
    radius_rad = cov_det**0.25  # sqrt(sqrt(det Cov)) = sqrt(sig_a*sig_b)
    # Guard absurd values (nearly unconstrained fits).
    if not np.isfinite(radius_rad) or cov_trace <= 0:
        return float("inf")
    return float(np.degrees(radius_rad))


def error_ellipse_deg(
    rings: RingSet,
    direction: np.ndarray,
    used: np.ndarray | None = None,
) -> tuple[float, float]:
    """1-sigma error-ellipse semi-axes (major, minor) in degrees.

    Returns ``(inf, inf)`` for unconstrained fits.
    """
    direction = np.asarray(direction, dtype=np.float64)
    direction = direction / np.linalg.norm(direction)
    if used is None:
        used = np.ones(rings.num_rings, dtype=bool)
    axis = rings.axis[used]
    deta = rings.deta[used]
    if axis.shape[0] == 0:
        return float("inf"), float("inf")
    u, v = _tangent_basis(direction)
    cu = axis @ u
    cv = axis @ v
    w = 1.0 / deta**2  # reprolint: disable=NUM002 -- deta >= DETA_FLOOR > 0 (reconstruction.error_propagation)
    info = np.array(
        [
            [np.sum(w * cu * cu), np.sum(w * cu * cv)],
            [np.sum(w * cu * cv), np.sum(w * cv * cv)],
        ]
    )
    try:
        cov = np.linalg.inv(info)
    except np.linalg.LinAlgError:
        return float("inf"), float("inf")
    eigvals = np.linalg.eigvalsh(cov)
    if np.any(eigvals <= 0) or not np.all(np.isfinite(eigvals)):
        return float("inf"), float("inf")
    minor, major = np.sqrt(eigvals)
    return float(np.degrees(major)), float(np.degrees(minor))
