"""Likelihood sky maps and credible-region areas.

Follow-up telescopes care about the *area* of the localization region,
not only the point estimate: a 1-degree-radius region fits in one
narrow-field pointing, a 10-degree region does not.  This module
evaluates the ring joint likelihood on an (approximately) equal-area grid
over the visible hemisphere and integrates credible regions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.localization.likelihood import ring_chi_square
from repro.reconstruction.rings import RingSet


@dataclass
class SkyGrid:
    """Approximately equal-area grid over the upper hemisphere.

    Rings of constant polar angle are sampled with an azimuthal count
    proportional to ``sin(theta)``, giving near-uniform pixel areas.

    Attributes:
        directions: ``(n, 3)`` unit pixel centers.
        pixel_area_sr: ``(n,)`` solid angle per pixel, steradians.
        bounds: Optional ``(n, 4)`` exact pixel bounds
            ``[theta_lo, theta_hi, phi_lo, phi_hi]`` (radians).  The
            hierarchical search provides them so point-in-pixel
            membership is exact even on its mixed-resolution grids,
            where nearest-center assignment is ambiguous (e.g. a zenith
            source sits on the shared corner of every polar-cap cell).
    """

    directions: np.ndarray
    pixel_area_sr: np.ndarray
    bounds: np.ndarray | None = None

    @property
    def num_pixels(self) -> int:
        return int(self.directions.shape[0])

    @staticmethod
    def build(resolution_deg: float = 2.0, max_polar_deg: float = 95.0) -> "SkyGrid":
        """Construct a grid with roughly ``resolution_deg`` pixel spacing.

        Args:
            resolution_deg: Angular spacing between polar rings (and the
                target azimuthal spacing).
            max_polar_deg: Grid extent from zenith (slightly past the
                horizon by default, matching the localization search
                region).

        Returns:
            A :class:`SkyGrid`.

        Raises:
            ValueError: For non-positive resolution or extent.
        """
        if resolution_deg <= 0 or max_polar_deg <= 0:
            raise ValueError("resolution and extent must be positive")
        step = np.deg2rad(resolution_deg)
        n_bands = max(1, int(np.ceil(max_polar_deg / resolution_deg)))
        polar_edges = np.linspace(0.0, np.deg2rad(max_polar_deg), n_bands + 1)
        lo, hi = polar_edges[:-1], polar_edges[1:]
        mid = 0.5 * (lo + hi)
        band_area = 2.0 * np.pi * (np.cos(lo) - np.cos(hi))
        # Pixels per band ~ band circumference / step, at least one.
        n_az = np.maximum(
            1, np.ceil(2.0 * np.pi * np.sin(mid) / step).astype(np.int64)
        )
        # Flat pixel index -> (band, azimuth slot) without a Python loop.
        starts = np.concatenate([[0], np.cumsum(n_az)[:-1]])
        slot = np.arange(int(n_az.sum())) - np.repeat(starts, n_az)
        az = (slot + 0.5) * np.repeat(2.0 * np.pi / n_az, n_az)
        sin_m = np.repeat(np.sin(mid), n_az)
        cos_m = np.repeat(np.cos(mid), n_az)
        directions = np.stack(
            [sin_m * np.cos(az), sin_m * np.sin(az), cos_m], axis=1
        )
        return SkyGrid(
            directions=directions,
            pixel_area_sr=np.repeat(band_area / n_az, n_az),
        )


@dataclass
class SkyMap:
    """Posterior probability over a sky grid.

    Attributes:
        grid: The pixelization.
        log_likelihood: ``(n,)`` joint ring log-likelihood per pixel (up
            to a constant).
        probability: ``(n,)`` normalized posterior mass per pixel
            (flat prior over the grid).
    """

    grid: SkyGrid
    log_likelihood: np.ndarray
    probability: np.ndarray

    def best_direction(self) -> np.ndarray:
        """Pixel center with the highest posterior."""
        return self.grid.directions[int(np.argmax(self.probability))]

    def _credible_count(self, order: np.ndarray, level: float) -> int:
        """Pixels (posterior-descending) forming the ``level`` region.

        The region is the smallest prefix of ``order`` whose cumulative
        mass reaches ``level``.  "Reaches" is evaluated with a relative
        tolerance: ``cumsum`` can round one ulp *below* the exact
        boundary (e.g. eight 0.1-mass pixels summing to
        ``0.7999999999999999 < 0.8``), and without the tolerance an
        exactly-satisfied level would over-count by one pixel.
        """
        if not (0.0 < level <= 1.0):
            raise ValueError("level must be in (0, 1]")
        cum = np.cumsum(self.probability[order])
        k = int(np.searchsorted(cum, level * (1.0 - 1e-12))) + 1
        return min(k, int(cum.size))

    def credible_region_area_deg2(self, level: float = 0.68) -> float:
        """Area of the smallest region containing ``level`` posterior mass.

        Args:
            level: Credible level in (0, 1].

        Returns:
            Region area in square degrees.
        """
        order = np.argsort(self.probability)[::-1]
        k = self._credible_count(order, level)
        area_sr = float(self.pixel_areas_sorted(order)[:k].sum())
        return area_sr * (180.0 / np.pi) ** 2

    def contains(self, direction: np.ndarray, level: float = 0.9) -> bool:
        """Whether a direction falls inside the ``level`` credible region.

        The test is at pixel granularity: a pixel *containing*
        ``direction`` must belong to the smallest set of
        posterior-descending pixels holding ``level`` mass — the same
        region :meth:`credible_region_area_deg2` measures, so area and
        containment statistics always describe the same region.
        Containment is exact (point-in-bounds) when the grid carries
        pixel ``bounds``; otherwise the nearest pixel center stands in.
        A direction on a shared pixel boundary belongs to every
        adjacent pixel, and counts as contained if any of them is in
        the region.

        Args:
            direction: ``(3,)`` unit vector (e.g. the true origin).
            level: Credible level in (0, 1].

        Returns:
            True when a pixel containing ``direction`` is in the region.
        """
        direction = np.asarray(direction, dtype=np.float64)
        order = np.argsort(self.probability)[::-1]
        k = self._credible_count(order, level)
        in_region = np.zeros(self.grid.num_pixels, dtype=bool)
        in_region[order[:k]] = True
        if self.grid.bounds is None:
            nearest = int(np.argmax(self.grid.directions @ direction))
            return bool(in_region[nearest])
        theta = float(np.arccos(np.clip(direction[2], -1.0, 1.0)))
        phi = float(np.mod(np.arctan2(direction[1], direction[0]), 2.0 * np.pi))
        b = self.grid.bounds
        inside = (
            (b[:, 0] <= theta)
            & (theta <= b[:, 1])
            & (b[:, 2] <= phi)
            & (phi <= b[:, 3])
        )
        return bool(np.any(inside & in_region))

    def pixel_areas_sorted(self, order: np.ndarray) -> np.ndarray:
        """Pixel areas reordered by ``order`` (posterior-descending)."""
        return self.grid.pixel_area_sr[order]

    def probability_within(self, direction: np.ndarray, radius_deg: float) -> float:
        """Posterior mass within ``radius_deg`` of a direction."""
        direction = np.asarray(direction, dtype=np.float64)
        cos_r = np.cos(np.deg2rad(radius_deg))
        sel = self.grid.directions @ direction >= cos_r
        return float(self.probability[sel].sum())


def render_ascii(
    sky: SkyMap,
    width: int = 60,
    height: int = 24,
    max_polar_deg: float = 90.0,
    marker: np.ndarray | None = None,
) -> str:
    """Render a sky map as ASCII art (orthographic view from the zenith).

    Each character cell shows the posterior density of the nearest pixels
    on a ``.:-=+*#@`` ramp; an optional ``marker`` direction (e.g. the
    true source) is drawn as ``X``.

    Args:
        sky: The sky map.
        width: Character columns.
        height: Character rows.
        max_polar_deg: Radial extent of the view.
        marker: Optional unit vector to mark.

    Returns:
        A newline-joined string.
    """
    ramp = " .:-=+*#@"
    sin_max = np.sin(np.deg2rad(min(max_polar_deg, 90.0)))
    xs = np.linspace(-sin_max, sin_max, width)
    ys = np.linspace(-sin_max, sin_max, height)
    dens = sky.probability / sky.grid.pixel_area_sr  # reprolint: disable=NUM002 -- band areas are strictly positive by construction in SkyGrid.build
    # Rank-based shading: each pixel's glyph reflects its density rank, so
    # the likelihood landscape stays visible no matter how many orders of
    # magnitude separate the localization peak from the floor.
    order = np.argsort(np.argsort(dens))
    dens = order / max(order.max(), 1)
    gx, gy = sky.grid.directions[:, 0], sky.grid.directions[:, 1]
    rows = []
    for y in ys[::-1]:
        row = []
        for x in xs:
            if x * x + y * y > sin_max * sin_max:
                row.append(" ")
                continue
            d2 = (gx - x) ** 2 + (gy - y) ** 2
            value = dens[int(np.argmin(d2))]
            row.append(ramp[int(round(value * (len(ramp) - 1)))])
        rows.append(row)
    if marker is not None:
        mx, my = float(marker[0]), float(marker[1])
        if mx * mx + my * my <= sin_max * sin_max:
            col = int(round((mx + sin_max) / (2 * sin_max) * (width - 1)))
            row = int(round((sin_max - my) / (2 * sin_max) * (height - 1)))
            rows[row][col] = "X"
    return "\n".join("".join(r) for r in rows)


def compute_skymap(
    rings: RingSet,
    grid: SkyGrid | None = None,
    cap: float | None = 25.0,
) -> SkyMap:
    """Evaluate the ring joint likelihood over a sky grid.

    Args:
        rings: Rings entering localization.
        grid: Pixelization (2-degree default grid if omitted).
        cap: Optional robust cap on each ring's chi-square contribution
            (None for the pure Gaussian model).

    Returns:
        A :class:`SkyMap`.

    Raises:
        ValueError: If the ring set is empty.
    """
    if rings.num_rings == 0:
        raise ValueError("cannot map an empty ring set")
    grid = grid or SkyGrid.build()
    chi2 = ring_chi_square(rings, grid.directions)
    if cap is not None:
        chi2 = np.minimum(chi2, cap)
    log_like = -0.5 * chi2.sum(axis=0)
    log_post = log_like + np.log(grid.pixel_area_sr)  # reprolint: disable=NUM001 -- pixel areas strictly positive by construction in SkyGrid.build
    log_post -= log_post.max()
    prob = np.exp(log_post)
    prob /= prob.sum()
    return SkyMap(grid=grid, log_likelihood=log_like, probability=prob)
