#!/usr/bin/env python
"""One-shot CI gate: reprolint + shm-leak + docstrings + docs + perf.

Runs the repository's repo-hygiene checks and exits non-zero if any
fails:

1. **reprolint (changed files)** — fast pre-gate: ``repro.analysis
   --changed`` reports only findings in files changed since the merge
   base with ``main``, so the common failure mode (a finding in the
   code you just touched) surfaces in seconds.  Outside a git checkout
   this falls back to the full run and the full gate below still
   covers everything.
2. **reprolint** — ``repro.analysis`` over ``src/`` against the
   checked-in baseline (``.reprolint-baseline.json``).
3. **rule/docs agreement** — the registered rule ids and the catalogue
   table in ``docs/static_analysis.md`` must match exactly in both
   directions: a rule without a documented row fails, and a documented
   row without a registered rule fails.
4. **shm leak check** — ``scripts/check_shm.py``: no orphaned
   ``repro-shm-*`` segments left in ``/dev/shm``.
5. **docstring coverage** — every public module, top-level class and
   top-level function under ``src/repro`` carries a docstring (an
   AST-level complement to ``tests/test_docstrings.py``, which checks
   the *imported* surface).
6. **docs health** — every fenced ``python`` code block in ``docs/``,
   ``README.md`` & friends parses (``ast.parse``), and every intra-repo
   markdown link target resolves to a real file.
7. **perf registry coverage** — every op class in ``repro.infer.plan``
   has a registered microbenchmark in ``repro.perf`` (and every
   registered benchmark's factory builds), so no kernel can ship
   untracked.
8. **obs overhead** — the telemetry layer's *disabled* path must cost
   under 2% of a micro end-to-end campaign.  Deterministic by
   construction: instrumentation call sites are *counted* in one traced
   run, the per-call disabled cost is measured in a tight loop, and the
   product is compared against the untraced wall-clock — no noisy
   A/B timing of two full runs.
9. **SLO report gate** — the newest checked-in ``BENCH_pr*.json`` must
   carry a passing ``slo`` section, and no tracked throughput /
   wall-clock key may have regressed beyond tolerance versus the
   previous report.  Reads committed files only, so the gate itself is
   deterministic at CI time.
10. **skymap report gate** — the committed ``BENCH_pr10.json`` must
    record hierarchical >= flat accuracy parity across >= 3
    resolutions, the 5x speedup target at the 0.5-degree point, and a
    held-out campaign 90% containment fraction inside [0.85, 0.95].

Usage:

    python scripts/ci_checks.py            # run all checks
    python scripts/ci_checks.py --skip shm # skip a check by name
"""

from __future__ import annotations

import argparse
import ast
import os
import re
import subprocess
import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO / "src"))

from repro.analysis.cli import main as reprolint_main  # noqa: E402

#: Check names accepted by ``--skip``.
CHECK_NAMES = (
    "lint-changed",
    "lint",
    "rules",
    "shm",
    "docstrings",
    "docs",
    "perf",
    "obs",
    "slo",
    "skymap",
)


def check_lint_changed() -> int:
    """Fast pre-gate: reprolint findings in files changed since main.

    ``--changed`` still analyzes the whole project (the concurrency
    rules need the whole-program call graph) but reports only findings
    in files the current branch touched, so the feedback names exactly
    the code under review.  Redundant with the full ``lint`` gate by
    construction — it exists to fail *first* with a focused report.
    """
    return reprolint_main(
        [
            str(_REPO / "src"),
            "--changed",
            "--baseline",
            str(_REPO / ".reprolint-baseline.json"),
        ]
    )


def check_lint() -> int:
    """Run reprolint over ``src/`` with the checked-in baseline."""
    return reprolint_main(
        [
            str(_REPO / "src"),
            "--baseline",
            str(_REPO / ".reprolint-baseline.json"),
        ]
    )


#: A catalogue table row: ``| DET001 | error | ... |``.
_CATALOGUE_ROW_RE = re.compile(r"^\|\s*([A-Z]{3}\d{3})\s*\|", re.MULTILINE)


def check_rules_docs() -> int:
    """Registered rules and the docs catalogue must agree exactly.

    Parses the ``docs/static_analysis.md`` rule-catalogue table and
    compares the set of documented ids against
    ``repro.analysis.core.rule_ids()`` in both directions, so a new
    rule cannot land without a catalogue row and a deleted rule cannot
    leave a ghost row behind.
    """
    from repro.analysis.core import rule_ids

    doc = _REPO / "docs" / "static_analysis.md"
    documented = set(_CATALOGUE_ROW_RE.findall(
        doc.read_text(encoding="utf-8")
    ))
    registered = set(rule_ids())
    failures = []
    for rid in sorted(registered - documented):
        failures.append(
            f"rule {rid} is registered but has no catalogue row in "
            f"{doc.relative_to(_REPO)}"
        )
    for rid in sorted(documented - registered):
        failures.append(
            f"catalogue row {rid} in {doc.relative_to(_REPO)} matches "
            "no registered rule"
        )
    for line in failures:
        print(f"rules: {line}")
    print(
        f"rules: {len(registered)} registered, {len(documented)} documented"
    )
    return 1 if failures else 0


def check_shm() -> int:
    """Run the shm-orphan gate as a subprocess (it inspects /dev/shm)."""
    proc = subprocess.run(
        [sys.executable, str(_REPO / "scripts" / "check_shm.py")],
        check=False,
    )
    return proc.returncode


def _missing_docstrings(tree: ast.Module) -> list[str]:
    """Public top-level defs in ``tree`` lacking a docstring."""
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append("<module>")
    for node in tree.body:
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if node.name.startswith("_"):
            continue
        if ast.get_docstring(node) is None:
            missing.append(node.name)
    return missing


def check_docstrings() -> int:
    """Require docstrings on every public top-level def under src/repro."""
    total = 0
    missing_total = 0
    failures: list[str] = []
    for path in sorted((_REPO / "src" / "repro").rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        names = _missing_docstrings(tree)
        documented = 1 + sum(
            isinstance(
                n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
            and not n.name.startswith("_")
            for n in tree.body
        )
        total += documented
        missing_total += len(names)
        rel = path.relative_to(_REPO)
        failures += [f"{rel}: {name}" for name in names]
    for line in failures:
        print(f"docstrings: missing on {line}")
    covered = total - missing_total
    pct = 100.0 * covered / total if total else 100.0
    print(f"docstrings: {covered}/{total} public defs documented ({pct:.1f}%)")
    return 1 if failures else 0


#: Markdown files covered by the docs gate: everything in docs/ plus the
#: top-level narrative documents.
_DOC_GLOBS = ("docs/*.md", "README.md", "DESIGN.md", "EXPERIMENTS.md")

#: ``[text](target)`` — target captured without surrounding whitespace.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: ``[[path]]`` wiki-style references (used by some design notes).
_WIKILINK_RE = re.compile(r"\[\[([^\]|#]+)(?:#[^\]]*)?\]\]")
#: Fenced code blocks: ``` or ~~~ fences with an optional info string.
_FENCE_RE = re.compile(
    r"^(?P<fence>```+|~~~+)[ \t]*(?P<info>[^\n]*)$"
)


def _doc_files() -> list[Path]:
    """All markdown files the docs gate covers, in stable order."""
    files: list[Path] = []
    for pattern in _DOC_GLOBS:
        files.extend(sorted(_REPO.glob(pattern)))
    return [f for f in files if f.is_file()]


def _iter_code_blocks(text: str):
    """Yield ``(first_line_number, info_string, code)`` per fenced block."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        match = _FENCE_RE.match(lines[i])
        if not match:
            i += 1
            continue
        fence, info = match.group("fence"), match.group("info").strip()
        body: list[str] = []
        i += 1
        start = i + 1  # 1-indexed first body line
        while i < len(lines) and not lines[i].startswith(fence):
            body.append(lines[i])
            i += 1
        i += 1  # closing fence (or EOF)
        yield start, info.lower(), "\n".join(body)


def _strip_code(text: str) -> str:
    """Markdown with fenced blocks and inline code spans removed.

    Link checking must not trip over ``dict[str](...)``-looking text
    inside code, so code is blanked before the link regexes run.
    """
    out: list[str] = []
    in_fence: str | None = None
    for line in text.splitlines():
        match = _FENCE_RE.match(line)
        if match and in_fence is None:
            in_fence = match.group("fence")
            continue
        if in_fence is not None:
            if line.startswith(in_fence):
                in_fence = None
            continue
        out.append(re.sub(r"`[^`]*`", "", line))
    return "\n".join(out)


def _check_link(doc: Path, target: str) -> str | None:
    """Return a failure message for an unresolvable intra-repo link."""
    if target.startswith(("http://", "https://", "mailto:")):
        return None
    path_part = target.split("#", 1)[0]
    if not path_part:  # pure anchor into the same file
        return None
    resolved = (doc.parent / path_part).resolve()
    if not resolved.exists():
        rel = doc.relative_to(_REPO)
        return f"{rel}: broken link target {target!r}"
    return None


def check_docs() -> int:
    """Parse fenced python blocks and resolve intra-repo links in docs."""
    failures: list[str] = []
    blocks = 0
    links = 0
    for doc in _doc_files():
        text = doc.read_text(encoding="utf-8")
        rel = doc.relative_to(_REPO)
        for line_no, info, code in _iter_code_blocks(text):
            lang = info.split()[0] if info else ""
            if lang not in ("python", "py"):
                continue
            blocks += 1
            try:
                ast.parse(code)
            except SyntaxError as exc:
                failures.append(
                    f"{rel}:{line_no}: python block does not parse: {exc.msg}"
                )
        prose = _strip_code(text)
        targets = _LINK_RE.findall(prose) + _WIKILINK_RE.findall(prose)
        for target in targets:
            links += 1
            message = _check_link(doc, target)
            if message is not None:
                failures.append(message)
    for line in failures:
        print(f"docs: {line}")
    print(
        f"docs: {len(_doc_files())} files, {blocks} python blocks parsed, "
        f"{links} links checked"
    )
    return 1 if failures else 0


def check_perf() -> int:
    """Every ``repro.infer.plan`` op class must have a benchmark.

    Coverage is discovered by inspection (see
    ``repro.perf.registry.plan_op_names``), so adding a new op class
    without registering a microbenchmark fails CI here.  Each
    registered benchmark's ``build`` factory is also exercised once —
    a registered-but-broken entry must not pass.
    """
    import repro.perf as perf

    failures: list[str] = []
    missing = sorted(perf.missing_ops())
    for op in missing:
        failures.append(f"op class {op} has no registered microbenchmark")
    for bench in perf.registered():
        try:
            fn, rows = bench.build()
        except Exception as exc:  # pragma: no cover - diagnostic path
            failures.append(f"benchmark {bench.name!r} failed to build: {exc}")
            continue
        if not callable(fn) or int(rows) <= 0:
            failures.append(
                f"benchmark {bench.name!r} build() must return "
                f"(callable, positive rows); got rows={rows!r}"
            )
    for line in failures:
        print(f"perf: {line}")
    print(
        f"perf: {len(perf.registered())} benchmarks cover "
        f"{len(perf.required_ops())} required ops "
        f"({len(perf.plan_op_names())} plan op classes + extras)"
    )
    return 1 if failures else 0


#: Acceptance window for the campaign 90% containment fraction recorded
#: in BENCH_pr10.json (a calibrated region should cover ~90% of truths).
_SKYMAP_CALIBRATION_WINDOW = (0.85, 0.95)


def check_skymap() -> int:
    """Validate the committed hierarchical-skymap report ``BENCH_pr10.json``.

    Requirements: the report exists (``bench_report.py --skymap`` writes
    it); the flat-vs-hierarchical sweep covers at least three
    resolutions, each recording a speedup and best-fit agreement within
    one fine pixel (hierarchical >= flat accuracy parity); the target
    resolution is reached at >= 5x the dense-scan wall-clock; and the
    held-out containment-calibration fraction at 90% lies inside
    ``_SKYMAP_CALIBRATION_WINDOW``.  Reads the committed file only, so
    the gate is deterministic at CI time.
    """
    import json

    failures: list[str] = []
    path = _REPO / "BENCH_pr10.json"
    if not path.exists():
        print("skymap: BENCH_pr10.json missing (run bench_report --skymap)")
        return 1
    data = json.loads(path.read_text(encoding="utf-8"))
    sweep = data.get("results", {}).get("skymap_sweep", {})
    if len(sweep) < 3:
        failures.append(
            f"skymap_sweep records {len(sweep)} resolution(s); need >= 3"
        )
    for name, row in sorted(sweep.items()):
        speedup = row.get("speedup")
        if not isinstance(speedup, (int, float)) or speedup <= 1.0:
            failures.append(f"{name}: hierarchical speedup {speedup!r} <= 1")
        sep = row.get("best_fit_separation_deg")
        res = row.get("resolution_deg", 0.0)
        # One-pixel agreement: adjacent best-fit pixels can sit a full
        # pixel diagonal (sqrt(2) x resolution) apart.
        if not isinstance(sep, (int, float)) or sep > res * 1.4143:
            failures.append(
                f"{name}: best-fit separation {sep!r} deg exceeds one "
                f"{res} deg pixel diagonal (accuracy parity broken)"
            )
    target = sweep.get("res0.5", {})
    if target and target.get("speedup", 0.0) < 5.0:
        failures.append(
            f"res0.5: speedup {target['speedup']:.1f}x is below the 5x target"
        )
    calib = data.get("results", {}).get("calibration", {})
    frac = calib.get("heldout_fraction90")
    lo, hi = _SKYMAP_CALIBRATION_WINDOW
    if not isinstance(frac, (int, float)) or not (lo <= frac <= hi):
        failures.append(
            f"held-out 90% containment {frac!r} outside [{lo}, {hi}]"
        )
    for line in failures:
        print(f"skymap: {line}")
    print(
        f"skymap: {len(sweep)} resolutions swept, "
        f"held-out 90% containment = {frac}"
    )
    return 1 if failures else 0


#: Disabled-path telemetry budget as a fraction of micro-e2e wall-clock.
_OBS_OVERHEAD_BUDGET = 0.02

#: Calibration loop length for the per-call disabled cost measurement.
_OBS_CALIBRATION_CALLS = 100_000


def _obs_workload():
    """One tiny serial campaign exercising the instrumented hot path."""
    from repro.detector.response import DetectorResponse
    from repro.experiments.trials import TrialConfig, run_trials
    from repro.geometry.tiles import adapt_geometry

    geometry = adapt_geometry()
    response = DetectorResponse(geometry)

    def run():
        return run_trials(
            geometry,
            response,
            seed=99,
            n_trials=2,
            config=TrialConfig(fluence_mev_cm2=0.3, polar_angle_deg=10.0),
            n_workers=1,
        )

    return run


def check_obs_overhead() -> int:
    """Bound the telemetry layer's disabled-path cost on a micro e2e run.

    Naive A/B wall-clock comparison of a traced vs untraced run is too
    noisy to gate on, so the budget is computed from three deterministic
    ingredients: ``T`` — the untraced workload wall-clock (best of 3);
    ``N`` — the exact number of instrumentation calls the workload makes
    (span events counted from one traced run, metric calls counted by
    shimming the registry); and ``c`` — the measured per-call cost of
    the *disabled* ``span()`` / ``inc()`` fast path.  The gate asserts
    ``N * c < 2% of T``: even if every one of those call sites ran its
    disabled branch, the campaign would not notice.
    """
    import time

    import repro.obs as obs
    from repro.obs.metrics import REGISTRY

    run = _obs_workload()
    run()  # warm imports and caches outside the timed region

    obs.disable()
    times = []
    for _ in range(3):
        t0 = time.perf_counter()
        run()
        times.append(time.perf_counter() - t0)
    t_base = min(times)

    # Count instrumentation call sites exercised by one traced run.
    metric_calls = 0
    real = {
        name: getattr(REGISTRY, name)
        for name in ("inc", "set_gauge", "observe")
    }

    def _counting(fn):
        def inner(*args, **kwargs):
            nonlocal metric_calls
            metric_calls += 1
            return fn(*args, **kwargs)
        return inner

    obs.enable()
    try:
        for name, fn in real.items():
            setattr(REGISTRY, name, _counting(fn))
        run()
        n_spans = sum(1 for ev in obs.events() if ev["type"] == "span")
    finally:
        for name in real:
            delattr(REGISTRY, name)  # restore class-level methods
        obs.disable()
    n_calls = n_spans + metric_calls

    # Per-call disabled cost, measured on the real fast path.
    t0 = time.perf_counter()
    for _ in range(_OBS_CALIBRATION_CALLS):
        with obs.span("ci.calibrate"):
            pass
        obs.inc("ci.calibrate")
    per_call_s = (time.perf_counter() - t0) / (2 * _OBS_CALIBRATION_CALLS)

    overhead = n_calls * per_call_s / t_base
    print(
        f"obs: {n_calls} instrumentation calls ({n_spans} spans, "
        f"{metric_calls} metric updates) x {per_call_s * 1e9:.0f} ns "
        f"disabled cost = {100.0 * overhead:.3f}% of {t_base:.3f}s "
        f"micro e2e (budget {100.0 * _OBS_OVERHEAD_BUDGET:.0f}%)"
    )
    if overhead >= _OBS_OVERHEAD_BUDGET:
        print("obs: disabled-path telemetry overhead exceeds budget")
        return 1
    return 0


#: Benchmark-report key prefixes tracked by the regression gate.
_SLO_TRACKED = ("perf_", "infer_", "campaign_")

#: Allowed regression between consecutive reports (generous: shared CI
#: machines jitter; the SLO floors catch sustained decay).
_SLO_TOLERANCE = 0.5


def _bench_reports() -> list[Path]:
    """Checked-in ``BENCH_pr*.json`` files, oldest first."""
    paths = []
    for path in _REPO.glob("BENCH_pr*.json"):
        match = re.fullmatch(r"BENCH_pr(\d+)\.json", path.name)
        if match:
            paths.append((int(match.group(1)), path))
    return [p for _, p in sorted(paths)]


def _check_serve_report(failures: list[str]) -> int:
    """Validate the committed serving-layer report ``BENCH_serve.json``.

    Requirements: the report exists (``bench_report.py --serve`` writes
    it), embeds a *passing* ``slo`` section containing serve-kind checks
    (the default spec's latency ceilings and request-rate floor), sweeps
    at least three client counts with sane throughput/latency fields,
    and records the bitwise-parity assertion against ``localize_many``.
    Returns the number of serve checks seen.
    """
    import json

    path = _REPO / "BENCH_serve.json"
    if not path.exists():
        failures.append("BENCH_serve.json missing (run bench_report --serve)")
        return 0
    data = json.loads(path.read_text(encoding="utf-8"))

    slo = data.get("slo")
    serve_checks = [
        c for c in (slo or {}).get("checks", []) if c.get("kind") == "serve"
    ]
    if slo is None:
        failures.append("BENCH_serve.json has no 'slo' section")
    elif not serve_checks:
        failures.append("BENCH_serve.json slo section has no serve checks")
    elif not slo.get("passed", False):
        for chk in slo["checks"]:
            if not chk.get("passed", True):
                failures.append(
                    f"BENCH_serve.json SLO breach: {chk['name']} "
                    f"{chk['metric']} = {chk['value']} "
                    f"(limit {chk['limit']})"
                )

    runs = data.get("runs", {})
    if len(runs) < 3:
        failures.append(
            f"BENCH_serve.json sweeps {len(runs)} client count(s); need >= 3"
        )
    for name, report in sorted(runs.items()):
        if not isinstance(report.get("req_per_s"), (int, float)) \
                or report["req_per_s"] <= 0:
            failures.append(f"BENCH_serve.json run {name}: bad req_per_s")
        if not isinstance(report.get("p99_ms"), (int, float)) \
                or report["p99_ms"] <= 0:
            failures.append(f"BENCH_serve.json run {name}: bad p99_ms")

    if not data.get("parity", {}).get("matches_localize_many_bitwise"):
        failures.append(
            "BENCH_serve.json does not record localize_many bit-parity"
        )
    return len(serve_checks)


def check_slo() -> int:
    """Gate on the newest benchmark report's SLO section and deltas.

    Three requirements: the newest ``BENCH_pr*.json`` must embed an
    ``slo`` evaluation that passed when the report was generated; no
    tracked ``perf_`` / ``infer_`` / ``campaign_`` key shared with the
    previous report may have regressed beyond ``_SLO_TOLERANCE`` (lower
    rows/s or speedup, higher seconds); and the serving-layer report
    ``BENCH_serve.json`` must carry its own passing serve-SLO section
    (see :func:`_check_serve_report`).  All read committed artifacts,
    so a regression has to survive a human writing it into the repo.
    """
    import json

    reports = _bench_reports()
    if not reports:
        print("slo: no BENCH_pr*.json report found")
        return 1
    newest = reports[-1]
    data = json.loads(newest.read_text(encoding="utf-8"))
    failures: list[str] = []

    slo = data.get("slo")
    if slo is None:
        failures.append(f"{newest.name} has no 'slo' section")
    elif not slo.get("passed", False):
        for chk in slo.get("checks", []):
            if not chk.get("passed", True):
                failures.append(
                    f"{newest.name} SLO breach: {chk['kind']} "
                    f"{chk['name']} {chk['metric']} = {chk['value']} "
                    f"(limit {chk['limit']})"
                )

    n_compared = 0
    if len(reports) >= 2:
        prior_path = reports[-2]
        prior = json.loads(prior_path.read_text(encoding="utf-8"))["results"]
        results = data["results"]
        for key in sorted(results):
            if not key.startswith(_SLO_TRACKED):
                continue
            now, then = results.get(key), prior.get(key)
            if not all(isinstance(v, (int, float)) for v in (now, then)):
                continue
            if then <= 0:
                continue
            n_compared += 1
            # perf_ registry keys are rows/s despite the bare names.
            higher_is_better = (
                key.startswith("perf_")
                or "rows_per_s" in key
                or "speedup" in key
            )
            ratio = now / then
            if higher_is_better and ratio < 1.0 - _SLO_TOLERANCE:
                failures.append(
                    f"{key}: {now:.4g} is {100 * (1 - ratio):.0f}% below "
                    f"{prior_path.name} ({then:.4g})"
                )
            elif not higher_is_better and ratio > 1.0 + _SLO_TOLERANCE:
                failures.append(
                    f"{key}: {now:.4g}s is {100 * (ratio - 1):.0f}% above "
                    f"{prior_path.name} ({then:.4g}s)"
                )

    n_serve = _check_serve_report(failures)

    for line in failures:
        print(f"slo: {line}")
    n_checks = len((slo or {}).get("checks", []))
    print(
        f"slo: {newest.name}: {n_checks} SLO checks, "
        f"{n_compared} keys compared against the prior report, "
        f"{n_serve} serve checks in BENCH_serve.json"
    )
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    """Run every check; return the number of failing checks."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--skip",
        action="append",
        default=[],
        choices=CHECK_NAMES,
        help="skip a check (repeatable)",
    )
    args = parser.parse_args(argv)

    checks = {
        "lint-changed": check_lint_changed,
        "lint": check_lint,
        "rules": check_rules_docs,
        "shm": check_shm,
        "docstrings": check_docstrings,
        "docs": check_docs,
        "perf": check_perf,
        "obs": check_obs_overhead,
        "slo": check_slo,
        "skymap": check_skymap,
    }
    failed = []
    for name, fn in checks.items():
        if name in args.skip:
            print(f"ci-checks: {name} SKIPPED")
            continue
        code = fn()
        status = "ok" if code == 0 else f"FAILED (exit {code})"
        print(f"ci-checks: {name} {status}")
        if code != 0:
            failed.append(name)
    if failed:
        print(f"ci-checks: {len(failed)} check(s) failed: {', '.join(failed)}")
    return len(failed)


if __name__ == "__main__":
    sys.exit(main())
