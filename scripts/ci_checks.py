#!/usr/bin/env python
"""One-shot CI gate: reprolint + shm-leak check + docstring coverage.

Runs the repository's three repo-hygiene checks and exits non-zero if
any fails:

1. **reprolint** — ``repro.analysis`` over ``src/`` against the
   checked-in baseline (``.reprolint-baseline.json``).
2. **shm leak check** — ``scripts/check_shm.py``: no orphaned
   ``repro-shm-*`` segments left in ``/dev/shm``.
3. **docstring coverage** — every public module, top-level class and
   top-level function under ``src/repro`` carries a docstring (an
   AST-level complement to ``tests/test_docstrings.py``, which checks
   the *imported* surface).

Usage:

    python scripts/ci_checks.py            # run all checks
    python scripts/ci_checks.py --skip shm # skip a check by name
"""

from __future__ import annotations

import argparse
import ast
import os
import subprocess
import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO / "src"))

from repro.analysis.cli import main as reprolint_main  # noqa: E402

#: Check names accepted by ``--skip``.
CHECK_NAMES = ("lint", "shm", "docstrings")


def check_lint() -> int:
    """Run reprolint over ``src/`` with the checked-in baseline."""
    return reprolint_main(
        [
            str(_REPO / "src"),
            "--baseline",
            str(_REPO / ".reprolint-baseline.json"),
        ]
    )


def check_shm() -> int:
    """Run the shm-orphan gate as a subprocess (it inspects /dev/shm)."""
    proc = subprocess.run(
        [sys.executable, str(_REPO / "scripts" / "check_shm.py")],
        check=False,
    )
    return proc.returncode


def _missing_docstrings(tree: ast.Module) -> list[str]:
    """Public top-level defs in ``tree`` lacking a docstring."""
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append("<module>")
    for node in tree.body:
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if node.name.startswith("_"):
            continue
        if ast.get_docstring(node) is None:
            missing.append(node.name)
    return missing


def check_docstrings() -> int:
    """Require docstrings on every public top-level def under src/repro."""
    total = 0
    missing_total = 0
    failures: list[str] = []
    for path in sorted((_REPO / "src" / "repro").rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        names = _missing_docstrings(tree)
        documented = 1 + sum(
            isinstance(
                n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
            and not n.name.startswith("_")
            for n in tree.body
        )
        total += documented
        missing_total += len(names)
        rel = path.relative_to(_REPO)
        failures += [f"{rel}: {name}" for name in names]
    for line in failures:
        print(f"docstrings: missing on {line}")
    covered = total - missing_total
    pct = 100.0 * covered / total if total else 100.0
    print(f"docstrings: {covered}/{total} public defs documented ({pct:.1f}%)")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    """Run every check; return the number of failing checks."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--skip",
        action="append",
        default=[],
        choices=CHECK_NAMES,
        help="skip a check (repeatable)",
    )
    args = parser.parse_args(argv)

    checks = {
        "lint": check_lint,
        "shm": check_shm,
        "docstrings": check_docstrings,
    }
    failed = []
    for name, fn in checks.items():
        if name in args.skip:
            print(f"ci-checks: {name} SKIPPED")
            continue
        code = fn()
        status = "ok" if code == 0 else f"FAILED (exit {code})"
        print(f"ci-checks: {name} {status}")
        if code != 0:
            failed.append(name)
    if failed:
        print(f"ci-checks: {len(failed)} check(s) failed: {', '.join(failed)}")
    return len(failed)


if __name__ == "__main__":
    sys.exit(main())
