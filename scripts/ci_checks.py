#!/usr/bin/env python
"""One-shot CI gate: reprolint + shm-leak + docstrings + docs + perf.

Runs the repository's repo-hygiene checks and exits non-zero if any
fails:

1. **reprolint** — ``repro.analysis`` over ``src/`` against the
   checked-in baseline (``.reprolint-baseline.json``).
2. **shm leak check** — ``scripts/check_shm.py``: no orphaned
   ``repro-shm-*`` segments left in ``/dev/shm``.
3. **docstring coverage** — every public module, top-level class and
   top-level function under ``src/repro`` carries a docstring (an
   AST-level complement to ``tests/test_docstrings.py``, which checks
   the *imported* surface).
4. **docs health** — every fenced ``python`` code block in ``docs/``,
   ``README.md`` & friends parses (``ast.parse``), and every intra-repo
   markdown link target resolves to a real file.
5. **perf registry coverage** — every op class in ``repro.infer.plan``
   has a registered microbenchmark in ``repro.perf`` (and every
   registered benchmark's factory builds), so no kernel can ship
   untracked.

Usage:

    python scripts/ci_checks.py            # run all checks
    python scripts/ci_checks.py --skip shm # skip a check by name
"""

from __future__ import annotations

import argparse
import ast
import os
import re
import subprocess
import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO / "src"))

from repro.analysis.cli import main as reprolint_main  # noqa: E402

#: Check names accepted by ``--skip``.
CHECK_NAMES = ("lint", "shm", "docstrings", "docs", "perf")


def check_lint() -> int:
    """Run reprolint over ``src/`` with the checked-in baseline."""
    return reprolint_main(
        [
            str(_REPO / "src"),
            "--baseline",
            str(_REPO / ".reprolint-baseline.json"),
        ]
    )


def check_shm() -> int:
    """Run the shm-orphan gate as a subprocess (it inspects /dev/shm)."""
    proc = subprocess.run(
        [sys.executable, str(_REPO / "scripts" / "check_shm.py")],
        check=False,
    )
    return proc.returncode


def _missing_docstrings(tree: ast.Module) -> list[str]:
    """Public top-level defs in ``tree`` lacking a docstring."""
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append("<module>")
    for node in tree.body:
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if node.name.startswith("_"):
            continue
        if ast.get_docstring(node) is None:
            missing.append(node.name)
    return missing


def check_docstrings() -> int:
    """Require docstrings on every public top-level def under src/repro."""
    total = 0
    missing_total = 0
    failures: list[str] = []
    for path in sorted((_REPO / "src" / "repro").rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        names = _missing_docstrings(tree)
        documented = 1 + sum(
            isinstance(
                n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
            and not n.name.startswith("_")
            for n in tree.body
        )
        total += documented
        missing_total += len(names)
        rel = path.relative_to(_REPO)
        failures += [f"{rel}: {name}" for name in names]
    for line in failures:
        print(f"docstrings: missing on {line}")
    covered = total - missing_total
    pct = 100.0 * covered / total if total else 100.0
    print(f"docstrings: {covered}/{total} public defs documented ({pct:.1f}%)")
    return 1 if failures else 0


#: Markdown files covered by the docs gate: everything in docs/ plus the
#: top-level narrative documents.
_DOC_GLOBS = ("docs/*.md", "README.md", "DESIGN.md", "EXPERIMENTS.md")

#: ``[text](target)`` — target captured without surrounding whitespace.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: ``[[path]]`` wiki-style references (used by some design notes).
_WIKILINK_RE = re.compile(r"\[\[([^\]|#]+)(?:#[^\]]*)?\]\]")
#: Fenced code blocks: ``` or ~~~ fences with an optional info string.
_FENCE_RE = re.compile(
    r"^(?P<fence>```+|~~~+)[ \t]*(?P<info>[^\n]*)$"
)


def _doc_files() -> list[Path]:
    """All markdown files the docs gate covers, in stable order."""
    files: list[Path] = []
    for pattern in _DOC_GLOBS:
        files.extend(sorted(_REPO.glob(pattern)))
    return [f for f in files if f.is_file()]


def _iter_code_blocks(text: str):
    """Yield ``(first_line_number, info_string, code)`` per fenced block."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        match = _FENCE_RE.match(lines[i])
        if not match:
            i += 1
            continue
        fence, info = match.group("fence"), match.group("info").strip()
        body: list[str] = []
        i += 1
        start = i + 1  # 1-indexed first body line
        while i < len(lines) and not lines[i].startswith(fence):
            body.append(lines[i])
            i += 1
        i += 1  # closing fence (or EOF)
        yield start, info.lower(), "\n".join(body)


def _strip_code(text: str) -> str:
    """Markdown with fenced blocks and inline code spans removed.

    Link checking must not trip over ``dict[str](...)``-looking text
    inside code, so code is blanked before the link regexes run.
    """
    out: list[str] = []
    in_fence: str | None = None
    for line in text.splitlines():
        match = _FENCE_RE.match(line)
        if match and in_fence is None:
            in_fence = match.group("fence")
            continue
        if in_fence is not None:
            if line.startswith(in_fence):
                in_fence = None
            continue
        out.append(re.sub(r"`[^`]*`", "", line))
    return "\n".join(out)


def _check_link(doc: Path, target: str) -> str | None:
    """Return a failure message for an unresolvable intra-repo link."""
    if target.startswith(("http://", "https://", "mailto:")):
        return None
    path_part = target.split("#", 1)[0]
    if not path_part:  # pure anchor into the same file
        return None
    resolved = (doc.parent / path_part).resolve()
    if not resolved.exists():
        rel = doc.relative_to(_REPO)
        return f"{rel}: broken link target {target!r}"
    return None


def check_docs() -> int:
    """Parse fenced python blocks and resolve intra-repo links in docs."""
    failures: list[str] = []
    blocks = 0
    links = 0
    for doc in _doc_files():
        text = doc.read_text(encoding="utf-8")
        rel = doc.relative_to(_REPO)
        for line_no, info, code in _iter_code_blocks(text):
            lang = info.split()[0] if info else ""
            if lang not in ("python", "py"):
                continue
            blocks += 1
            try:
                ast.parse(code)
            except SyntaxError as exc:
                failures.append(
                    f"{rel}:{line_no}: python block does not parse: {exc.msg}"
                )
        prose = _strip_code(text)
        targets = _LINK_RE.findall(prose) + _WIKILINK_RE.findall(prose)
        for target in targets:
            links += 1
            message = _check_link(doc, target)
            if message is not None:
                failures.append(message)
    for line in failures:
        print(f"docs: {line}")
    print(
        f"docs: {len(_doc_files())} files, {blocks} python blocks parsed, "
        f"{links} links checked"
    )
    return 1 if failures else 0


def check_perf() -> int:
    """Every ``repro.infer.plan`` op class must have a benchmark.

    Coverage is discovered by inspection (see
    ``repro.perf.registry.plan_op_names``), so adding a new op class
    without registering a microbenchmark fails CI here.  Each
    registered benchmark's ``build`` factory is also exercised once —
    a registered-but-broken entry must not pass.
    """
    import repro.perf as perf

    failures: list[str] = []
    missing = sorted(perf.missing_ops())
    for op in missing:
        failures.append(f"op class {op} has no registered microbenchmark")
    for bench in perf.registered():
        try:
            fn, rows = bench.build()
        except Exception as exc:  # pragma: no cover - diagnostic path
            failures.append(f"benchmark {bench.name!r} failed to build: {exc}")
            continue
        if not callable(fn) or int(rows) <= 0:
            failures.append(
                f"benchmark {bench.name!r} build() must return "
                f"(callable, positive rows); got rows={rows!r}"
            )
    for line in failures:
        print(f"perf: {line}")
    print(
        f"perf: {len(perf.registered())} benchmarks cover "
        f"{len(perf.plan_op_names())} plan op classes"
    )
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    """Run every check; return the number of failing checks."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--skip",
        action="append",
        default=[],
        choices=CHECK_NAMES,
        help="skip a check (repeatable)",
    )
    args = parser.parse_args(argv)

    checks = {
        "lint": check_lint,
        "shm": check_shm,
        "docstrings": check_docstrings,
        "docs": check_docs,
        "perf": check_perf,
    }
    failed = []
    for name, fn in checks.items():
        if name in args.skip:
            print(f"ci-checks: {name} SKIPPED")
            continue
        code = fn()
        status = "ok" if code == 0 else f"FAILED (exit {code})"
        print(f"ci-checks: {name} {status}")
        if code != 0:
            failed.append(name)
    if failed:
        print(f"ci-checks: {len(failed)} check(s) failed: {', '.join(failed)}")
    return len(failed)


if __name__ == "__main__":
    sys.exit(main())
