#!/usr/bin/env python
"""CI gate: fail when /dev/shm holds orphaned ``repro`` shm segments.

Run after the test suite (or any campaign):

    python scripts/check_shm.py            # report + exit 1 on orphans
    python scripts/check_shm.py --sweep    # also unlink the orphans

Every shared-memory block the campaign executor creates is named
``repro-shm-<owner pid>-<seq>`` (:mod:`repro.parallel.shm`).  A segment
whose owner pid no longer exists is a leak — a run that crashed before
its ``unlink``, or a cleanup path regression.  Segments owned by *live*
processes are reported but do not fail the check (a warm executor
legitimately keeps a bounded backlog of one result block per worker).
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.parallel import shm  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sweep", action="store_true",
                        help="unlink the orphaned segments after reporting")
    args = parser.parse_args(argv)

    orphans = []
    live = []
    for name in shm.list_segments():
        pid = shm.owner_pid(name)
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            orphans.append(name)
        except PermissionError:
            live.append(name)
        else:
            live.append(name)

    for name in live:
        print(f"live:   {name} (owner pid {shm.owner_pid(name)})")
    for name in orphans:
        print(f"ORPHAN: {name} (owner pid {shm.owner_pid(name)} is dead)")
    if args.sweep and orphans:
        removed = shm.sweep_stale()
        print(f"swept {len(removed)} orphaned segment(s)")
    if orphans:
        print(f"FAIL: {len(orphans)} orphaned repro shm segment(s) in "
              f"/dev/shm — a cleanup path leaked", file=sys.stderr)
        return 1
    print("OK: no orphaned repro shm segments")
    return 0


if __name__ == "__main__":
    sys.exit(main())
