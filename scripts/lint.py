#!/usr/bin/env python
"""Run reprolint over the repository sources with the checked-in baseline.

Thin wrapper around ``python -m repro.analysis`` that fills in the
repo-local defaults:

    python scripts/lint.py                 # lint src/ against the baseline
    python scripts/lint.py --format json   # machine-readable report
    python scripts/lint.py tests/analysis  # lint something else

Any arguments are forwarded to the reprolint CLI; ``src/`` and
``--baseline .reprolint-baseline.json`` are added only when no paths /
no baseline were given explicitly.
"""

from __future__ import annotations

import os
import sys

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO, "src"))

from repro.analysis.cli import main  # noqa: E402

#: Checked-in baseline of grandfathered findings (empty by policy).
DEFAULT_BASELINE = os.path.join(_REPO, ".reprolint-baseline.json")


def run(argv: list[str] | None = None) -> int:
    """Forward to the reprolint CLI with repo defaults filled in."""
    args = list(sys.argv[1:] if argv is None else argv)
    has_paths = any(not a.startswith("-") for a in args)
    passthrough_only = any(
        a in ("--list-rules", "-h", "--help") for a in args
    )
    if not has_paths and not passthrough_only:
        args.append(os.path.join(_REPO, "src"))
    if "--baseline" not in args and not passthrough_only:
        args += ["--baseline", DEFAULT_BASELINE]
    return main(args)


if __name__ == "__main__":
    sys.exit(run())
