#!/usr/bin/env python
"""Run the performance suite and write ``BENCH_pr2.json``.

Three measurement groups:

* **Kernel micro-benchmarks** — ``benchmarks/test_perf_kernels.py`` via
  pytest-benchmark; the report records each kernel's median seconds.
* **End-to-end campaign** — ``benchmarks/test_campaign_e2e.py`` timed in
  this process: the seed-style fresh-pool-per-stage path versus the
  persistent shared-memory executor, plus the resulting speedup.  The
  executor path is timed with telemetry disabled (the default) *and*
  enabled, so the report quantifies both the disabled-path overhead
  (versus ``BENCH_pr1.json``, which predates the telemetry layer) and
  the cost of actually tracing.
* **Trace summary** — one traced executor campaign, rolled up with
  :func:`repro.obs.summary.summary_dict` and embedded in the report, so
  the per-stage table ships next to the wall-clock numbers it explains.

Usage::

    python scripts/bench_report.py [--output BENCH_pr2.json] [--skip-kernels]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def run_kernel_benchmarks() -> dict[str, float]:
    """Run the micro-benchmark suite; return kernel -> median seconds."""
    with tempfile.TemporaryDirectory() as tmp:
        report = Path(tmp) / "kernels.json"
        proc = subprocess.run(
            [
                sys.executable, "-m", "pytest",
                str(REPO / "benchmarks" / "test_perf_kernels.py"),
                "-q", f"--benchmark-json={report}",
            ],
            cwd=REPO,
            env=os.environ | {"PYTHONPATH": str(REPO / "src")},
        )
        if proc.returncode != 0:
            raise SystemExit(f"kernel benchmarks failed (rc={proc.returncode})")
        data = json.loads(report.read_text())
    return {
        bench["name"]: bench["stats"]["median"]
        for bench in data["benchmarks"]
    }


def run_campaign_benchmark(rounds: int = 2) -> dict[str, float]:
    """Time the e2e campaign: legacy pool-per-stage vs persistent executor.

    Each path runs ``rounds`` times and the report keeps the minimum —
    the standard defense against background-load noise for wall-clock
    comparisons on a shared machine.
    """
    sys.path.insert(0, str(REPO / "src"))
    sys.path.insert(0, str(REPO / "benchmarks"))
    import test_campaign_e2e as e2e
    from repro.detector.response import DetectorResponse
    from repro.geometry.tiles import adapt_geometry

    geometry = adapt_geometry()
    response = DetectorResponse(geometry)

    def best_of(fn):
        times, out = [], None
        for _ in range(rounds):
            t0 = time.perf_counter()
            out = fn(geometry, response)
            times.append(time.perf_counter() - t0)
        return min(times), out

    t_executor, pooled = best_of(e2e.run_campaign_executor)
    t_legacy, legacy = best_of(e2e.run_campaign_legacy)

    import repro.obs as obs

    obs.enable()
    try:
        t_traced, traced = best_of(e2e.run_campaign_executor)
    finally:
        obs.disable()

    import numpy as np
    for ref, got, tr in zip(legacy, pooled, traced):
        np.testing.assert_array_equal(ref, got)
        np.testing.assert_array_equal(ref, tr)

    return {
        "campaign_e2e_executor_4w": t_executor,
        "campaign_e2e_legacy_4w": t_legacy,
        "campaign_e2e_speedup": t_legacy / t_executor,
        "campaign_e2e_executor_4w_traced": t_traced,
        "campaign_e2e_tracing_overhead_pct":
            100.0 * (t_traced - t_executor) / t_executor,
    }


def run_traced_summary() -> dict:
    """Run one traced executor campaign and return its per-stage rollup."""
    sys.path.insert(0, str(REPO / "src"))
    sys.path.insert(0, str(REPO / "benchmarks"))
    import test_campaign_e2e as e2e
    import repro.obs as obs
    from repro.detector.response import DetectorResponse
    from repro.geometry.tiles import adapt_geometry
    from repro.obs.summary import summary_dict

    geometry = adapt_geometry()
    response = DetectorResponse(geometry)
    obs.enable()
    try:
        e2e.run_campaign_executor(geometry, response)
        events = obs.events() + obs.metric_events()
    finally:
        obs.disable()
    return summary_dict(events)


def compare_with_pr1(results: dict[str, float]) -> dict:
    """Compare campaign wall-clock against ``BENCH_pr1.json``, if present.

    The pr1 report predates the telemetry layer entirely, so the executor
    delta measures the disabled-telemetry overhead of the instrumented
    hot path (acceptance: under a few percent, i.e. noise).
    """
    pr1_path = REPO / "BENCH_pr1.json"
    if not pr1_path.exists():
        return {"available": False}
    pr1 = json.loads(pr1_path.read_text())["results"]
    out: dict = {"available": True}
    for key in ("campaign_e2e_executor_4w", "campaign_e2e_legacy_4w"):
        if key in pr1 and key in results:
            out[key] = {
                "pr1_s": pr1[key],
                "pr2_s": results[key],
                "delta_pct": 100.0 * (results[key] - pr1[key]) / pr1[key],
            }
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=str(REPO / "BENCH_pr2.json"))
    parser.add_argument(
        "--skip-kernels", action="store_true",
        help="only run the e2e campaign comparison",
    )
    args = parser.parse_args(argv)

    results: dict[str, float] = {}
    if not args.skip_kernels:
        results.update(run_kernel_benchmarks())
    results.update(run_campaign_benchmark())

    report = {
        "schema": "kernel -> median seconds (campaign entries: best of 2)",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
        "vs_pr1": compare_with_pr1(results),
        "trace_summary": run_traced_summary(),
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
