#!/usr/bin/env python
"""Run the performance suite and write ``BENCH_pr7.json``.

Seven measurement groups:

* **Kernel micro-benchmarks** — ``benchmarks/test_perf_kernels.py`` via
  pytest-benchmark; the report records each kernel's median seconds.
* **Op registry** — every tracked kernel in ``repro.perf`` (one entry
  per ``repro.infer.plan`` op class, plus the gather/scatter path and
  the retained reference INT8 kernel), reported as ``perf_<name>``
  rows/s with per-op deltas against the prior report.
* **Inference backends** — the paper-shaped background network
  (13-256-128-64-1) forwarded over Fig.-6-sized ring blocks
  (597 rows each) through every ``repro.infer`` backend: the eager
  module tree, the compiled plan per block (float32 default *and*
  the bit-parity float64 mode), the plan over one gathered
  cross-event batch, and the INT8 plan.  Each backend's output is
  asserted against the eager reference *before* it is timed (float64
  and INT8 bitwise — INT8 additionally against the retained reference
  kernel chain — float32 to 1e-5), so a broken backend cannot post a
  flattering rows/s figure.
* **End-to-end campaign** — ``benchmarks/test_campaign_e2e.py`` timed in
  this process: the seed-style fresh-pool-per-stage path versus the
  persistent shared-memory executor, plus the resulting speedup.  The
  executor path is timed with telemetry disabled (the default), with
  tracing enabled, *and* with the full live-telemetry stack (tracing +
  sampling profiler + resource monitor) enabled, so the report
  quantifies the disabled-path overhead, the cost of tracing, and the
  cost of profiling — the last against the <5% acceptance target.
* **ML campaign backends** — ``run_trials`` on the ``"ml"`` condition
  with small trained networks, timed once per ``infer_backend``
  (reference vs planned vs planned + ``event_batch``), with the error
  arrays cross-checked for parity first.
* **Live telemetry** — one fully-instrumented executor campaign
  (tracing + profiler + resource monitor in the parent *and* all four
  workers), rolled up three ways: the per-stage trace summary
  (:func:`repro.obs.summary.summary_dict`), the merged cross-process
  profile (top spans and functions by self samples, with every pid
  that contributed), and the :mod:`repro.obs.slo` evaluation of the
  default spec against the run's stage latencies, histograms and the
  op-registry throughputs — the same section ``scripts/ci_checks.py``
  gates on.

A separate mode measures the serving layer: ``--serve`` sweeps the
closed-loop load generator (:mod:`repro.serve.load`) over
``SERVE_CLIENT_COUNTS`` concurrent clients — after asserting the served
outcomes are bitwise identical to offline ``localize_many`` — and
writes the throughput/latency table plus the default serve-SLO
evaluation to ``BENCH_serve.json`` (gated by ``scripts/ci_checks.py``).

Another mode measures the sky-map layer: ``--skymap`` times the flat
dense scan (:func:`repro.localization.skymap.compute_skymap`) against
the coarse-to-fine hierarchical search
(:func:`repro.localization.hierarchy.hierarchical_skymap`) on the same
ring block at ``SKYMAP_RESOLUTIONS``, recording wall-clocks, cell
counts and best-fit/area agreement; fits the likelihood temperature on
one seeded calibration campaign and quotes 90% containment on a
held-out seed; and writes the sweep + calibration + op-registry
throughputs (with the ops-SLO floors and ``vs_pr7`` deltas) to
``BENCH_pr10.json`` (gated by ``scripts/ci_checks.py`` ``skymap``).

Usage::

    python scripts/bench_report.py [--output BENCH_pr7.json] [--skip-kernels]
    python scripts/bench_report.py --serve   # writes BENCH_serve.json
    python scripts/bench_report.py --skymap  # writes BENCH_pr10.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def run_kernel_benchmarks() -> dict[str, float]:
    """Run the micro-benchmark suite; return kernel -> median seconds."""
    with tempfile.TemporaryDirectory() as tmp:
        report = Path(tmp) / "kernels.json"
        proc = subprocess.run(
            [
                sys.executable, "-m", "pytest",
                str(REPO / "benchmarks" / "test_perf_kernels.py"),
                "-q", f"--benchmark-json={report}",
            ],
            cwd=REPO,
            env=os.environ | {"PYTHONPATH": str(REPO / "src")},
        )
        if proc.returncode != 0:
            raise SystemExit(f"kernel benchmarks failed (rc={proc.returncode})")
        data = json.loads(report.read_text())
    return {
        bench["name"]: bench["stats"]["median"]
        for bench in data["benchmarks"]
    }


def run_perf_registry() -> dict[str, float]:
    """Run the ``repro.perf`` op registry; return raw name -> rows/s.

    The caller prefixes keys with ``perf_`` for the results table; the
    raw dict also feeds the SLO ``ops`` throughput floors, which are
    keyed by registry name.
    """
    sys.path.insert(0, str(REPO / "src"))
    import repro.perf as perf

    return dict(perf.run_all())


def run_inference_benchmarks(rounds: int = 3) -> dict[str, float]:
    """Time every inference backend on paper-shaped ring blocks.

    The workload is 64 blocks of 597 rows x 13 features — the paper's
    first-background-iteration ring count (``fpga.PAPER_NUM_RINGS``) —
    pushed through the paper-width background network.  Returns
    rows-per-second per backend (best of ``rounds``) plus the speedup
    of each compiled backend over the eager module tree.  ``planned``
    is the runtime-default float32 plan; ``planned_f64`` is the
    bit-parity mode the campaign driver defaults to.
    """
    sys.path.insert(0, str(REPO / "src"))
    import numpy as np
    from repro.fpga.hls_model import PAPER_NUM_RINGS
    from repro.infer import compile_int8_plan, compile_plan
    from repro.models.background import build_background_net
    from repro.quantization.fuse import fuse_linear_bn_relu
    from repro.quantization.qat import convert_to_int8, prepare_qat

    rng = np.random.default_rng(2024)
    calib = rng.normal(size=(4096, 13))

    net = build_background_net(rng=rng)
    net.train()
    net.forward(calib)  # warm BatchNorm running stats
    net.eval()

    swapped = build_background_net(rng=np.random.default_rng(2024), swapped=True)
    swapped.train()
    swapped.forward(calib)  # warm BatchNorm before baking it into the fusion
    swapped.eval()
    qat = prepare_qat(fuse_linear_bn_relu(swapped))
    qat.train()
    qat.forward(calib)  # calibrate observers
    qat.eval()
    quantized = convert_to_int8(qat)

    plan32 = compile_plan(net)  # runtime default dtype: float32
    assert plan32.dtype == np.float32
    arena32 = plan32.arena()
    plan64 = compile_plan(net, dtype=np.float64)
    arena64 = plan64.arena()
    int8_plan = compile_int8_plan(quantized)
    int8_arena = int8_plan.arena()

    def best_of(fn) -> float:
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    # Two block regimes: the paper's first-iteration ring count (plan
    # fusion territory) and late-iteration / dEta-sized small blocks
    # (where cross-event gathering pays).
    regimes = {
        f"block{PAPER_NUM_RINGS}": (PAPER_NUM_RINGS, 64),
        "block40": (40, 500),
    }
    results: dict[str, float] = {}
    for tag, (nrows, nblocks) in regimes.items():
        blocks = [rng.normal(size=(nrows, 13)) for _ in range(nblocks)]
        gathered = np.concatenate(blocks, axis=0)
        total_rows = float(gathered.shape[0])

        # Parity before timing: a broken backend must not post a number.
        # float64 plan: bitwise vs eager.  float32 plan: close.  INT8
        # plan: bitwise vs the eager quantized chain AND vs the chain
        # through the retained pre-rework reference kernels.
        eager_out = [net.forward(block) for block in blocks]
        for block, ref in zip(blocks, eager_out):
            np.testing.assert_array_equal(
                plan64.run(block, arena=arena64), ref
            )
            np.testing.assert_allclose(
                plan32.run(block, arena=arena32), ref, rtol=1e-4, atol=1e-5
            )
        np.testing.assert_allclose(
            plan64.run(gathered),
            np.concatenate(eager_out, axis=0),
            rtol=1e-9,
            atol=0.0,
        )
        for block in blocks[:4]:
            int8_out = int8_plan.run(block, arena=int8_arena)
            np.testing.assert_array_equal(int8_out, quantized.forward(block))
            np.testing.assert_array_equal(
                int8_out, quantized.forward_reference(block)
            )

        t_eager = best_of(lambda: [net.forward(b) for b in blocks])
        t_planned = best_of(
            lambda: [plan32.run(b, arena=arena32) for b in blocks]
        )
        t_planned64 = best_of(
            lambda: [plan64.run(b, arena=arena64) for b in blocks]
        )
        t_gathered = best_of(lambda: plan32.run(gathered))
        t_int8 = best_of(
            lambda: [int8_plan.run(b, arena=int8_arena) for b in blocks]
        )
        results.update(
            {
                f"infer_{tag}_eager_rows_per_s": total_rows / t_eager,
                f"infer_{tag}_planned_rows_per_s": total_rows / t_planned,
                f"infer_{tag}_planned_f64_rows_per_s": total_rows / t_planned64,
                f"infer_{tag}_gathered_rows_per_s": total_rows / t_gathered,
                f"infer_{tag}_int8_rows_per_s": total_rows / t_int8,
                f"infer_{tag}_planned_speedup": t_eager / t_planned,
                f"infer_{tag}_planned_f64_speedup": t_eager / t_planned64,
                f"infer_{tag}_gathered_speedup": t_eager / t_gathered,
                f"infer_{tag}_int8_speedup": t_eager / t_int8,
            }
        )
    return results


def _small_pipeline(geometry, response):
    """Train the small test-sized networks (same recipe as the test suite)."""
    import numpy as np
    from repro.experiments.datasets import generate_training_rings
    from repro.models.background import BackgroundTrainConfig, train_background_net
    from repro.models.deta import DEtaTrainConfig, train_deta_net
    from repro.pipeline.ml_pipeline import MLPipeline
    from repro.sources.grb import LABEL_BACKGROUND

    data = generate_training_rings(
        geometry,
        response,
        seed=77,
        polar_angles_deg=np.array([0.0, 40.0, 80.0]),
        exposures_per_angle=3,
    )
    rng = np.random.default_rng(5)
    bnet = train_background_net(
        data.features,
        (data.labels == LABEL_BACKGROUND).astype(float),
        data.polar_true,
        rng,
        config=BackgroundTrainConfig(
            hidden_widths=(32, 16), max_epochs=25, patience=8
        ),
    )
    grb = data.grb_only()
    dnet = train_deta_net(
        grb.features,
        grb.true_eta_errors,
        rng,
        config=DEtaTrainConfig(hidden_widths=(8, 8), max_epochs=25, patience=8),
    )
    return MLPipeline(background_net=bnet, deta_net=dnet)


def run_ml_campaign_benchmark(
    n_trials: int = 12, n_workers: int = 4
) -> dict[str, float]:
    """Time the ML-condition campaign per inference backend.

    Trains the small test-sized networks once, then runs the same
    ``run_trials`` point with ``infer_backend`` reference / planned /
    planned + ``event_batch=4``, asserting the reference and planned
    error arrays are identical (and the batched run close) before
    reporting wall-clocks.
    """
    sys.path.insert(0, str(REPO / "src"))
    import dataclasses

    import numpy as np
    from repro.detector.response import DetectorResponse
    from repro.experiments.trials import TrialConfig, run_trials
    from repro.geometry.tiles import adapt_geometry

    geometry = adapt_geometry()
    response = DetectorResponse(geometry)
    pipeline = _small_pipeline(geometry, response)

    base = TrialConfig(
        fluence_mev_cm2=1.0, polar_angle_deg=30.0, condition="ml"
    )
    configs = {
        "reference": base,
        "planned": dataclasses.replace(base, infer_backend="planned"),
        "planned_batched": dataclasses.replace(
            base, infer_backend="planned", event_batch=4
        ),
    }
    # Warm the persistent executor (worker spawn + numpy/scipy imports)
    # so the first timed backend does not pay pool startup.
    run_trials(
        geometry,
        response,
        seed=314,
        n_trials=n_workers,
        config=base,
        ml_pipeline=pipeline,
        n_workers=n_workers,
    )

    timings: dict[str, float] = {}
    errors: dict[str, np.ndarray] = {}
    for name, config in configs.items():
        t0 = time.perf_counter()
        errors[name] = run_trials(
            geometry,
            response,
            seed=314,
            n_trials=n_trials,
            config=config,
            ml_pipeline=pipeline,
            n_workers=n_workers,
        )
        timings[f"campaign_ml_{name}_{n_workers}w"] = (
            time.perf_counter() - t0
        )

    np.testing.assert_array_equal(errors["reference"], errors["planned"])
    np.testing.assert_allclose(
        errors["reference"], errors["planned_batched"], atol=1e-6
    )
    timings["campaign_ml_planned_speedup"] = (
        timings[f"campaign_ml_reference_{n_workers}w"]
        / timings[f"campaign_ml_planned_{n_workers}w"]
    )
    timings["campaign_ml_batched_speedup"] = (
        timings[f"campaign_ml_reference_{n_workers}w"]
        / timings[f"campaign_ml_planned_batched_{n_workers}w"]
    )
    return timings


def run_campaign_benchmark(rounds: int = 3) -> dict[str, float]:
    """Time the e2e campaign: legacy pool-per-stage vs persistent executor.

    Each path runs ``rounds`` times and the report keeps the minimum —
    the standard defense against background-load noise for wall-clock
    comparisons on a shared machine.  Three rounds (up from two) because
    the profiling-overhead delta gates against a 5% budget: at two
    rounds the executor/profiled minima carry enough scheduler noise to
    swing the percentage by more than the budget itself.
    """
    sys.path.insert(0, str(REPO / "src"))
    sys.path.insert(0, str(REPO / "benchmarks"))
    import test_campaign_e2e as e2e
    from repro.detector.response import DetectorResponse
    from repro.geometry.tiles import adapt_geometry

    geometry = adapt_geometry()
    response = DetectorResponse(geometry)

    def best_of(fn):
        times, out = [], None
        for _ in range(rounds):
            t0 = time.perf_counter()
            out = fn(geometry, response)
            times.append(time.perf_counter() - t0)
        return min(times), out

    t_executor, pooled = best_of(e2e.run_campaign_executor)
    t_legacy, legacy = best_of(e2e.run_campaign_legacy)

    import repro.obs as obs

    obs.enable()
    try:
        t_traced, traced = best_of(e2e.run_campaign_executor)
    finally:
        obs.disable()

    obs.enable()
    obs.profile.start()
    obs.resources.start()
    try:
        t_profiled, profiled = best_of(e2e.run_campaign_executor)
    finally:
        obs.profile.stop()
        obs.resources.stop()
        obs.disable()

    import numpy as np
    for ref, got, tr, pr in zip(legacy, pooled, traced, profiled):
        np.testing.assert_array_equal(ref, got)
        np.testing.assert_array_equal(ref, tr)
        np.testing.assert_array_equal(ref, pr)

    return {
        "campaign_e2e_executor_4w": t_executor,
        "campaign_e2e_legacy_4w": t_legacy,
        "campaign_e2e_speedup": t_legacy / t_executor,
        "campaign_e2e_executor_4w_traced": t_traced,
        "campaign_e2e_tracing_overhead_pct":
            100.0 * (t_traced - t_executor) / t_executor,
        "campaign_e2e_executor_4w_profiled": t_profiled,
        "campaign_e2e_profiling_overhead_pct":
            100.0 * (t_profiled - t_executor) / t_executor,
    }


def run_instrumented_telemetry(perf_raw: dict[str, float]) -> dict:
    """One fully-instrumented campaign: trace, profile and SLO rollups.

    Runs the executor campaign with tracing, the sampling profiler and
    the resource monitor live in the parent and every worker, then
    returns the three telemetry sections the report embeds:
    ``trace_summary`` (per-stage table), ``profile`` (merged
    cross-process samples — span self/total milliseconds plus the top
    functions, with the contributing pids) and ``slo`` (the default
    spec evaluated against this run's stages/histograms and the
    op-registry throughputs measured earlier).
    """
    sys.path.insert(0, str(REPO / "src"))
    sys.path.insert(0, str(REPO / "benchmarks"))
    import test_campaign_e2e as e2e
    import repro.obs as obs
    from repro.detector.response import DetectorResponse
    from repro.geometry.tiles import adapt_geometry
    from repro.obs import slo
    from repro.obs.metrics import REGISTRY
    from repro.obs.summary import summary_dict

    geometry = adapt_geometry()
    response = DetectorResponse(geometry)
    obs.enable()
    obs.profile.start()
    obs.resources.start()
    try:
        e2e.run_campaign_executor(geometry, response)
    finally:
        obs.profile.stop()
        obs.resources.stop()
    events = obs.events() + obs.metric_events()
    profile_events = obs.profile.profile_events()
    metrics = REGISTRY.dump()
    obs.disable()

    snap = obs.profile.merged_profile(profile_events)
    profile_section: dict = {"available": snap is not None}
    if snap is not None:
        profile_section.update(
            {
                "samples": snap["samples"],
                "duration_s": round(snap["duration_s"], 3),
                "pids": snap["pids"],
                "span_self_ms": {
                    k: round(v, 1) for k, v in snap["span_self_ms"].items()
                },
                "span_total_ms": {
                    k: round(v, 1) for k, v in snap["span_total_ms"].items()
                },
                "top_functions": [
                    {"name": name, "self": self_n, "total": total_n}
                    for name, self_n, total_n in obs.profile.function_stats(
                        snap["folded"]
                    )[:10]
                ],
            }
        )

    # The campaign run produces no serve-layer load reports; the serve
    # section of the default spec is evaluated by `--serve` against its
    # own measured sweep and embedded in BENCH_serve.json instead.
    spec = slo.default_spec()
    spec.pop("serve", None)
    slo_report = slo.evaluate(
        spec, events=events, metrics=metrics, perf=perf_raw
    )
    print(slo.render_report(slo_report))
    return {
        "trace_summary": summary_dict(events),
        "profile": profile_section,
        "slo": slo_report,
    }


#: Client counts swept by the serve benchmark (>= 3 for the report table).
SERVE_CLIENT_COUNTS = (1, 4, 8, 16)

#: The sweep point the checked-in serve SLO floor is evaluated against
#: (the default spec's ``serve.load`` rules).
SERVE_SLO_CLIENTS = 8


def run_serve_benchmark(requests_per_client: int = 4,
                        pool_size: int = 8) -> dict:
    """Sweep the serving layer over client counts; return the full report.

    Trains the small test-sized networks, pre-simulates an event pool,
    asserts the served outcomes are bitwise identical to the offline
    ``localize_many`` path on the same inputs, then runs one closed-loop
    load measurement per entry in ``SERVE_CLIENT_COUNTS``.  The returned
    dict is the ``BENCH_serve.json`` body: the per-count ``runs`` table,
    the parity record, and the default spec's ``serve`` section
    evaluated against the ``SERVE_SLO_CLIENTS``-client run.
    """
    sys.path.insert(0, str(REPO / "src"))
    import numpy as np
    from repro.detector.response import DetectorResponse
    from repro.geometry.tiles import adapt_geometry
    from repro.infer import build_engine, localize_many
    from repro.obs import slo
    from repro.serve import run_load, serve_events, synthetic_event_pool

    geometry = adapt_geometry()
    response = DetectorResponse(geometry)
    pipeline = _small_pipeline(geometry, response)
    engine = build_engine(pipeline, "planned", dtype="float64")
    pool = synthetic_event_pool(
        pool_size, 1105, geometry=geometry, response=response
    )

    # Parity before timing: the served path must be the offline batched
    # path bit for bit, or its throughput numbers are meaningless.
    parity_sets = pool[:4]
    seeds = np.random.SeedSequence(1106).spawn(len(parity_sets))
    ref = localize_many(
        pipeline, parity_sets,
        [np.random.default_rng(s) for s in seeds], engine=engine,
    )
    served = serve_events(
        pipeline, parity_sets,
        [np.random.default_rng(s) for s in seeds], engine=engine,
    )
    for s, r in zip(served, ref):
        np.testing.assert_array_equal(s.direction, r.direction)
        assert s.iterations == r.iterations

    runs: dict[str, dict] = {}
    for n_clients in SERVE_CLIENT_COUNTS:
        report = run_load(
            pipeline,
            pool,
            seed=1105 + n_clients,
            n_clients=n_clients,
            requests_per_client=requests_per_client,
            engine=engine,
        )
        runs[f"c{n_clients}"] = report.to_dict()
        print(
            f"serve c{n_clients}: {report.req_per_s:.1f} req/s, "
            f"p50/p99 {report.p50_ms:.1f}/{report.p99_ms:.1f} ms, "
            f"{report.rounds} rounds"
        )

    spec = {"serve": slo.default_spec()["serve"]}
    slo_report = slo.evaluate(
        spec, serve={"load": runs[f"c{SERVE_SLO_CLIENTS}"]}
    )
    print(slo.render_report(slo_report))
    return {
        "schema": (
            "runs.cN -> one closed-loop LoadReport at N concurrent "
            "clients (latencies ms, req_per_s sustained); slo -> the "
            f"default serve spec vs the c{SERVE_SLO_CLIENTS} run"
        ),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workload": {
            "pool_size": pool_size,
            "requests_per_client": requests_per_client,
            "client_counts": list(SERVE_CLIENT_COUNTS),
            "slo_run": f"c{SERVE_SLO_CLIENTS}",
        },
        "parity": {
            "matches_localize_many_bitwise": True,
            "n_events": len(parity_sets),
        },
        "runs": runs,
        "slo": slo_report,
    }


#: Target resolutions swept by the flat-vs-hierarchical comparison
#: (degrees; >= 3 entries for the report table and CI gate).
SKYMAP_RESOLUTIONS = (1.0, 0.5, 0.25)

#: Rings in the sweep workload.  Smaller than the paper's 597-ring
#: first-iteration block so the dense 0.25-degree scan (rings x ~360k
#: pixels) stays within a few hundred MB; both paths see the same set,
#: so the speedup ratio is unaffected.
SKYMAP_RING_COUNT = 128


def run_skymap_benchmark(
    fit_trials: int = 40,
    heldout_trials: int = 100,
    n_workers: int = 4,
) -> dict:
    """Benchmark the hierarchical sky search and calibrate its regions.

    Two measurement groups, returned as the ``BENCH_pr10.json`` body:

    * **Flat-vs-hierarchical sweep** — the same synthetic paper-shaped
      ring block localized by the dense scan and by the coarse-to-fine
      search at each entry of ``SKYMAP_RESOLUTIONS`` (both at unit
      temperature, so the posteriors are directly comparable),
      recording wall-clocks, the speedup, cells evaluated vs flat
      pixels, best-fit separation, and the 90%-region areas.
    * **Containment calibration** — :func:`fit_temperature` on one
      seeded campaign picks the likelihood temperature, then a
      held-out-seed campaign at that temperature quotes the unbiased
      68%/90% containment fractions the CI gate checks against its
      calibration window.

    The op-registry throughputs ride along (``perf_`` keys) so the
    report embeds a passing ops-SLO section and per-op ``vs_pr7``
    deltas like the main report.
    """
    sys.path.insert(0, str(REPO / "src"))
    from dataclasses import replace

    import numpy as np
    from repro.detector.response import DetectorResponse
    from repro.experiments.calibration import fit_temperature, run_calibration
    from repro.geometry.tiles import adapt_geometry
    from repro.localization.hierarchy import SkymapConfig, hierarchical_skymap
    from repro.localization.skymap import SkyGrid, compute_skymap
    from repro.obs import slo
    from repro.perf.ops import _ring_block

    rings = _ring_block(SKYMAP_RING_COUNT)

    def best_of(fn, rounds: int = 2):
        times, out = [], None
        for _ in range(rounds):
            t0 = time.perf_counter()
            out = fn()
            times.append(time.perf_counter() - t0)
        return min(times), out

    sweep: dict[str, dict] = {}
    for res in SKYMAP_RESOLUTIONS:
        grid = SkyGrid.build(res, 95.0)
        t_flat, flat = best_of(lambda: compute_skymap(rings, grid))
        cfg = SkymapConfig(resolution_deg=res, temperature=1.0)
        t_hier, hier = best_of(lambda: hierarchical_skymap(rings, cfg))
        cos_sep = float(
            np.clip(
                flat.best_direction() @ hier.sky.best_direction(), -1.0, 1.0
            )
        )
        sweep[f"res{res}"] = {
            "resolution_deg": res,
            "flat_pixels": int(grid.num_pixels),
            "cells_evaluated": int(hier.cells_evaluated),
            "levels": int(hier.levels),
            "flat_s": round(t_flat, 4),
            "hier_s": round(t_hier, 4),
            "speedup": round(t_flat / t_hier, 1),
            "best_fit_separation_deg": round(
                float(np.degrees(np.arccos(cos_sep))), 3
            ),
            "flat_area90_deg2": round(flat.credible_region_area_deg2(0.9), 2),
            "hier_area90_deg2": round(
                hier.sky.credible_region_area_deg2(0.9), 2
            ),
        }
        row = sweep[f"res{res}"]
        print(
            f"skymap res={res}: flat {t_flat:.3f}s over "
            f"{row['flat_pixels']} px, hier {t_hier:.3f}s over "
            f"{row['cells_evaluated']} cells -> {row['speedup']}x, "
            f"sep {row['best_fit_separation_deg']} deg"
        )

    geometry = adapt_geometry()
    response = DetectorResponse(geometry)
    base = SkymapConfig(resolution_deg=0.25)
    fitted_t, fit_report = fit_temperature(
        geometry,
        response,
        seed=77,
        n_trials=fit_trials,
        skymap=base,
        n_workers=n_workers,
    )
    print(
        f"skymap calibration: fitted T={fitted_t} "
        f"(fit fraction90={fit_report.fraction(0.9):.3f})"
    )
    heldout = run_calibration(
        geometry,
        response,
        seed=123,
        n_trials=heldout_trials,
        skymap=replace(base, temperature=fitted_t),
        n_workers=n_workers,
    )
    heldout_summary = heldout.summary()
    print(
        f"skymap calibration: held-out fraction90="
        f"{heldout_summary['fraction90']:.3f} over "
        f"{heldout_summary['n_trials']} trials"
    )

    perf_raw = run_perf_registry()
    spec = {"ops": slo.default_spec()["ops"]}
    slo_report = slo.evaluate(spec, perf=perf_raw)
    print(slo.render_report(slo_report))

    results: dict = {f"perf_{name}": rows for name, rows in perf_raw.items()}
    results["skymap_sweep"] = sweep
    results["calibration"] = {
        "condition": "true_deta",
        "resolution_deg": base.resolution_deg,
        "fit_seed": 77,
        "fit_trials": fit_trials,
        "fitted_temperature": fitted_t,
        "fit_fraction90": fit_report.fraction(0.9),
        "heldout_seed": 123,
        "heldout_trials": heldout_trials,
        "heldout_fraction68": heldout_summary["fraction68"],
        "heldout_fraction90": heldout_summary["fraction90"],
        "heldout_median_area90_deg2": heldout_summary["median_area90_deg2"],
        "heldout_median_error_deg": heldout_summary["median_error_deg"],
    }
    target_row = sweep[f"res{0.5}"]
    return {
        "schema": (
            "results.skymap_sweep.resR -> flat vs hierarchical at "
            "R-degree target resolution (seconds best of 2, same ring "
            "block, unit temperature); results.calibration -> "
            "temperature fit + held-out containment; perf_* -> rows/s"
        ),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workload": {
            "n_rings": SKYMAP_RING_COUNT,
            "resolutions_deg": list(SKYMAP_RESOLUTIONS),
            "fit_trials": fit_trials,
            "heldout_trials": heldout_trials,
        },
        "results": results,
        "targets": {
            "hier_ge_5x_at_0p5deg": bool(target_row["speedup"] >= 5.0),
            "calibration_in_window": bool(
                0.85 <= heldout_summary["fraction90"] <= 0.95
            ),
            "slo_passed": bool(slo_report["passed"]),
        },
        "vs_pr7": compare_ops_with_prior(results, "BENCH_pr7.json"),
        "slo": slo_report,
    }


def compare_ops_with_prior(results: dict[str, float], prior_name: str) -> dict:
    """Per-op / per-backend deltas against a prior report, if present.

    Covers every ``perf_``, ``infer_`` and ``campaign_`` key the two
    reports share (positive ``delta_pct`` = faster for rows/s keys,
    slower for seconds keys — the ``unit`` field disambiguates), and
    lists keys new in this report, so a regression in any tracked
    kernel is visible in one place.
    """
    prior_path = REPO / prior_name
    if not prior_path.exists():
        return {"available": False}
    prior = json.loads(prior_path.read_text())["results"]
    tracked = ("perf_", "infer_", "campaign_")
    out: dict = {"available": True, "ops": {}, "new": []}
    for key in sorted(results):
        if not key.startswith(tracked):
            continue
        if not isinstance(results[key], (int, float)):
            continue
        if key not in prior:
            out["new"].append(key)
            continue
        # perf-registry keys are rows/s by construction even though the
        # name does not carry a unit suffix.
        unit = (
            "rows_per_s"
            if "rows_per_s" in key or key.startswith("perf_")
            else ("ratio" if "speedup" in key else "seconds")
        )
        out["ops"][key] = {
            "prior": prior[key],
            "now": results[key],
            "unit": unit,
            "delta_pct": 100.0 * (results[key] - prior[key]) / prior[key],
        }
    return out


def compare_with_prior(results: dict[str, float], prior_name: str) -> dict:
    """Compare campaign wall-clock against a prior report, if present.

    Earlier reports predate the inference runtime (and, for pr1, the
    telemetry layer), so the executor-campaign delta measures the
    overhead this PR's instrumented hot path adds when its features are
    off (acceptance: under a few percent, i.e. noise).
    """
    prior_path = REPO / prior_name
    if not prior_path.exists():
        return {"available": False}
    prior = json.loads(prior_path.read_text())["results"]
    out: dict = {"available": True}
    for key in ("campaign_e2e_executor_4w", "campaign_e2e_legacy_4w"):
        if key in prior and key in results:
            out[key] = {
                "prior_s": prior[key],
                "now_s": results[key],
                "delta_pct": 100.0 * (results[key] - prior[key]) / prior[key],
            }
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None)
    parser.add_argument(
        "--skip-kernels", action="store_true",
        help="only run the e2e campaign comparison",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="run only the serving-layer load sweep and write "
             "BENCH_serve.json",
    )
    parser.add_argument(
        "--skymap", action="store_true",
        help="run only the hierarchical-skymap sweep + containment "
             "calibration and write BENCH_pr10.json",
    )
    args = parser.parse_args(argv)

    if args.skymap:
        report = run_skymap_benchmark()
        output = args.output or str(REPO / "BENCH_pr10.json")
        Path(output).write_text(json.dumps(report, indent=2) + "\n")
        print(f"skymap report written to {output}")
        return 0 if all(report["targets"].values()) else 1

    if args.serve:
        report = run_serve_benchmark()
        output = args.output or str(REPO / "BENCH_serve.json")
        Path(output).write_text(json.dumps(report, indent=2) + "\n")
        print(f"serve report written to {output}")
        return 0 if report["slo"]["passed"] else 1

    args.output = args.output or str(REPO / "BENCH_pr7.json")
    results: dict[str, float] = {}
    if not args.skip_kernels:
        results.update(run_kernel_benchmarks())
    perf_raw = run_perf_registry()
    results.update(
        {f"perf_{name}": rows for name, rows in perf_raw.items()}
    )
    results.update(run_inference_benchmarks())
    results.update(run_campaign_benchmark())
    results.update(run_ml_campaign_benchmark())
    telemetry = run_instrumented_telemetry(perf_raw)

    block = "infer_block597"
    report = {
        "schema": (
            "kernel -> median seconds; perf_* / infer_* -> rows/s "
            "(best of 3); campaign entries -> seconds (best of 2; "
            "ml: single run)"
        ),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
        "targets": {
            "int8_ge_eager": bool(
                results[f"{block}_int8_rows_per_s"]
                >= results[f"{block}_eager_rows_per_s"]
            ),
            "planned_ge_1p5x_eager": bool(
                results[f"{block}_planned_speedup"] >= 1.5
            ),
            "profiled_overhead_lt_5pct": bool(
                results["campaign_e2e_profiling_overhead_pct"] < 5.0
            ),
            "slo_passed": bool(telemetry["slo"]["passed"]),
        },
        "vs_pr1": compare_with_prior(results, "BENCH_pr1.json"),
        "vs_pr2": compare_with_prior(results, "BENCH_pr2.json"),
        "vs_pr6": compare_ops_with_prior(results, "BENCH_pr6.json"),
        **telemetry,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
