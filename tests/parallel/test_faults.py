"""Crash-recovery tests: the executor must survive dying, hanging, and
poisonous workers without changing results or leaking shared memory.

Each test uses a private :class:`CampaignExecutor` (not the process-wide
registry) because killing workers mutates pool state that other tests
share.  All tests carry the ``shm_leakcheck`` marker, so the conftest
guard asserts zero orphaned segments after every scenario.
"""

import os

import numpy as np
import pytest

import repro.obs as obs
from repro.parallel import shm
from repro.parallel.executor import (
    CampaignExecutor,
    CampaignWorkerError,
    get_executor,
)

from tests.parallel import faults

pytestmark = pytest.mark.shm_leakcheck


class TestCrashRecovery:
    def test_sigkilled_worker_is_respawned_and_results_match_serial(
        self, tmp_path
    ):
        """The acceptance scenario: SIGKILL one worker mid-campaign."""
        # Serial reference: a pre-claimed flag disarms the fault (the
        # serial path runs in this very process).
        disarmed = str(tmp_path / "disarmed.flag")
        assert faults._claim_flag(disarmed)
        serial = CampaignExecutor(1).map(
            faults.crash_once, [(i, disarmed) for i in range(12)]
        )
        assert serial == [i * i for i in range(12)]
        flag = str(tmp_path / "kill.flag")
        tasks = [(i, flag) for i in range(12)]
        with CampaignExecutor(2) as ex:
            out = ex.map(faults.crash_once, tasks, chunksize=2)
            assert out == serial
            assert ex.stats["worker_restarts"] >= 1
            assert ex.stats["chunk_retries"] >= 1
            # The pool is at full strength again afterwards.
            assert len(ex.worker_pids()) == 2
            assert ex.map(faults.square, [3, 4]) == [9, 16]

    def test_common_payload_rebroadcast_to_respawned_worker(self, tmp_path):
        """A respawned worker must re-receive the cached common context."""
        flag = str(tmp_path / "kill-common.flag")
        tasks = [(i, flag) for i in range(8)]
        with CampaignExecutor(2) as ex:
            out = ex.map(faults.scale_or_crash, tasks, common=10, chunksize=2)
            assert out == [10 * i for i in range(8)]
            assert ex.stats["worker_restarts"] >= 1

    def test_poison_chunk_raises_with_history_and_pool_survives(self):
        with CampaignExecutor(2, max_retries=1) as ex:
            with pytest.raises(
                CampaignWorkerError, match="killed 2 consecutive workers"
            ) as excinfo:
                ex.map(faults.crash_always, list(range(4)), chunksize=4)
            assert "attempt 1" in str(excinfo.value)
            assert "attempt 2" in str(excinfo.value)
            assert ex.stats["worker_restarts"] >= 2
            # Both workers are alive again; ordinary work proceeds.
            assert ex.map(faults.square, [2, 3]) == [4, 9]

    def test_soft_timeout_kills_hung_worker_and_retries(self, tmp_path):
        flag = str(tmp_path / "hang.flag")
        tasks = [(i, flag, 120.0) for i in range(4)]
        with CampaignExecutor(2, task_timeout=1.0) as ex:
            out = ex.map(faults.hang_once, tasks, chunksize=1)
            assert out == [i * i for i in range(4)]
            assert ex.stats["timeouts"] >= 1
            assert ex.stats["worker_restarts"] >= 1


class TestErrorParity:
    def test_raising_task_same_error_at_1_and_4_workers(self):
        """Serial and pooled maps surface the same exception type, and
        both pools stay usable afterwards."""
        tasks = [(i, 2) for i in range(6)]
        ex1 = CampaignExecutor(1)
        with pytest.raises(
            CampaignWorkerError, match="task 2 exploded deliberately"
        ):
            ex1.map(faults.raise_on, tasks)
        assert ex1.map(faults.square, [5]) == [25]

        ex4 = get_executor(4)
        pids = ex4.worker_pids()
        with pytest.raises(
            CampaignWorkerError, match="task 2 exploded deliberately"
        ):
            ex4.map(faults.raise_on, tasks, chunksize=1)
        assert ex4.worker_pids() == pids  # no restarts for a task error
        assert ex4.map(faults.square, [5]) == [25]


class TestShmHygiene:
    def test_interrupted_map_leaves_zero_segments(self):
        """KeyboardInterrupt mid-map must not leak /dev/shm segments."""

        class InterruptingQueue:
            def __init__(self, inner):
                self.inner = inner
                self.fired = False

            def get(self, timeout=None):
                if not self.fired:
                    self.fired = True
                    raise KeyboardInterrupt
                return self.inner.get(timeout=timeout)

        rng = np.random.default_rng(0)
        args = [rng.normal(size=(256, 64)) for _ in range(8)]  # > threshold
        expected = [float(a.sum()) for a in args]
        with CampaignExecutor(2) as ex:
            worker_pids = set(ex.worker_pids())
            real_queue = ex._results
            ex._results = InterruptingQueue(real_queue)
            with pytest.raises(KeyboardInterrupt):
                ex.map(faults.array_sum, args, chunksize=2)
            ex._results = real_queue
            # No parent-owned input blocks survived the interrupt.
            assert shm.list_segments(pids={os.getpid()}) == []
            # The pool is still usable, and stale results from the
            # interrupted epoch are discarded, not spliced in.
            out = ex.map(faults.array_sum, args, chunksize=2)
            assert out == expected
        # After close, the workers' final result blocks are gone too.
        assert shm.list_segments(pids=worker_pids) == []

    def test_startup_janitor_sweeps_dead_owner_segments(self):
        """A segment named for a dead pid is reclaimed at pool startup."""
        from multiprocessing import shared_memory

        # Fabricate an orphan: claim a name owned by an impossible pid.
        name = f"{shm.SHM_NAME_PREFIX}-999999999-0"
        seg = shared_memory.SharedMemory(name=name, create=True, size=64)
        seg.close()
        assert name in shm.list_segments()
        removed = shm.sweep_stale()
        assert name in removed
        assert name not in shm.list_segments()


class TestRecoveryTelemetry:
    def test_worker_restarts_surface_in_trace_summary(self, tmp_path):
        """Traced crash-recovery campaign reports executor.worker_restarts."""
        flag = str(tmp_path / "kill-traced.flag")
        tasks = [(i, flag) for i in range(8)]
        obs.enable()
        try:
            with obs.span("test.campaign"):
                with CampaignExecutor(2) as ex:
                    out = ex.map(faults.crash_once, tasks, chunksize=2)
            assert out == [i * i for i in range(8)]
            summary = obs.summary_dict(obs.events() + obs.metric_events())
            assert summary["counters"].get("executor.worker_restarts", 0) >= 1
            assert summary["counters"].get("executor.chunk_retries", 0) >= 1
        finally:
            obs.disable()
