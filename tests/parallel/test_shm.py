"""Tests for the shared-memory object transport."""

import numpy as np
import pytest

from repro.parallel import shm


def roundtrip(obj, threshold=0):
    payload = shm.pack(obj, threshold=threshold)
    try:
        return shm.unpack(payload), payload
    finally:
        shm.unlink(payload)


class TestPackUnpack:
    def test_nested_tree(self):
        obj = {
            "big": np.arange(10_000, dtype=np.float64),
            "nested": [("label", np.ones((50, 3))), {"k": np.int64(7)}],
            "scalar": 3.5,
        }
        out, payload = roundtrip(obj)
        assert payload.shm_name is not None
        assert np.array_equal(out["big"], obj["big"])
        assert np.array_equal(out["nested"][0][1], np.ones((50, 3)))
        assert out["nested"][1]["k"] == 7
        assert out["scalar"] == 3.5

    def test_empty_array(self):
        out, _ = roundtrip(np.empty(0))
        assert out.shape == (0,)
        assert out.dtype == np.float64

    def test_zero_row_2d_array(self):
        """0-row hit/ring arrays (empty exposures) must survive transport."""
        out, _ = roundtrip({"pos": np.empty((0, 3)), "e": np.empty(0)})
        assert out["pos"].shape == (0, 3)
        assert out["e"].shape == (0,)

    def test_mixed_empty_and_full(self):
        obj = (np.empty((0, 13)), np.arange(5000.0), np.empty(0, dtype=np.int64))
        out, _ = roundtrip(obj)
        assert out[0].shape == (0, 13)
        assert np.array_equal(out[1], np.arange(5000.0))
        assert out[2].dtype == np.int64

    def test_small_arrays_stay_inline(self):
        payload = shm.pack(np.arange(4), threshold=1 << 20)
        assert payload.shm_name is None
        assert np.array_equal(shm.unpack(payload), np.arange(4))

    def test_dtype_preserved(self):
        for dtype in (np.float32, np.int32, np.uint8, np.bool_, np.complex128):
            out, _ = roundtrip(np.zeros(100, dtype=dtype))
            assert out.dtype == dtype

    def test_non_contiguous_input(self):
        base = np.arange(20_000, dtype=np.float64).reshape(100, 200)
        strided = base[::2, ::3]
        out, _ = roundtrip(strided)
        assert np.array_equal(out, strided)

    def test_result_is_writable_after_unlink(self):
        out, _ = roundtrip(np.arange(1000.0))
        out[0] = -1.0
        assert out[0] == -1.0

    def test_dataclass_payload(self):
        from repro.experiments.datasets import TrainingData

        data = TrainingData(
            features=np.random.default_rng(0).normal(size=(300, 13)),
            labels=np.zeros(300, dtype=np.int64),
            true_eta_errors=np.zeros(300),
            polar_true=np.zeros(300),
            prop_deta=np.zeros(300),
        )
        out, _ = roundtrip(data)
        assert isinstance(out, TrainingData)
        assert np.array_equal(out.features, data.features)

    def test_unlink_idempotent(self):
        payload = shm.pack(np.arange(10_000.0), threshold=0)
        shm.unpack(payload)
        shm.unlink(payload)
        shm.unlink(payload)  # second release is a no-op

    def test_unlink_required_before_reuse(self):
        """Unpack twice is legal while the block is still linked."""
        payload = shm.pack(np.arange(10_000.0), threshold=0)
        a = shm.unpack(payload)
        b = shm.unpack(payload)
        shm.unlink(payload)
        assert np.array_equal(a, b)

    def test_object_dtype_rides_pickle(self):
        arr = np.array([{"a": 1}, None], dtype=object)
        payload = shm.pack(arr, threshold=0)
        assert payload.shm_name is None
        out = shm.unpack(payload)
        assert out[0] == {"a": 1}


class TestThreshold:
    def test_threshold_boundary(self):
        arr = np.zeros(shm.SHM_THRESHOLD_BYTES // 8, dtype=np.float64)
        payload = shm.pack(arr)
        assert payload.shm_name is not None
        shm.unlink(payload)
        small = np.zeros(shm.SHM_THRESHOLD_BYTES // 8 - 1, dtype=np.float64)
        assert shm.pack(small).shm_name is None

    def test_meta_matches_arrays(self):
        payload = shm.pack([np.zeros(5000), np.ones((40, 70))], threshold=0)
        assert len(payload.array_meta) == 2
        dtypes = [m[0] for m in payload.array_meta]
        assert all(np.dtype(d) == np.float64 for d in dtypes)
        shm.unlink(payload)
