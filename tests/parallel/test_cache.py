"""Tests for the deterministic campaign stage cache."""

import dataclasses

import numpy as np
import pytest

from repro.parallel.cache import StageCache, config_token, resolve_cache


@dataclasses.dataclass(frozen=True)
class FakeConfig:
    fluence: float = 1.0
    polar: float = 20.0
    condition: str = "baseline"


class TestConfigToken:
    def test_stable(self):
        a = config_token(42, 10, FakeConfig(), np.arange(5.0))
        b = config_token(42, 10, FakeConfig(), np.arange(5.0))
        assert a == b
        assert len(a) == 32

    def test_sensitive_to_each_part(self):
        base = config_token(42, 10, FakeConfig())
        assert config_token(43, 10, FakeConfig()) != base
        assert config_token(42, 11, FakeConfig()) != base
        assert config_token(42, 10, FakeConfig(polar=30.0)) != base

    def test_sensitive_to_array_contents_and_shape(self):
        base = config_token(np.arange(6.0))
        assert config_token(np.arange(6.0) + 1e-12) != base
        assert config_token(np.arange(6.0).reshape(2, 3)) != base
        assert config_token(np.arange(6.0).astype(np.float32)) != base

    def test_container_types_distinguished(self):
        assert config_token([1, 2]) != config_token((1, 2))
        assert config_token({"a": 1}) != config_token({"a": 2})
        assert config_token(None) != config_token(0)
        assert config_token(False) != config_token(0.0)

    def test_dict_key_order_irrelevant(self):
        assert config_token({"a": 1, "b": 2}) == config_token({"b": 2, "a": 1})


class TestStageCache:
    def test_miss_then_hit(self, tmp_path):
        cache = StageCache(tmp_path)
        token = config_token(1, 2, 3)
        assert cache.load("stage", token) is None
        payload = {"errors": np.arange(10.0), "meta": (1, "x")}
        cache.store("stage", token, payload)
        out = cache.load("stage", token)
        np.testing.assert_array_equal(out["errors"], payload["errors"])
        assert out["meta"] == (1, "x")

    def test_stages_namespaced(self, tmp_path):
        cache = StageCache(tmp_path)
        token = config_token(7)
        cache.store("alpha", token, "A")
        cache.store("beta", token, "B")
        assert cache.load("alpha", token) == "A"
        assert cache.load("beta", token) == "B"

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = StageCache(tmp_path)
        token = config_token(1)
        cache.store("stage", token, [1, 2, 3])
        cache.path_for("stage", token).write_bytes(b"not a pickle")
        assert cache.load("stage", token) is None

    def test_corrupt_entry_is_quarantined_not_rescanned(self, tmp_path):
        cache = StageCache(tmp_path)
        token = config_token(2)
        cache.store("stage", token, [1, 2, 3])
        path = cache.path_for("stage", token)
        path.write_bytes(b"garbage bytes")
        assert cache.load("stage", token) is None
        # The bad file was moved aside, so the entry is now a clean miss
        # and a fresh store reclaims the real path.
        assert not path.exists()
        assert path.with_suffix(".pkl.corrupt").exists()
        assert cache.load("stage", token) is None
        cache.store("stage", token, [4, 5])
        assert cache.load("stage", token) == [4, 5]

    def test_entry_from_renamed_module_layout_is_corrupt_not_crash(
        self, tmp_path
    ):
        """Unpickling an entry written by an older code layout raises
        ModuleNotFoundError — must degrade to a recompute, not crash."""
        cache = StageCache(tmp_path)
        token = config_token(3)
        path = cache.path_for("stage", token)
        path.parent.mkdir(parents=True, exist_ok=True)
        # GLOBAL opcode referencing a module that no longer exists.
        path.write_bytes(b"crepro.legacy_module_gone\nOldResult\n.")
        assert cache.load("stage", token) is None
        assert not path.exists()
        assert path.with_suffix(".pkl.corrupt").exists()

    def test_resolve_cache(self, tmp_path):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        assert resolve_cache(True) is not None
        assert resolve_cache(tmp_path).root == tmp_path
        cache = StageCache(tmp_path)
        assert resolve_cache(cache) is cache


class TestCampaignCaching:
    def test_run_trials_cache_hit_is_bit_identical(
        self, tmp_path, geometry, response
    ):
        from repro.experiments.trials import TrialConfig, run_trials

        kwargs = dict(
            seed=55, n_trials=3, config=TrialConfig(polar_angle_deg=20.0)
        )
        fresh = run_trials(geometry, response, cache=tmp_path, **kwargs)
        assert list(tmp_path.glob("trials_*.pkl"))
        cached = run_trials(geometry, response, cache=tmp_path, **kwargs)
        np.testing.assert_array_equal(fresh, cached)
        # The key covers the seed: a different campaign misses.
        other = run_trials(
            geometry, response, cache=tmp_path,
            seed=56, n_trials=3, config=TrialConfig(polar_angle_deg=20.0),
        )
        assert len(list(tmp_path.glob("trials_*.pkl"))) == 2
        assert not np.array_equal(fresh, other)

    def test_training_rings_cache_hit_is_bit_identical(
        self, tmp_path, geometry, response
    ):
        from repro.experiments.datasets import generate_training_rings

        kwargs = dict(
            seed=99,
            polar_angles_deg=np.array([10.0, 50.0]),
            exposures_per_angle=2,
        )
        fresh = generate_training_rings(
            geometry, response, cache=tmp_path, **kwargs
        )
        assert list(tmp_path.glob("training_rings_*.pkl"))
        cached = generate_training_rings(
            geometry, response, cache=tmp_path, **kwargs
        )
        np.testing.assert_array_equal(fresh.features, cached.features)
        np.testing.assert_array_equal(fresh.labels, cached.labels)
        np.testing.assert_array_equal(fresh.polar_true, cached.polar_true)
