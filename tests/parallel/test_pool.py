"""Tests for parallel utilities."""

import numpy as np
import pytest

from repro.parallel.pool import chunk_indices, parallel_map, spawn_rngs


def square(x):
    return x * x


class TestSpawnRngs:
    def test_reproducible(self):
        a = spawn_rngs(42, 3)
        b = spawn_rngs(42, 3)
        for ra, rb in zip(a, b):
            assert np.array_equal(ra.random(5), rb.random(5))

    def test_streams_independent(self):
        rngs = spawn_rngs(42, 2)
        x = rngs[0].random(1000)
        y = rngs[1].random(1000)
        assert abs(np.corrcoef(x, y)[0, 1]) < 0.1

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, 0)


class TestChunkIndices:
    def test_balanced(self):
        chunks = chunk_indices(10, 3)
        sizes = [c.size for c in chunks]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_items(self):
        chunks = chunk_indices(2, 5)
        assert len(chunks) == 2

    def test_covers_range(self):
        chunks = chunk_indices(17, 4)
        assert np.array_equal(np.concatenate(chunks), np.arange(17))

    def test_zero_items(self):
        assert chunk_indices(0, 3) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            chunk_indices(-1, 2)
        with pytest.raises(ValueError):
            chunk_indices(5, 0)


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(square, [1, 2, 3], n_workers=1) == [1, 4, 9]

    def test_small_workload_stays_serial(self):
        assert parallel_map(square, [2], n_workers=4) == [4]

    def test_order_preserved(self):
        out = parallel_map(square, list(range(20)), n_workers=1)
        assert out == [i * i for i in range(20)]

    def test_multiprocess_path(self):
        """Actually fan out over processes (spawn context)."""
        out = parallel_map(square, list(range(8)), n_workers=2)
        assert out == [i * i for i in range(8)]
