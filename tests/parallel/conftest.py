"""Shared-memory hygiene enforcement for the parallel test suite.

Tests marked ``shm_leakcheck`` get a teardown guard that fails if the
test left orphaned ``repro-shm`` segments in ``/dev/shm`` — either
segments owned by a process that no longer exists (a killed worker whose
blocks the executor failed to sweep) or parent-owned segments that
survived the map that created them.  ``scripts/check_shm.py`` applies the
same check standalone as a CI gate.
"""

from __future__ import annotations

import os

import pytest

from repro.parallel import shm


@pytest.fixture(autouse=True)
def shm_leak_guard(request):
    yield
    if request.node.get_closest_marker("shm_leakcheck") is None:
        return
    stale = shm.sweep_stale()
    assert not stale, (
        f"orphaned repro shm segments (dead owners) leaked: {stale}"
    )
    mine = shm.list_segments(pids={os.getpid()})
    assert not mine, (
        f"parent-owned shm segments survived the map: {mine}"
    )
