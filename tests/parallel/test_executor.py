"""Tests for the persistent campaign executor.

Pooled tests share the process-wide registry executors (``get_executor``)
so the spawn cost of the worker processes is paid once per worker count
for the whole suite; the registry is torn down atexit.
"""

import os

import numpy as np
import pytest

from repro.parallel.executor import (
    CHUNKS_PER_WORKER,
    MAX_CHUNK_TASKS,
    CampaignExecutor,
    CampaignWorkerError,
    auto_chunksize,
    get_executor,
    live_executor,
)
from repro.parallel.pool import parallel_map


# Module-level workers: spawn-context workers import them by reference.

def square(x):
    return x * x


def scale(common, x):
    return common * x


def report_pid(x):
    return os.getpid()


def fail_on_three(x):
    if x == 3:
        raise ValueError("task three exploded")
    return x


def row_sums(arr):
    return arr.sum(axis=1)


def draw_normal(seed_seq):
    return np.random.default_rng(seed_seq).normal(size=8)


class TestAutoChunksize:
    def test_small_workload_single_task_chunks(self):
        assert auto_chunksize(3, 4) == 1

    def test_targets_chunks_per_worker(self):
        n_tasks, n_workers = 160, 4
        size = auto_chunksize(n_tasks, n_workers)
        n_chunks = -(-n_tasks // size)
        assert n_chunks >= CHUNKS_PER_WORKER * n_workers

    def test_capped(self):
        assert auto_chunksize(10_000_000, 1) == MAX_CHUNK_TASKS

    def test_degenerate(self):
        assert auto_chunksize(0, 4) == 1
        assert auto_chunksize(5, 0) == 1


class TestSerialExecutor:
    def test_is_serial(self):
        ex = CampaignExecutor(1)
        assert ex.is_serial
        assert ex.worker_pids() == []

    def test_map(self):
        assert CampaignExecutor(1).map(square, [1, 2, 3]) == [1, 4, 9]

    def test_map_with_common(self):
        assert CampaignExecutor(1).map(scale, [1, 2], common=10) == [10, 20]

    def test_empty(self):
        assert CampaignExecutor(1).map(square, []) == []


class TestPooledExecutor:
    def test_matches_serial_for_any_chunking(self):
        ex = get_executor(2)
        expected = [i * i for i in range(25)]
        for chunksize in (None, 1, 7, 100):
            assert ex.map(square, list(range(25)), chunksize=chunksize) == expected

    def test_pool_persists_across_maps(self):
        """One pool, many map calls — the heart of the executor."""
        ex = get_executor(2)
        pids_before = ex.worker_pids()
        assert len(pids_before) == 2
        for _ in range(3):
            ex.map(square, list(range(10)))
        assert ex.worker_pids() == pids_before

    def test_runs_in_worker_processes(self):
        ex = get_executor(2)
        pids = set(ex.map(report_pid, list(range(8)), chunksize=1))
        assert os.getpid() not in pids
        assert pids <= set(ex.worker_pids())

    def test_common_payload(self):
        ex = get_executor(2)
        assert ex.map(scale, [1, 2, 3], common=10) == [10, 20, 30]
        # New common value replaces the cached one.
        assert ex.map(scale, [1, 2, 3], common=7) == [7, 14, 21]
        # Dropping the common payload reverts to single-argument calls.
        assert ex.map(square, [4]) == [16]

    def test_error_carries_remote_traceback_and_pool_survives(self):
        ex = get_executor(2)
        pids = ex.worker_pids()
        with pytest.raises(CampaignWorkerError, match="task three exploded"):
            ex.map(fail_on_three, list(range(6)), chunksize=1)
        assert ex.worker_pids() == pids
        assert ex.map(square, [5, 6]) == [25, 36]

    def test_large_arrays_roundtrip(self):
        """Args and results above the shm threshold survive transport."""
        ex = get_executor(2)
        rng = np.random.default_rng(5)
        args = [rng.normal(size=(400, 50)) for _ in range(6)]
        out = ex.map(row_sums, args, chunksize=2)
        for result, arr in zip(out, args):
            np.testing.assert_array_equal(result, arr.sum(axis=1))

    def test_rng_results_independent_of_chunking(self):
        """Per-task SeedSequences make results chunking-invariant."""
        seeds = np.random.SeedSequence(2024).spawn(10)
        expected = [draw_normal(s) for s in seeds]
        ex = get_executor(2)
        for chunksize in (1, 4):
            seeds = np.random.SeedSequence(2024).spawn(10)
            out = ex.map(draw_normal, seeds, chunksize=chunksize)
            for got, want in zip(out, expected):
                np.testing.assert_array_equal(got, want)

    def test_closed_executor_rejects_map(self):
        ex = CampaignExecutor(1)
        ex.close()
        with pytest.raises(RuntimeError, match="closed"):
            ex.map(square, [1])


class TestParallelMapRouting:
    def test_small_batch_serial_without_live_pool(self):
        """No pool for this worker count -> tiny batches never start one."""
        assert live_executor(3) is None
        assert parallel_map(report_pid, [0], n_workers=3) == [os.getpid()]

    def test_small_batch_rides_live_pool(self):
        """Satellite fix: a warm pool serves batches below min_parallel."""
        ex = get_executor(2)
        (pid,) = parallel_map(report_pid, [0], n_workers=2)
        assert pid in ex.worker_pids()


class TestCampaignBitIdentity:
    def test_run_trials_identical_1_vs_4_workers(self, geometry, response):
        """Campaign results must not depend on worker count or chunking."""
        from repro.experiments.trials import TrialConfig, run_trials

        config = TrialConfig(fluence_mev_cm2=1.0, polar_angle_deg=30.0)
        kwargs = dict(seed=123, n_trials=6, config=config)
        serial = run_trials(geometry, response, n_workers=1, **kwargs)
        pooled = run_trials(geometry, response, n_workers=4, **kwargs)
        np.testing.assert_array_equal(serial, pooled)
        # And a repeat through the same warm pool is byte-stable.
        again = run_trials(geometry, response, n_workers=4, **kwargs)
        np.testing.assert_array_equal(serial, again)
