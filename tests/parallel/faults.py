"""Fault-injection workers for executor crash-recovery tests.

Module-level functions (importable under the ``spawn`` start method) that
kill, hang, or poison the worker process they run in, on demand.  The
once-only variants coordinate through an exclusive-create flag file so
exactly one attempt injects the fault and every redispatch computes
normally — which is what lets the recovery tests assert bit-identical
results against a serial run.
"""

from __future__ import annotations

import os
import signal
import time


def _claim_flag(path: str) -> bool:
    """Atomically claim a one-shot fault flag; True for the first caller."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def square(x: int) -> int:
    return x * x


def array_sum(arr) -> float:
    """Reduce an ndarray argument (exercises shm transport of inputs)."""
    return float(arr.sum())


def crash_once(task: tuple) -> int:
    """SIGKILL the hosting worker on the first encounter, then compute.

    ``task`` is ``(value, flag_path)``; the task whose claim on
    ``flag_path`` succeeds kills its worker mid-chunk.  On redispatch the
    flag already exists, so the chunk completes with ``value ** 2``.
    """
    value, flag_path = task
    if _claim_flag(flag_path):
        os.kill(os.getpid(), signal.SIGKILL)
    return value * value


def scale_or_crash(common: int, task: tuple) -> int:
    """Common-payload variant of :func:`crash_once`: ``common * value``.

    Verifies that a respawned worker re-receives the broadcast context —
    without the re-broadcast it would compute ``fn(value)`` and crash on
    the missing ``common`` argument (or return garbage).
    """
    value, flag_path = task
    if _claim_flag(flag_path):
        os.kill(os.getpid(), signal.SIGKILL)
    return common * value


def crash_always(task) -> None:
    """SIGKILL the hosting worker unconditionally — a poison task."""
    os.kill(os.getpid(), signal.SIGKILL)


def hang_once(task: tuple) -> int:
    """Hang the worker far past any soft timeout on the first encounter.

    ``task`` is ``(value, flag_path, seconds)``.  The killed-and-respawned
    attempt finds the flag claimed and returns ``value ** 2`` promptly.
    """
    value, flag_path, seconds = task
    if _claim_flag(flag_path):
        time.sleep(seconds)
    return value * value


def raise_on(task: tuple) -> int:
    """Raise ``ValueError`` for the marked value, else square it.

    ``task`` is ``(value, bad_value)``.
    """
    value, bad_value = task
    if value == bad_value:
        raise ValueError(f"task {value} exploded deliberately")
    return value * value
