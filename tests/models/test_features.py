"""Tests for feature extraction."""

import numpy as np
import pytest

from repro.models.features import (
    NUM_BASE_FEATURES,
    NUM_FEATURES,
    azimuth_angle_of,
    extract_features,
    polar_angle_of,
)


class TestAngles:
    def test_polar_of_zenith(self):
        assert polar_angle_of(np.array([0.0, 0.0, 1.0])) == pytest.approx(0.0)

    def test_polar_of_horizon(self):
        assert polar_angle_of(np.array([1.0, 0.0, 0.0])) == pytest.approx(90.0)

    def test_azimuth_quadrants(self):
        assert azimuth_angle_of(np.array([1.0, 0.0, 0.0])) == pytest.approx(0.0)
        assert azimuth_angle_of(np.array([0.0, 1.0, 0.0])) == pytest.approx(90.0)
        assert azimuth_angle_of(np.array([-1.0, 0.0, 0.0])) == pytest.approx(180.0)


class TestExtractFeatures:
    def test_shape_with_polar(self, rings, events):
        f = extract_features(rings, events, polar_guess_deg=20.0)
        assert f.shape == (rings.num_rings, NUM_FEATURES)

    def test_shape_without_polar(self, rings, events):
        f = extract_features(rings, events, include_polar=False)
        assert f.shape == (rings.num_rings, NUM_BASE_FEATURES)

    def test_polar_required(self, rings, events):
        with pytest.raises(ValueError):
            extract_features(rings, events)

    def test_polar_vector_shape_check(self, rings, events):
        with pytest.raises(ValueError):
            extract_features(
                rings, events, polar_guess_deg=np.zeros(rings.num_rings + 1)
            )

    def test_total_energy_column(self, rings, events):
        f = extract_features(rings, events, polar_guess_deg=0.0)
        seg = np.repeat(np.arange(events.num_events), events.hits_per_event())
        etot = np.zeros(events.num_events)
        np.add.at(etot, seg, events.energies)
        assert np.allclose(f[:, 0], etot[rings.event_index])

    def test_hit_columns(self, rings, events):
        f = extract_features(rings, events, polar_guess_deg=0.0)
        assert np.allclose(f[:, 1:4], events.positions[rings.first_hit])
        assert np.allclose(f[:, 4], events.energies[rings.first_hit])
        assert np.allclose(f[:, 5:8], events.positions[rings.second_hit])
        assert np.allclose(f[:, 8], events.energies[rings.second_hit])

    def test_sigma_columns(self, rings, events):
        f = extract_features(rings, events, polar_guess_deg=0.0)
        assert np.allclose(f[:, 10], events.sigma_energy[rings.first_hit])
        assert np.allclose(f[:, 11], events.sigma_energy[rings.second_hit])
        # Column 9 is sqrt of summed per-hit variances.
        seg = np.repeat(np.arange(events.num_events), events.hits_per_event())
        var = np.zeros(events.num_events)
        np.add.at(var, seg, events.sigma_energy**2)
        assert np.allclose(f[:, 9], np.sqrt(var[rings.event_index]))

    def test_polar_column_broadcast(self, rings, events):
        f = extract_features(rings, events, polar_guess_deg=35.0)
        assert np.all(f[:, 12] == 35.0)

    def test_azimuth_rotation_preserves_z_and_energies(self, rings, events):
        a = extract_features(rings, events, polar_guess_deg=0.0, azimuth_deg=0.0)
        b = extract_features(rings, events, polar_guess_deg=0.0, azimuth_deg=123.0)
        assert np.allclose(a[:, 3], b[:, 3])  # z of first hit
        assert np.allclose(a[:, 0], b[:, 0])  # energies
        assert not np.allclose(a[:, 1], b[:, 1])  # x changed

    def test_azimuth_rotation_preserves_radius(self, rings, events):
        a = extract_features(rings, events, polar_guess_deg=0.0, azimuth_deg=0.0)
        b = extract_features(rings, events, polar_guess_deg=0.0, azimuth_deg=77.0)
        ra = np.hypot(a[:, 1], a[:, 2])
        rb = np.hypot(b[:, 1], b[:, 2])
        assert np.allclose(ra, rb)

    def test_rotation_by_360_is_identity(self, rings, events):
        a = extract_features(rings, events, polar_guess_deg=0.0, azimuth_deg=0.0)
        b = extract_features(rings, events, polar_guess_deg=0.0, azimuth_deg=360.0)
        assert np.allclose(a, b, atol=1e-9)
