"""Tests for the dEta regressor."""

import numpy as np
import pytest

from repro.models.deta import (
    DEtaTrainConfig,
    LOG_DETA_MAX,
    LOG_DETA_MIN,
    build_deta_net,
    train_deta_net,
)
from repro.nn.layers import Linear


def synthetic_regression(n=3000, d=13, seed=0):
    """Targets spanning orders of magnitude, like true eta errors."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    log_err = -4.0 + 2.0 * np.tanh(x[:, 0]) + 0.5 * x[:, 1]
    err = np.exp(log_err + rng.normal(0, 0.1, n))
    return x, err


class TestBuildDetaNet:
    def test_paper_architecture(self):
        net = build_deta_net()
        linears = [m for m in net if isinstance(m, Linear)]
        assert len(linears) == 4
        widths = [l.out_features for l in linears]
        # Bulge: max 16 in the middle, narrower ends.
        assert max(widths) == 16
        assert widths.index(16) not in (0, len(widths) - 1)
        assert widths[-1] == 1


class TestTrainDetaNet:
    def test_learns_synthetic_function(self):
        x, err = synthetic_regression()
        cfg = DEtaTrainConfig(max_epochs=60, patience=15)
        net = train_deta_net(x, err, np.random.default_rng(1), cfg)
        from repro.nn.metrics import r2_score

        pred = net.predict_log_deta(x)
        target = np.log(np.maximum(err, 1e-4))
        assert r2_score(pred, target) > 0.7

    def test_predict_deta_is_exp(self):
        x, err = synthetic_regression(n=300)
        cfg = DEtaTrainConfig(hidden_widths=(4,), max_epochs=3, patience=3)
        net = train_deta_net(x, err, np.random.default_rng(2), cfg)
        assert np.allclose(net.predict_deta(x), np.exp(net.predict_log_deta(x)))

    def test_output_clipped(self):
        x, err = synthetic_regression(n=300)
        cfg = DEtaTrainConfig(hidden_widths=(4,), max_epochs=2, patience=2)
        net = train_deta_net(x, err, np.random.default_rng(3), cfg)
        out = net.predict_log_deta(x * 100.0)  # force extreme inputs
        assert np.all(out >= LOG_DETA_MIN) and np.all(out <= LOG_DETA_MAX)

    def test_misaligned_inputs_rejected(self):
        x, err = synthetic_regression(n=100)
        with pytest.raises(ValueError):
            train_deta_net(x, err[:-1], np.random.default_rng(4))

    def test_beats_propagation_on_real_rings(self, training_data):
        """The network predicts true eta errors better than propagation of
        error — the paper's core claim for the dEta model."""
        from repro.nn.metrics import r2_score

        grb = training_data.grb_only()
        cfg = DEtaTrainConfig(max_epochs=40, patience=10)
        net = train_deta_net(
            grb.features, grb.true_eta_errors, np.random.default_rng(5), cfg
        )
        target = np.log(np.maximum(grb.true_eta_errors, 1e-4))
        r2_net = r2_score(net.predict_log_deta(grb.features), target)
        r2_prop = r2_score(np.log(grb.prop_deta), target)
        assert r2_net > r2_prop + 0.2
