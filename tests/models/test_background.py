"""Tests for the background classifier."""

import numpy as np
import pytest

from repro.models.background import (
    BackgroundTrainConfig,
    build_background_net,
    train_background_net,
)
from repro.nn.layers import BatchNorm1d, Linear, ReLU


def synthetic_classification(n=3000, d=13, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    logit = x @ w
    y = (logit + rng.normal(0, 0.5, n) > 0).astype(float)
    polar = rng.uniform(0, 90, n)
    return x, y, polar


class TestBuildBackgroundNet:
    def test_paper_architecture(self):
        net = build_background_net()
        linears = [m for m in net if isinstance(m, Linear)]
        # "Four FC layers" with max width 256 decreasing.
        assert len(linears) == 4
        assert linears[0].out_features == 256
        widths = [l.out_features for l in linears]
        assert widths == sorted(widths, reverse=True)
        assert linears[-1].out_features == 1

    def test_standard_block_order(self):
        net = build_background_net()
        assert isinstance(net[0], BatchNorm1d)
        assert isinstance(net[1], Linear)
        assert isinstance(net[2], ReLU)

    def test_swapped_block_order(self):
        net = build_background_net(swapped=True)
        assert isinstance(net[0], Linear)
        assert isinstance(net[1], BatchNorm1d)
        assert isinstance(net[2], ReLU)

    def test_custom_widths(self):
        net = build_background_net(num_features=5, hidden_widths=(10, 4))
        linears = [m for m in net if isinstance(m, Linear)]
        assert linears[0].in_features == 5
        assert [l.out_features for l in linears] == [10, 4, 1]


class TestTrainBackgroundNet:
    def test_learns_separable_data(self):
        x, y, polar = synthetic_classification()
        cfg = BackgroundTrainConfig(
            hidden_widths=(32, 16), max_epochs=30, patience=10
        )
        net = train_background_net(x, y, polar, np.random.default_rng(1), cfg)
        from repro.nn.metrics import roc_auc

        assert roc_auc(net.predict_proba(x), y) > 0.9

    def test_predict_shapes(self):
        x, y, polar = synthetic_classification(n=500)
        cfg = BackgroundTrainConfig(hidden_widths=(8,), max_epochs=3, patience=3)
        net = train_background_net(x, y, polar, np.random.default_rng(2), cfg)
        assert net.predict_proba(x).shape == (500,)
        assert net.predict_logit(x).shape == (500,)
        assert net.is_background(x, 20.0).shape == (500,)

    def test_probabilities_in_range(self):
        x, y, polar = synthetic_classification(n=500)
        cfg = BackgroundTrainConfig(hidden_widths=(8,), max_epochs=3, patience=3)
        net = train_background_net(x, y, polar, np.random.default_rng(3), cfg)
        p = net.predict_proba(x)
        assert np.all((p >= 0) & (p <= 1))

    def test_thresholds_fitted(self):
        x, y, polar = synthetic_classification(n=500)
        cfg = BackgroundTrainConfig(hidden_widths=(8,), max_epochs=3, patience=3)
        net = train_background_net(x, y, polar, np.random.default_rng(4), cfg)
        assert net.thresholds.thresholds is not None

    def test_misaligned_inputs_rejected(self):
        x, y, polar = synthetic_classification(n=100)
        with pytest.raises(ValueError):
            train_background_net(x, y[:-1], polar, np.random.default_rng(5))

    def test_per_bin_thresholds_used(self):
        x, y, polar = synthetic_classification(n=600)
        cfg = BackgroundTrainConfig(hidden_widths=(8,), max_epochs=3, patience=3)
        net = train_background_net(x, y, polar, np.random.default_rng(6), cfg)
        net.thresholds.thresholds = np.linspace(0.1, 0.9, 9)
        calls_low = net.is_background(x, 5.0)
        calls_high = net.is_background(x, 85.0)
        # Different thresholds -> different call counts (overwhelmingly).
        assert calls_low.sum() >= calls_high.sum()
